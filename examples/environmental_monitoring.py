"""Environmental monitoring scenario: a correlated sensor field under repeated queries.

Run with::

    python examples/environmental_monitoring.py

This is the workload TAG-style systems were motivated by: a field of sensors
reporting spatially correlated readings (a smooth gradient plus hotspots).
The example issues a sequence of queries a monitoring dashboard would ask —
how many sensors are up, what is the hottest reading, what is the typical
(median) reading, how many distinct quantised levels are present — and shows
per-node energy consumption, including what happens when the radio links are
lossy.
"""

from __future__ import annotations

from repro import (
    DeterministicMedianProtocol,
    EnergyModel,
    MaxProtocol,
    SensorNetwork,
)
from repro.analysis.report import format_table
from repro.core.apx_median2 import PolyloglogMedianProtocol
from repro.distinct import ApproxDistinctCountProtocol, ExactDistinctCountProtocol
from repro.network.radio import LossyRadio
from repro.protocols.aggregates import AverageProtocol, CountProtocol
from repro.workloads.generators import correlated_field_values

SIDE = 16
MAX_READING = 4095  # 12-bit ADC


def build_field(radio=None) -> tuple[SensorNetwork, list[int]]:
    readings = correlated_field_values(SIDE * SIDE, max_value=MAX_READING, seed=2024)
    network = SensorNetwork.from_items(readings, topology="grid", radio=radio)
    return network, readings


def dashboard_queries(network: SensorNetwork) -> list[list[object]]:
    rows = []

    def run(name, protocol, answer_of=lambda value: value):
        network.reset_ledger()
        result = protocol.run(network)
        rows.append([name, answer_of(result.value), result.max_node_bits])

    run("sensors reporting", CountProtocol())
    run("hottest reading", MaxProtocol())
    run("mean reading", AverageProtocol(), lambda value: round(value, 1))
    run("median reading (exact, Fig. 1)", DeterministicMedianProtocol(), lambda o: o.median)
    run(
        "median reading (polyloglog, Fig. 4)",
        PolyloglogMedianProtocol(beta=1 / 16, num_registers=128, seed=3),
        lambda o: o.value,
    )
    run(
        "distinct quantised levels (exact)",
        ExactDistinctCountProtocol(domain_max=MAX_READING),
    )
    run(
        "distinct quantised levels (LogLog)",
        ApproxDistinctCountProtocol(num_registers=128, seed=5),
        lambda o: round(o.estimate, 1),
    )
    return rows


def main() -> None:
    network, readings = build_field()
    rows = dashboard_queries(network)
    print(format_table(
        ["query", "answer", "max bits per node"],
        rows,
        title=f"Monitoring dashboard over a {SIDE}x{SIDE} field (readings 0..{MAX_READING})",
    ))

    # Energy picture for one full dashboard refresh (all queries above).
    network.reset_ledger()
    for _ in dashboard_queries(network):
        pass
    report = EnergyModel().report(network.ledger)
    hottest = sorted(report.per_node_nj.items(), key=lambda kv: -kv[1])[:5]
    print()
    print(format_table(
        ["node", "depth in tree", "energy (nJ)"],
        [[node, network.tree.depth[node], round(nj, 1)] for node, nj in hottest],
        title="Hottest nodes after one dashboard refresh",
    ))
    print(f"\nTotal energy per refresh: {report.total_nj / 1e6:.2f} mJ; "
          f"peak node: {report.peak_node_nj / 1e3:.1f} uJ")

    # The same dashboard over lossy links: answers unchanged, energy up.
    lossy_network, _ = build_field(radio=LossyRadio(loss_rate=0.2, seed=11, max_retries=64))
    lossy_rows = dashboard_queries(lossy_network)
    exact_median_reliable = rows[3][1]
    exact_median_lossy = lossy_rows[3][1]
    print()
    print("With 20% link loss and retransmissions:")
    print(f"  exact median unchanged: {exact_median_reliable} -> {exact_median_lossy}")
    reliable_bits = sum(row[2] for row in rows)
    lossy_bits = sum(row[2] for row in lossy_rows)
    print(f"  per-node bits for the dashboard grew from {reliable_bits} to {lossy_bits} "
          f"({lossy_bits / reliable_bits:.2f}x)")


if __name__ == "__main__":
    main()
