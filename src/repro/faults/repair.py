"""Self-healing spanning trees: incremental re-attachment of orphaned subtrees.

When a node crashes (or a tree link drops), each of its surviving child
subtrees becomes an *orphan unit*: an intact tree fragment with no route to
the root.  Rebuilding the whole BFS tree from scratch costs a flood over
every alive graph edge plus a full summary recompute — :class:`TreeRepair`
instead re-attaches each unit through a local adoption handshake:

1. compute the *attached* set — alive nodes still connected to the root via
   surviving tree edges — and group the remaining alive nodes into orphan
   units (maximal fragments of surviving tree edges; a rejoining node is a
   singleton unit);
2. grow an adoption frontier outward from the attached region: when an
   attached node ``a`` hears an orphaned graph-neighbour ``x``, ``x`` adopts
   ``a`` as its parent (one request + one ack on the graph edge) and the
   unit re-roots itself at ``x`` by reversing the parent pointers along the
   path from ``x`` to the fragment's old top — one small pointer-flip
   message per reversed edge.  Every other member keeps its parent and
   children untouched, which is what lets the streaming layer re-synchronise
   only along repaired paths;
3. repeat wave by wave until no orphan is adjacent to the attached region;
   whatever remains is *detached* (physically cut off) and rejoins
   automatically once connectivity returns.

Nodes maintain only parent pointers and child lists — protocol traversals
are self-timed (a node acts when its children have reported), so depth is
simulator bookkeeping, recomputed for free like the
:class:`~repro.network.FlatTree` arrays, and the repair traffic touches
exactly the edges whose pointers change.

When the *estimated* incremental cost exceeds ``rebuild_threshold`` times
the estimated flood cost — or when ``strategy="rebuild"`` pins the naive
policy for baselines — the repair falls back to rebuilding the BFS tree of
the alive root-component from scratch, charging the flood (two tokens per
alive edge, one parent-ack per node) that a distributed BFS construction
costs.  The fault benchmarks measure exactly this trade.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx

from repro.exceptions import ConfigurationError
from repro.network.simulator import SensorNetwork
from repro.network.spanning_tree import (
    bfs_tree,
    bounded_degree_tree,
    tree_from_parents,
)

#: Valid values of :attr:`TreeRepair.strategy`.
REPAIR_STRATEGIES = ("incremental", "rebuild")

#: Adoption request an orphan sends to an attached graph-neighbour
#: (type + epoch tag + fragment size estimate).
ATTACH_REQUEST_BITS = 32
#: The adopter's acknowledgement (type + its own level).
ATTACH_ACK_BITS = 16
#: Pointer-flip notification along the re-rooting path inside a unit.
REVERSAL_BITS = 16
#: One BFS-construction token, flooded over every alive edge (both
#: directions) by the rebuild-from-scratch fallback.
REBUILD_TOKEN_BITS = 16
#: Parent-choice acknowledgement each node sends once during a rebuild.
REBUILD_ACK_BITS = 16


@dataclass(frozen=True)
class RepairResult:
    """What one repair pass did to the spanning tree.

    ``parent_changed`` lists the nodes (attached in the new tree) whose
    parent pointer changed — exactly the nodes whose next transmission must
    be a full summary, since their new parent caches nothing for them.
    ``child_losses`` lists ``(parent, lost_child)`` pairs for parents that
    remain attached — the cache entries the streaming layer must evict.
    ``removed`` are previously-spanned nodes no longer in the tree (crashed
    or cut off); ``detached`` are alive nodes left without a route to the
    root.  On a full rebuild both patch lists are empty and consumers reset
    everything instead.
    """

    strategy: str
    rebuilt: bool
    parent_changed: tuple[int, ...]
    child_losses: tuple[tuple[int, int], ...]
    removed: tuple[int, ...]
    detached: tuple[int, ...]
    control_bits: int
    control_messages: int
    rounds: int

    @property
    def changed_anything(self) -> bool:
        return self.strategy != "noop"


_NOOP = RepairResult(
    strategy="noop",
    rebuilt=False,
    parent_changed=(),
    child_losses=(),
    removed=(),
    detached=(),
    control_bits=0,
    control_messages=0,
    rounds=0,
)


class TreeRepair:
    """Incremental spanning-tree repair with a rebuild-from-scratch fallback."""

    def __init__(
        self,
        strategy: str = "incremental",
        rebuild_threshold: float = 1.0,
        protocol: str = "faults:repair",
    ) -> None:
        if strategy not in REPAIR_STRATEGIES:
            raise ConfigurationError(
                f"unknown repair strategy {strategy!r}; known: {REPAIR_STRATEGIES}"
            )
        if rebuild_threshold <= 0:
            raise ConfigurationError(
                f"rebuild_threshold must be positive, got {rebuild_threshold}"
            )
        self.strategy = strategy
        self.rebuild_threshold = rebuild_threshold
        self.protocol = protocol

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def repair(self, network: SensorNetwork) -> RepairResult:
        """Re-span the alive, root-connected population; return what changed.

        Reads the network's graph, spanning tree and alive-mask; writes a new
        :class:`~repro.network.SpanningTree` back to ``network.tree`` and
        charges every control message to the ledger under
        :attr:`protocol`.  Returns a no-op result when the existing tree
        already spans exactly the attachable population.
        """
        tree = network.tree
        graph = network.graph
        root = network.root_id
        if not network.is_alive(root):  # pragma: no cover - kill_node forbids it
            raise ConfigurationError("cannot repair a network whose root is dead")
        old_parent = tree.parent
        old_children = tree.children
        has_edge = graph.has_edge
        is_alive = network.is_alive

        # Survivors: BFS from the root over tree edges whose child end is
        # alive and whose graph edge still exists.
        attached: set[int] = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for child in old_children[node]:
                if is_alive(child) and has_edge(child, node):
                    attached.add(child)
                    stack.append(child)

        unattached = [
            node for node in network.alive_node_ids() if node not in attached
        ]
        old_nodes = set(old_parent)
        if not unattached and attached == old_nodes:
            return _NOOP

        if self.strategy == "rebuild":
            return self._rebuild(network, old_nodes)

        units, unit_id, unit_parent = self._orphan_units(network, unattached)
        if units and self._should_rebuild(network, units, unattached):
            return self._rebuild(network, old_nodes)
        return self._incremental(
            network, attached, units, unit_id, unit_parent, old_nodes
        )

    # ------------------------------------------------------------------ #
    # Orphan-unit discovery
    # ------------------------------------------------------------------ #
    def _orphan_units(
        self,
        network: SensorNetwork,
        unattached: list[int],
    ) -> tuple[list[list[int]], dict[int, int], dict[int, int | None]]:
        """Group unattached alive nodes into maximal surviving tree fragments.

        Returns ``(units, unit_id, unit_parent)``: member lists per unit, the
        node → unit index, and each node's surviving old parent *within its
        unit* (``None`` at the fragment top).  A unit is a subtree of the old
        tree, so exactly one member has no in-unit parent.
        """
        tree = network.tree
        old_parent = tree.parent
        old_children = tree.children
        has_edge = network.graph.has_edge
        unattached_set = set(unattached)
        unit_id: dict[int, int] = {}
        unit_parent: dict[int, int | None] = {}
        units: list[list[int]] = []
        for start in unattached:  # ascending ids: deterministic unit numbering
            if start in unit_id:
                continue
            members = [start]
            unit_id[start] = len(units)
            queue = deque([start])
            while queue:
                node = queue.popleft()
                parent = old_parent.get(node)
                fragment_neighbors: list[int] = []
                if (
                    parent is not None
                    and parent in unattached_set
                    and has_edge(node, parent)
                ):
                    unit_parent[node] = parent
                    fragment_neighbors.append(parent)
                else:
                    unit_parent[node] = None
                for child in old_children.get(node, ()):
                    if child in unattached_set and has_edge(child, node):
                        fragment_neighbors.append(child)
                for neighbor in fragment_neighbors:
                    if neighbor not in unit_id:
                        unit_id[neighbor] = unit_id[start]
                        members.append(neighbor)
                        queue.append(neighbor)
            units.append(members)
        return units, unit_id, unit_parent

    def _should_rebuild(
        self,
        network: SensorNetwork,
        units: list[list[int]],
        unattached: list[int],
    ) -> bool:
        """Compare the incremental cost upper bound against the flood estimate."""
        estimated_incremental = len(units) * (
            ATTACH_REQUEST_BITS + ATTACH_ACK_BITS
        ) + len(unattached) * REVERSAL_BITS
        is_alive = network.is_alive
        alive_edges = sum(
            1 for u, v in network.graph.edges() if is_alive(u) and is_alive(v)
        )
        estimated_rebuild = (
            2 * alive_edges + network.num_alive
        ) * REBUILD_TOKEN_BITS
        return estimated_incremental > self.rebuild_threshold * estimated_rebuild

    # ------------------------------------------------------------------ #
    # Incremental adoption
    # ------------------------------------------------------------------ #
    def _incremental(
        self,
        network: SensorNetwork,
        attached: set[int],
        units: list[list[int]],
        unit_id: dict[int, int],
        unit_parent: dict[int, int | None],
        old_nodes: set[int],
    ) -> RepairResult:
        graph = network.graph
        old_parent = network.tree.parent
        is_alive = network.is_alive
        new_parent: dict[int, int | None] = {
            node: old_parent[node] for node in attached
        }
        links: list[tuple[int, int]] = []
        sizes: list[int] = []
        parent_changed: list[int] = []
        waves = 0
        frontier = sorted(attached)
        while frontier:
            next_frontier: list[int] = []
            for adopter in frontier:
                for orphan in sorted(graph.neighbors(adopter)):
                    if orphan in attached or not is_alive(orphan):
                        continue
                    # Adopt the orphan's whole unit at this contact point.
                    links.append((orphan, adopter))
                    sizes.append(ATTACH_REQUEST_BITS)
                    links.append((adopter, orphan))
                    sizes.append(ATTACH_ACK_BITS)
                    new_parent[orphan] = adopter
                    parent_changed.append(orphan)
                    # Re-root the fragment at the contact point: reverse the
                    # parent pointers on the path up to the fragment top.
                    child = orphan
                    ancestor = unit_parent[orphan]
                    while ancestor is not None:
                        links.append((child, ancestor))
                        sizes.append(REVERSAL_BITS)
                        new_parent[ancestor] = child
                        parent_changed.append(ancestor)
                        child = ancestor
                        ancestor = unit_parent[ancestor]
                    for member in units[unit_id[orphan]]:
                        if member not in new_parent:
                            # Off the reversal path: pointers are untouched.
                            new_parent[member] = unit_parent[member]
                        attached.add(member)
                        next_frontier.append(member)
            if next_frontier:
                waves += 1
            frontier = next_frontier

        detached = tuple(
            node for node in sorted(unit_id) if node not in attached
        )
        child_losses: list[tuple[int, int]] = []
        for child, parent in old_parent.items():
            if parent is None or parent not in attached:
                continue
            if new_parent.get(child) != parent:
                child_losses.append((parent, child))
        removed = tuple(sorted(old_nodes - attached))

        network.tree = tree_from_parents(
            network.root_id, {node: new_parent[node] for node in attached}
        )
        control_bits, control_messages = self._charge(network, links, sizes, waves)
        return RepairResult(
            strategy="incremental",
            rebuilt=False,
            parent_changed=tuple(parent_changed),
            child_losses=tuple(sorted(child_losses)),
            removed=removed,
            detached=detached,
            control_bits=control_bits,
            control_messages=control_messages,
            rounds=waves,
        )

    # ------------------------------------------------------------------ #
    # Rebuild-from-scratch fallback
    # ------------------------------------------------------------------ #
    def _rebuild(self, network: SensorNetwork, old_nodes: set[int]) -> RepairResult:
        graph = network.graph
        root = network.root_id
        alive = set(network.alive_node_ids())
        component = nx.node_connected_component(graph.subgraph(alive), root)
        component_graph = graph.subgraph(component)
        if network.degree_bound is None:
            tree = bfs_tree(component_graph, root)
        else:
            tree = bounded_degree_tree(
                component_graph, root, max_degree=network.degree_bound
            )
        # A distributed BFS construction floods a token over every usable
        # edge in both directions, then every node acks its chosen parent.
        links: list[tuple[int, int]] = []
        sizes: list[int] = []
        for u, v in component_graph.edges():
            links.append((u, v))
            sizes.append(REBUILD_TOKEN_BITS)
            links.append((v, u))
            sizes.append(REBUILD_TOKEN_BITS)
        for node, parent in tree.parent.items():
            if parent is not None:
                links.append((node, parent))
                sizes.append(REBUILD_ACK_BITS)
        network.tree = tree
        rounds = tree.height + 1
        control_bits, control_messages = self._charge(network, links, sizes, rounds)
        return RepairResult(
            strategy="rebuild",
            rebuilt=True,
            parent_changed=(),
            child_losses=(),
            removed=tuple(sorted(old_nodes - component)),
            detached=tuple(sorted(alive - component)),
            control_bits=control_bits,
            control_messages=control_messages,
            rounds=rounds,
        )

    def _charge(
        self,
        network: SensorNetwork,
        links: list[tuple[int, int]],
        sizes: list[int],
        rounds: int,
    ) -> tuple[int, int]:
        """Charge the control traffic (plus rounds) and return (bits, messages).

        Uses :meth:`~repro.network.SensorNetwork.send_batch` so lossy-radio
        retries inflate the measured repair cost exactly as they would any
        protocol — and so repair charges identically under both execution
        modes (it never branches on ``network.execution``).
        """
        before = network.ledger.counters_snapshot()
        if links:
            network.send_batch(links, sizes, protocol=self.protocol, require_edge=False)
        network.ledger.advance_round(rounds)
        after = network.ledger.counters_snapshot()
        return (
            after.total_bits - before.total_bits,
            after.messages - before.messages,
        )
