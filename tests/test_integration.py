"""Integration and robustness tests: whole-pipeline scenarios across modules."""

import pytest

from repro import (
    ApproximateMedianProtocol,
    DeterministicMedianProtocol,
    EnergyModel,
    PolyloglogMedianProtocol,
    SensorNetwork,
    reference_median,
)
from repro.baselines.naive import NaiveShipAllMedianProtocol
from repro.core.definitions import is_approximate_order_statistic
from repro.distinct import ApproxDistinctCountProtocol, ExactDistinctCountProtocol
from repro.exceptions import DeliveryError
from repro.network.radio import DuplicatingRadio, LossyRadio
from repro.network.topology import grid_topology, random_geometric_topology
from repro.protocols.aggregates import AverageProtocol, CountProtocol, MaxProtocol
from repro.workloads.generators import correlated_field_values, generate_workload


class TestEndToEndScenario:
    """A full 'environmental monitoring' pipeline: field data, several queries."""

    @pytest.fixture
    def field_network(self):
        side = 12
        readings = correlated_field_values(side * side, max_value=4095, seed=21)
        network = SensorNetwork.from_items(readings, topology=grid_topology(side))
        return network, readings

    def test_sequence_of_queries_shares_one_network(self, field_network):
        network, readings = field_network
        count = CountProtocol().run(network).value
        maximum = MaxProtocol().run(network).value
        average = AverageProtocol().run(network).value
        median = DeterministicMedianProtocol().run(network).value.median
        assert count == len(readings)
        assert maximum == max(readings)
        assert average == pytest.approx(sum(readings) / len(readings))
        assert median == reference_median(readings)

    def test_ledger_accumulates_across_queries(self, field_network):
        network, _ = field_network
        CountProtocol().run(network)
        after_count = network.ledger.total_bits
        DeterministicMedianProtocol().run(network)
        assert network.ledger.total_bits > after_count
        breakdown = network.ledger.per_protocol_bits()
        assert "COUNT" in breakdown and "COUNTP" in breakdown

    def test_energy_report_identifies_hot_nodes(self, field_network):
        network, _ = field_network
        DeterministicMedianProtocol().run(network)
        report = EnergyModel().report(network.ledger)
        hot_node = max(report.per_node_nj, key=report.per_node_nj.get)
        # The hottest node is near the root (it relays every probe).
        assert network.tree.depth[hot_node] <= 2

    def test_exact_and_approximate_agree_in_rank_terms(self, field_network):
        network, readings = field_network
        exact = DeterministicMedianProtocol().run(network).value.median
        approx = ApproximateMedianProtocol(num_registers=256, seed=5).run(network).value
        poly = PolyloglogMedianProtocol(num_registers=256, seed=5).run(network).value
        for estimate in (approx.value, poly.value):
            assert is_approximate_order_statistic(
                readings, len(readings) / 2.0, estimate, alpha=0.6, beta=0.15
            )
        assert exact == reference_median(readings)


class TestRobustnessToLinkFailures:
    def test_median_correct_over_lossy_links(self):
        items = generate_workload("uniform", 49, max_value=10_000, seed=22)
        network = SensorNetwork.from_items(
            items,
            topology=grid_topology(7),
            radio=LossyRadio(loss_rate=0.3, seed=9, max_retries=64),
        )
        result = DeterministicMedianProtocol().run(network)
        assert result.value.median == reference_median(items)

    def test_lossy_links_cost_more_bits(self):
        items = generate_workload("uniform", 49, max_value=10_000, seed=23)
        reliable = SensorNetwork.from_items(items, topology=grid_topology(7))
        lossy = SensorNetwork.from_items(
            items,
            topology=grid_topology(7),
            radio=LossyRadio(loss_rate=0.4, seed=11, max_retries=64),
        )
        reliable_bits = DeterministicMedianProtocol().run(reliable).total_bits
        lossy_bits = DeterministicMedianProtocol().run(lossy).total_bits
        assert lossy_bits > 1.2 * reliable_bits

    def test_hopeless_links_fail_loudly(self):
        items = [1, 2, 3, 4]
        network = SensorNetwork.from_items(
            items,
            topology=grid_topology(2),
            radio=LossyRadio(loss_rate=0.99, seed=13, max_retries=1),
        )
        with pytest.raises(DeliveryError):
            DeterministicMedianProtocol().run(network)

    def test_duplicating_links_do_not_change_answers(self):
        items = generate_workload("zipf", 64, max_value=10_000, seed=24)
        network = SensorNetwork.from_items(
            items,
            topology=grid_topology(8),
            radio=DuplicatingRadio(duplicate_rate=0.4, seed=15),
        )
        assert DeterministicMedianProtocol().run(network).value.median == reference_median(items)
        network.reset_ledger()
        assert ExactDistinctCountProtocol().run(network).value == len(set(items))


class TestScalingContrast:
    """The headline contrast of the paper, end to end."""

    def test_exact_median_beats_naive_and_distinct_contrast_holds(self):
        sizes = (64, 256)
        median_costs, naive_costs = [], []
        exact_distinct_costs, approx_distinct_costs = [], []
        for n in sizes:
            items = generate_workload("uniform", n, max_value=n * n, seed=25)
            network = SensorNetwork.from_items(
                items, topology=random_geometric_topology(n, seed=3)
            )
            median_costs.append(
                DeterministicMedianProtocol(domain_max=n * n).run(network).max_node_bits
            )
            network.reset_ledger()
            naive_costs.append(
                NaiveShipAllMedianProtocol(domain_max=n * n).run(network).max_node_bits
            )
            network.reset_ledger()
            exact_distinct_costs.append(
                ExactDistinctCountProtocol().run(network).max_node_bits
            )
            network.reset_ledger()
            approx_distinct_costs.append(
                ApproxDistinctCountProtocol(num_registers=64, seed=7).run(network).max_node_bits
            )
        # Naive and exact-distinct grow roughly linearly (4x items -> ~3x+ bits);
        # the paper's median and the loglog distinct counter grow slowly.
        assert naive_costs[1] / naive_costs[0] > 2.5
        assert exact_distinct_costs[1] / exact_distinct_costs[0] > 2.5
        assert median_costs[1] / median_costs[0] < 2.0
        assert approx_distinct_costs[1] / approx_distinct_costs[0] < 1.3
