"""Counting by the maximum of geometric samples.

Section 2.2 of the paper explains the idea behind approximate counting: if
each of N nodes draws an independent Geometric(1/2) random variable (count
fair coin flips until the first head), then the maximum of the samples
concentrates around ``log2 N``.  Broadcasting only that maximum — a number of
``O(log log N)`` bits — therefore yields an estimate of N.

A single maximum is a very noisy estimator (its variance does not vanish), so
:class:`GeometricMaxEstimator` keeps ``m`` independent maxima and averages
them, which is exactly the structure the Durand–Flajolet LogLog sketch
formalises.  The class exists mainly for exposition and for unit tests that
check the concentration claim; the distributed protocol uses
:class:`~repro.sketches.loglog.LogLogSketch`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro._util.bits import bit_width
from repro._util.randomness import make_rng
from repro._util.validation import require_positive


def geometric_rank(rng: random.Random, max_rank: int = 64) -> int:
    """Sample a Geometric(1/2) variable: number of flips up to the first head."""
    rank = 1
    while rank < max_rank and rng.random() < 0.5:
        rank += 1
    return rank


@dataclass
class GeometricMaxEstimator:
    """``m`` independent "maximum of geometric samples" registers.

    Each contributing node calls :meth:`observe` once per register with its own
    locally drawn sample; registers from different nodes are combined with
    :meth:`merge` (elementwise max).  The estimate applies the standard
    LogLog-style bias correction to the mean register value.
    """

    num_registers: int = 16
    registers: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.num_registers, "num_registers")
        if not self.registers:
            self.registers = [0] * self.num_registers
        if len(self.registers) != self.num_registers:
            raise ValueError("register list length does not match num_registers")

    @classmethod
    def from_local_samples(
        cls, num_registers: int, seed: int | random.Random | None
    ) -> "GeometricMaxEstimator":
        """Build the sketch a single node contributes: one sample per register."""
        rng = make_rng(seed)
        sketch = cls(num_registers=num_registers)
        for index in range(num_registers):
            sketch.registers[index] = geometric_rank(rng)
        return sketch

    def observe(self, register_index: int, rank: int) -> None:
        """Fold one geometric sample into the given register."""
        if not 0 <= register_index < self.num_registers:
            raise IndexError(f"register index {register_index} out of range")
        if rank > self.registers[register_index]:
            self.registers[register_index] = rank

    def merge(self, other: "GeometricMaxEstimator") -> "GeometricMaxEstimator":
        """Return the elementwise-max combination of two sketches."""
        if other.num_registers != self.num_registers:
            raise ValueError("cannot merge sketches with different register counts")
        merged = GeometricMaxEstimator(num_registers=self.num_registers)
        merged.registers = [
            max(a, b) for a, b in zip(self.registers, other.registers)
        ]
        return merged

    def estimate(self) -> float:
        """Estimate the number of contributing samples per register."""
        if all(register == 0 for register in self.registers):
            return 0.0
        mean_rank = sum(self.registers) / self.num_registers
        # E[max of N geometrics] ≈ log2(N) + 0.667; invert with that offset.
        return max(1.0, 2.0 ** (mean_rank - 0.667))

    def serialized_bits(self, max_expected_count: int = 1 << 30) -> int:
        """Bits to transmit this sketch: m registers of O(log log N) bits each."""
        register_width = bit_width(int(math.ceil(math.log2(max_expected_count))) + 1)
        return self.num_registers * register_width
