"""Flat-array spanning-tree representation for the batched execution core.

:class:`~repro.network.spanning_tree.SpanningTree` describes the tree with
per-node dictionaries, which is convenient for construction and validation
but expensive to traverse: every protocol walk re-sorts the node set by depth
and chases parent/children pointers through hash lookups.  :class:`FlatTree`
freezes one spanning tree into contiguous arrays indexed by a *canonical
index* — the node's position in the top-down level order — so the batched
protocol implementations can sweep whole levels with list indexing only:

* ``parent[i]`` is the canonical index of node ``i``'s parent (``-1`` at the
  root, which always has canonical index 0),
* the children of node ``i`` are ``child_index[child_start[i]:child_end[i]]``,
  in the same order as ``SpanningTree.children`` (so combine orders match the
  per-edge traversals exactly),
* ``bottom_up`` lists canonical indices in exactly the order of
  :meth:`SpanningTree.nodes_bottom_up`, and the canonical order itself *is*
  :meth:`SpanningTree.nodes_top_down`,
* ``level_spans[d]`` is the half-open span of depth-``d`` nodes in canonical
  order, so level sweeps are contiguous slices,
* ``up_links`` / ``down_links`` are the tree's edge sequences as
  ``(sender, receiver)`` node-id pairs, in exactly the order the per-edge
  convergecast and broadcast sweeps transmit them — precomputed once so
  full-tree batched sweeps ship a ready-made link list to
  ``SensorNetwork.send_batch``.

The representation is immutable by convention: it is built once per spanning
tree (``SensorNetwork.flat_tree`` caches it and rebuilds only when the tree
object changes) and shared by every batched traversal.
"""

from __future__ import annotations

from typing import Iterator

from repro.network.spanning_tree import SpanningTree


class FlatTree:
    """Array-of-structs view of a rooted spanning tree."""

    __slots__ = (
        "root_id",
        "num_nodes",
        "height",
        "node_ids",
        "index",
        "parent",
        "depth",
        "child_start",
        "child_end",
        "child_index",
        "bottom_up",
        "level_spans",
        "up_links",
        "down_links",
    )

    def __init__(self, tree: SpanningTree) -> None:
        order = tree.nodes_top_down()
        index = {node: position for position, node in enumerate(order)}
        num_nodes = len(order)
        parent = [0] * num_nodes
        depth = [0] * num_nodes
        child_start = [0] * num_nodes
        child_end = [0] * num_nodes
        child_index: list[int] = []
        for position, node in enumerate(order):
            depth[position] = tree.depth[node]
            node_parent = tree.parent[node]
            parent[position] = -1 if node_parent is None else index[node_parent]
            child_start[position] = len(child_index)
            child_index.extend(index[child] for child in tree.children[node])
            child_end[position] = len(child_index)

        height = depth[-1] if num_nodes else 0
        level_spans: list[tuple[int, int]] = []
        start = 0
        for level in range(height + 1):
            end = start
            while end < num_nodes and depth[end] == level:
                end += 1
            level_spans.append((start, end))
            start = end

        self.root_id = tree.root
        self.num_nodes = num_nodes
        self.height = height
        self.node_ids = order
        self.index = index
        self.parent = parent
        self.depth = depth
        self.child_start = child_start
        self.child_end = child_end
        self.child_index = child_index
        self.bottom_up = [index[node] for node in tree.nodes_bottom_up()]
        self.level_spans = level_spans
        # Tree edges are static, so the link sequences of full-tree sweeps can
        # be shared by every traversal instead of rebuilt per protocol run.
        self.up_links = [
            (order[position], order[parent[position]])
            for position in self.bottom_up
            if parent[position] >= 0
        ]
        self.down_links = [
            (node, order[child])
            for position, node in enumerate(order)
            for child in child_index[child_start[position] : child_end[position]]
        ]

    @classmethod
    def from_spanning_tree(cls, tree: SpanningTree) -> "FlatTree":
        """Build the flat representation after validating ``tree``'s structure.

        Runs :meth:`SpanningTree.check_invariants` first — parent pointers,
        child lists and depths must be mutually consistent — so a malformed
        tree (e.g. produced by a buggy incremental repair) raises
        :class:`~repro.exceptions.TopologyError` here instead of silently
        corrupting every batched sweep built on the arrays.
        """
        tree.check_invariants()
        return cls(tree)

    # ------------------------------------------------------------------ #
    # Convenience accessors (traversals index the arrays directly)
    # ------------------------------------------------------------------ #
    def children_of(self, position: int) -> list[int]:
        """Canonical indices of the children of the node at ``position``."""
        return self.child_index[self.child_start[position] : self.child_end[position]]

    def parent_id(self, node_id: int) -> int | None:
        """The parent *node id* of ``node_id`` (``None`` at the root)."""
        parent_position = self.parent[self.index[node_id]]
        return None if parent_position < 0 else self.node_ids[parent_position]

    def nodes_bottom_up(self) -> Iterator[int]:
        """Node ids in the same order as ``SpanningTree.nodes_bottom_up``."""
        node_ids = self.node_ids
        return (node_ids[position] for position in self.bottom_up)

    def nodes_top_down(self) -> list[int]:
        """Node ids in the same order as ``SpanningTree.nodes_top_down``."""
        return list(self.node_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"FlatTree(nodes={self.num_nodes}, height={self.height}, "
            f"root={self.root_id})"
        )
