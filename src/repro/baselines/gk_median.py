"""Greenwald–Khanna summary median (the concurrent result [4]).

Each node summarises its local items with an ε-approximate GK summary; the
summaries are merged pairwise up the spanning tree; the root answers the 0.5
quantile from the final summary.  The summary size is ``O((1/ε) log εN)``
tuples of ``O(log X̄)`` bits each, so the per-node cost is polylogarithmic but
with a higher exponent than the paper's binary-search protocol — Greenwald and
Khanna report ``O((log N)⁴)`` for exact order statistics and ``O((log N)³)``
for a one-pass approximation, which is the comparison the paper draws in
"Concurrent results by others".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import CountProtocol, MaxProtocol
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.sketches.gk_summary import GKSummary


@dataclass(frozen=True)
class GKMedianOutcome:
    """Approximate median plus the size of the root's summary."""

    median: int
    epsilon: float
    summary_size: int


class GKMedianProtocol:
    """Approximate median by merging Greenwald–Khanna summaries up the tree."""

    def __init__(
        self,
        epsilon: float = 0.05,
        domain_max: int | None = None,
        view: ItemView = raw_items,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._domain_max = domain_max
        self._view = view

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; ``value`` is a :class:`GKMedianOutcome`."""
        with MeteredRun(network) as metered:
            domain_max = self._domain_max
            if domain_max is None:
                domain_max = MaxProtocol(view=self._view).run(network).value
            total_items = CountProtocol(view=self._view).run(network).value
            broadcast(
                network,
                {"query": "GK_MEDIAN", "epsilon": self.epsilon},
                16,
                protocol="GK_MEDIAN",
            )

            def local(node: SensorNode) -> GKSummary:
                return GKSummary.from_values(self._view(node), epsilon=self.epsilon)

            merged = convergecast(
                network,
                local,
                lambda a, b: a.merge(b),
                lambda summary: summary.serialized_bits(
                    max_value=max(1, domain_max), max_count=max(1, total_items)
                ),
                protocol="GK_MEDIAN",
            )
            outcome = GKMedianOutcome(
                median=merged.median(),
                epsilon=self.epsilon,
                summary_size=merged.size,
            )
        return metered.result(outcome)
