"""Naive exact median: ship every raw value to the root.

TAG classifies MEDIAN as a *holistic* aggregate: no lossless in-network
reduction is possible, so the straightforward protocol forwards every item up
the tree.  A node whose subtree contains ``s`` items transmits ``Θ(s log X̄)``
bits, so the nodes adjacent to the root carry ``Θ(N log N)`` bits — the linear
behaviour the paper's introduction contrasts its ``O((log N)²)`` protocol
against.  This is the primary baseline of experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.bits import fixed_width_bits, varint_bits
from repro.core.definitions import reference_median
from repro.exceptions import EmptyNetworkError
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast


@dataclass(frozen=True)
class NaiveMedianOutcome:
    """Exact median plus the number of raw values the root received."""

    median: int
    n: int


class NaiveShipAllMedianProtocol:
    """Forward all raw values to the root; sort there."""

    def __init__(
        self, domain_max: int | None = None, view: ItemView = raw_items
    ) -> None:
        self._domain_max = domain_max
        self._view = view

    def _list_bits(self, values: tuple[int, ...]) -> int:
        if not values:
            return 1
        if self._domain_max is not None:
            per_value = fixed_width_bits(self._domain_max)
            return len(values) * per_value + varint_bits(len(values))
        return sum(varint_bits(value) for value in values) + varint_bits(len(values))

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; ``value`` is a :class:`NaiveMedianOutcome`."""
        with MeteredRun(network) as metered:
            broadcast(network, {"query": "NAIVE_MEDIAN"}, 4, protocol="NAIVE_MEDIAN")

            def local(node: SensorNode) -> tuple[int, ...]:
                return tuple(self._view(node))

            all_values = convergecast(
                network,
                local,
                lambda a, b: a + b,
                self._list_bits,
                protocol="NAIVE_MEDIAN",
            )
            if not all_values:
                raise EmptyNetworkError("the network holds no items")
            outcome = NaiveMedianOutcome(
                median=reference_median(list(all_values)), n=len(all_values)
            )
        return metered.result(outcome)
