"""Radio (link-layer) models.

The paper abstracts the communication mechanism away entirely, but follow-up
work it cites (Considine et al., Nath et al.) is motivated by lossy and
duplicating links.  The simulator therefore exposes a pluggable link model:

``ReliableRadio``
    Every transmission is delivered exactly once (the paper's implicit model).

``LossyRadio``
    Each transmission is independently lost with probability ``loss_rate``.
    Tree protocols retransmit up to ``max_retries`` times; every attempt is
    charged to the ledger, so unreliable links inflate the measured
    communication complexity exactly as they would inflate energy use.

``DuplicatingRadio``
    Each transmission is delivered, and with probability ``duplicate_rate`` it
    is delivered twice.  Order-and-duplicate-insensitive sketches (LogLog and
    friends) are unaffected; naive SUM/COUNT aggregation is not, which the
    robustness tests demonstrate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro._util.randomness import make_rng
from repro._util.validation import require_non_negative, require_probability
from repro.exceptions import DeliveryError


@dataclass(frozen=True)
class DeliveryOutcome:
    """Result of attempting one logical transmission over a link."""

    attempts: int
    copies_delivered: int

    @property
    def delivered(self) -> bool:
        return self.copies_delivered > 0


#: Shared outcome for the overwhelmingly common "one attempt, one copy" case,
#: so batched paths do not allocate an object per link.
DELIVERED_ONCE = DeliveryOutcome(attempts=1, copies_delivered=1)


class RadioModel(abc.ABC):
    """Interface for link models used by :class:`~repro.network.SensorNetwork`."""

    @abc.abstractmethod
    def transmit(self, sender: int, receiver: int) -> DeliveryOutcome:
        """Attempt to deliver one message; return how many attempts/copies."""

    def filter_batch(
        self, links: Sequence[tuple[int, int]]
    ) -> Sequence[DeliveryOutcome]:
        """Attempt one logical transmission per ``(sender, receiver)`` link.

        The default implementation calls :meth:`transmit` once per link *in
        link order*, so custom radio models are automatically correct under
        the batched execution path: a seeded radio consumes its randomness in
        exactly the sequence the per-edge path would.

        If a transmission fails permanently (:class:`DeliveryError`), the
        outcomes of the links that succeeded before it are attached to the
        exception as ``outcomes_before_failure``, so the batched sender can
        charge exactly the prefix the per-edge path would have charged before
        raising.
        """
        transmit = self.transmit
        outcomes: list[DeliveryOutcome] = []
        append = outcomes.append
        try:
            for sender, receiver in links:
                append(transmit(sender, receiver))
        except DeliveryError as error:
            error.outcomes_before_failure = tuple(outcomes)
            raise
        return outcomes

    def reset(self) -> None:  # pragma: no cover - default no-op
        """Reset any internal state between experiments."""


class ReliableRadio(RadioModel):
    """Perfect links: one attempt, one delivered copy."""

    def transmit(self, sender: int, receiver: int) -> DeliveryOutcome:
        return DELIVERED_ONCE

    def filter_batch(
        self, links: Sequence[tuple[int, int]]
    ) -> Sequence[DeliveryOutcome]:
        return [DELIVERED_ONCE] * len(links)


class LossyRadio(RadioModel):
    """Links that drop each transmission independently with ``loss_rate``.

    A logical send is retried until it succeeds or ``max_retries`` attempts
    have been made; a permanent failure raises :class:`DeliveryError` so
    protocols never silently compute on partial data.
    """

    def __init__(
        self,
        loss_rate: float,
        seed: int | None = 0,
        max_retries: int = 16,
    ) -> None:
        self.loss_rate = require_probability(loss_rate, "loss_rate")
        if self.loss_rate >= 1.0:
            raise DeliveryError("loss_rate of 1.0 makes delivery impossible")
        self.max_retries = require_non_negative(max_retries, "max_retries")
        self._seed = seed
        self._rng = make_rng(seed)

    def transmit(self, sender: int, receiver: int) -> DeliveryOutcome:
        attempts = 0
        while attempts <= self.max_retries:
            attempts += 1
            if self._rng.random() >= self.loss_rate:
                if attempts == 1:
                    return DELIVERED_ONCE
                return DeliveryOutcome(attempts=attempts, copies_delivered=1)
        raise DeliveryError(
            f"link {sender}->{receiver} failed after {attempts} attempts "
            f"(loss_rate={self.loss_rate})"
        )

    def reset(self) -> None:
        self._rng = make_rng(self._seed)


class DuplicatingRadio(RadioModel):
    """Links that occasionally deliver an extra copy of each message."""

    def __init__(self, duplicate_rate: float, seed: int | None = 0) -> None:
        self.duplicate_rate = require_probability(duplicate_rate, "duplicate_rate")
        self._seed = seed
        self._rng = make_rng(seed)

    def transmit(self, sender: int, receiver: int) -> DeliveryOutcome:
        if self._rng.random() < self.duplicate_rate:
            return DeliveryOutcome(attempts=2, copies_delivered=2)
        return DELIVERED_ONCE

    def reset(self) -> None:
        self._rng = make_rng(self._seed)
