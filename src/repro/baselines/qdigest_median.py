"""q-digest median (Shrivastava et al., SenSys 2004).

Each node builds a q-digest of its local items over the known value domain;
digests are merged up the tree; the root answers the 0.5 quantile.  The digest
holds ``O(compression · log X̄)`` (range, count) pairs, giving a per-node cost
of ``O(compression · (log X̄)²)`` bits — another polylog baseline from the
paper's era, with rank error ``O(log X̄ / compression)`` of N.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.validation import require_positive
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import MaxProtocol
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.sketches.qdigest import QDigest


@dataclass(frozen=True)
class QDigestMedianOutcome:
    """Approximate median plus the size of the root's digest."""

    median: int
    compression: int
    digest_size: int


class QDigestMedianProtocol:
    """Approximate median by merging q-digests up the tree."""

    def __init__(
        self,
        compression: int = 32,
        domain_max: int | None = None,
        view: ItemView = raw_items,
    ) -> None:
        require_positive(compression, "compression")
        self.compression = compression
        self._domain_max = domain_max
        self._view = view

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; ``value`` is a :class:`QDigestMedianOutcome`."""
        with MeteredRun(network) as metered:
            domain_max = self._domain_max
            if domain_max is None:
                domain_max = MaxProtocol(view=self._view).run(network).value
            universe = max(2, domain_max + 1)
            broadcast(
                network,
                {"query": "QDIGEST_MEDIAN", "compression": self.compression},
                16,
                protocol="QDIGEST_MEDIAN",
            )

            def local(node: SensorNode) -> QDigest:
                return QDigest.from_values(
                    self._view(node), universe_size=universe, compression=self.compression
                )

            merged = convergecast(
                network,
                local,
                lambda a, b: a.merge(b),
                lambda digest: digest.serialized_bits(),
                protocol="QDIGEST_MEDIAN",
            )
            outcome = QDigestMedianOutcome(
                median=merged.median(),
                compression=self.compression,
                digest_size=merged.size,
            )
        return metered.result(outcome)
