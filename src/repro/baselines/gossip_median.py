"""Gossip median: binary search with push-sum rank probes (Kempe et al. flavour).

The paper cites gossip-based aggregation [6] as the best previously known
randomized approach: ``O((log N)³)`` bits per node on well-mixing graphs.  The
baseline implemented here follows that structure: the value range is binary
searched exactly as in Fig. 1, but each rank probe ``ℓ(y)/N`` is estimated by
push-sum gossip over the raw communication graph (no spanning tree), averaging
the indicator "my item is below y" across nodes.

Each probe runs ``O(log² N)`` gossip rounds of constant-size messages, and
there are ``O(log X̄)`` probes, which on well-mixing topologies lands in the
polylog regime the paper quotes.  On poorly mixing topologies (the line) the
probe estimates are visibly worse — one of the robustness findings surfaced by
experiment E8.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro._util.randomness import make_rng
from repro.exceptions import EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import MaxProtocol, MinProtocol
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.gossip import PushSumGossip


@dataclass(frozen=True)
class GossipMedianOutcome:
    """Approximate median plus probe diagnostics."""

    median: int
    probes: int
    rounds_per_probe: int


class GossipMedianProtocol:
    """Approximate median with gossip-estimated rank probes."""

    def __init__(
        self,
        rounds_per_probe: int | None = None,
        view: ItemView = raw_items,
        domain_max: int | None = None,
        seed: int | random.Random | None = 0,
    ) -> None:
        self.rounds_per_probe = rounds_per_probe
        self._view = view
        self._domain_max = domain_max
        self._rng = make_rng(seed)

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; ``value`` is a :class:`GossipMedianOutcome`."""
        with MeteredRun(network) as metered:
            if network.total_items() == 0:
                raise EmptyNetworkError("the network holds no items")
            minimum = MinProtocol(domain_max=self._domain_max, view=self._view).run(
                network
            ).value
            maximum = MaxProtocol(domain_max=self._domain_max, view=self._view).run(
                network
            ).value
            rounds = self.rounds_per_probe
            if rounds is None:
                n = max(2, network.num_nodes)
                rounds = max(8, int(2 * math.log2(n) ** 2))

            probes = 0

            def gossip_fraction_below(threshold: float) -> float:
                nonlocal probes
                probes += 1
                gossip = PushSumGossip(
                    rounds=rounds, seed=self._rng, target="average"
                )

                def indicator(node) -> float:
                    values = list(self._view(node))
                    if not values:
                        return 0.0
                    return sum(1.0 for value in values if value < threshold) / len(values)

                return gossip.run(network, indicator).value.estimate

            spread = maximum - minimum
            if spread == 0:
                outcome = GossipMedianOutcome(
                    median=minimum, probes=probes, rounds_per_probe=rounds
                )
                return metered.result(outcome)

            y = (maximum + minimum) / 2.0
            z = float(1 << max(0, (spread - 1).bit_length() - 1)) if spread > 1 else 0.5
            while z > 0.5:
                if gossip_fraction_below(y) < 0.5:
                    y += z / 2.0
                else:
                    y -= z / 2.0
                z /= 2.0
            outcome = GossipMedianOutcome(
                median=int(math.floor(y)), probes=probes, rounds_per_probe=rounds
            )
        return metered.result(outcome)
