"""The recorder protocol behind every profiling hook.

Instrumented code — the execution core, the epoch pipeline, the fault
machinery — never talks to a concrete tracer.  It talks to a
:class:`TelemetryRecorder`: open a span, bump a counter, observe a value.
The default recorder on every :class:`~repro.network.SensorNetwork` is the
:data:`NULL_RECORDER` singleton, whose every method is a no-op returning
shared immutable objects, so instrumentation costs one attribute read and
one no-op call when telemetry is off — nothing is allocated, nothing is
charged, and the tier-1 overhead-guard test holds the ledger to *zero*
extra bits.

Hot paths (``SensorNetwork.send`` / ``send_batch``, the per-level sweep
loops) additionally gate their hooks on :attr:`TelemetryRecorder.enabled`,
so a disabled recorder costs a single truthiness check per call there.

Concrete recorders subclass (or merely duck-type) this interface:
:class:`~repro.telemetry.spans.SpanTracer` is the one the repository
ships.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping


class NullSpan:
    """The span that isn't: a shared, reusable, no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **attributes: Any) -> None:
        """Discard the attributes (the real span attaches them)."""


#: The single :class:`NullSpan` every disabled hook shares.
NULL_SPAN = NullSpan()


class TelemetryRecorder:
    """What instrumented code may ask of a recorder.

    The base class *is* the null implementation: every method is a no-op,
    so subclasses override only what they record.  The contract every
    recorder must honour:

    * **recording never charges the ledger** — telemetry observes the
      cost model, it is not part of it (asserted by the overhead-guard
      test in ``tests/test_telemetry.py``);
    * :meth:`span` returns a context manager; nesting is the caller's
      structure and the recorder must tolerate spans closing in LIFO
      order only (the ``with`` statement guarantees it);
    * hooks may fire on *both* execution paths — a recorder must not
      assume batched-only traffic.
    """

    #: Fast gate for hot-path hooks: ``if recorder.enabled: ...``.
    enabled: bool = False

    #: Optional :class:`~repro.telemetry.flight.FlightRecorder` sink for
    #: causal events (``None`` keeps :meth:`event` a no-op).
    flight: Any = None

    #: Optional :class:`~repro.telemetry.attribution.CostAttribution` sink
    #: fed per-node ledger deltas as spans close.
    attribution: Any = None

    def bind_ledger(self, ledger: Any) -> None:
        """Attach the :class:`~repro.network.CommunicationLedger` spans meter.

        Called by :attr:`SensorNetwork.telemetry <repro.network.SensorNetwork>`
        when a recorder is installed on a network.
        """

    def span(self, name: str, **attributes: Any) -> Any:
        """Open a named span; returns a context manager."""
        return NULL_SPAN

    def count(self, name: str, value: int | float = 1, **labels: str) -> None:
        """Add ``value`` to the counter ``name`` (labelled)."""

    def gauge(self, name: str, value: int | float, **labels: str) -> None:
        """Set the gauge ``name`` to ``value`` (labelled)."""

    def observe(self, name: str, value: int | float, **labels: str) -> None:
        """Record one observation into the histogram ``name`` (labelled)."""

    def event(
        self,
        kind: str,
        *,
        node: int | None = None,
        cause: int | None = None,
        **attributes: Any,
    ) -> int | None:
        """Record one causal flight event; returns its id (``None`` here).

        No-op unless a concrete recorder carries a :attr:`flight`
        recorder.  Emitters gate on :attr:`enabled` first, so the disabled
        path never even reaches this call.
        """
        return None


class NullRecorder(TelemetryRecorder):
    """The default recorder: records nothing, allocates nothing.

    A distinct class (rather than using :class:`TelemetryRecorder`
    directly) so ``type(network.telemetry) is NullRecorder`` reads as the
    *intentional* disabled state in tests and reprs.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return "NullRecorder()"


#: The shared disabled recorder every network starts with.
NULL_RECORDER = NullRecorder()


def as_recorder(telemetry: "TelemetryRecorder | None") -> TelemetryRecorder:
    """Normalise an optional recorder argument: ``None`` means disabled."""
    return telemetry if telemetry is not None else NULL_RECORDER


def flatten_labels(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set (sorted by key)."""
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def iter_label_pairs(
    key: tuple[tuple[str, str], ...]
) -> Iterator[tuple[str, str]]:
    """Iterate a flattened label key back out as ``(name, value)`` pairs."""
    return iter(key)
