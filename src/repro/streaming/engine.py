"""The continuous-query engine: incremental aggregates over evolving readings.

:class:`ContinuousQueryEngine` registers standing queries against a
:class:`~repro.network.SensorNetwork` and advances the network through
*epochs*.  Per epoch it

1. applies the stream's reading updates to the nodes (sensing is free),
2. recomputes the local summary of every updated node and marks the node
   dirty if the summary actually changed,
3. runs one :func:`~repro.protocols.epoch_convergecast.epoch_convergecast`
   per query, in which an activated node merges its cached children summaries
   with its own and retransmits only when the result differs from what it
   last sent by more than the ε-slack (transmissions are charged at *delta*
   cost against the parent's cached copy), and
4. reads the answers off the root's merged summary and appends an
   :class:`~repro.streaming.trace.EpochRecord` to the trace.

The suppression rule allocates each node an absolute slack of
``ε · scale / n``, where ``scale`` is the *largest* answer magnitude seen so
far (a high-water mark: a node that suppressed long ago may still be stale,
so the budget must cover the scale at which it suppressed).  At most ``n``
nodes can be stale at once and each holds back a change of distance at most
its slack, so the root answer is within ``ε · scale`` of the unsuppressed
answer at every epoch — the same additive guarantee whether the stream
drifts, bursts or churns.  Steady-state communication is therefore
proportional to *change*: an epoch in which nothing moves costs zero bits.

This module is the *reference* implementation: per-node Python state, one
``decide`` callback per active node, any summary type.  For count-valued
queries at production scale, :mod:`repro.streaming.vector_engine` provides
:class:`~repro.streaming.vector_engine.VectorStreamEngine`, a drop-in
subclass that runs the same epoch as whole-array level sweeps (and, under
``execution="sharded"``, fans subtrees out to worker processes) while
staying bit-for-bit ledger-identical;
:func:`~repro.streaming.vector_engine.engine_for` picks the right engine
for a network's execution mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.simulator import SensorNetwork
from repro.protocols.broadcast import broadcast
from repro.protocols.epoch_convergecast import EpochStats, epoch_convergecast
from repro.streaming.queries import REGISTRATION_BITS, StandingQuery
from repro.streaming.summaries import StreamSummary
from repro.streaming.trace import EpochRecord, StreamingTrace, build_epoch_record


@dataclass
class _NodeQueryState:
    """Per-(node, query) cached state."""

    local: StreamSummary | None = None
    children: dict[int, StreamSummary] = field(default_factory=dict)
    subtree: StreamSummary | None = None
    transmitted: StreamSummary | None = None


@dataclass
class _QueryState:
    """Per-query engine state."""

    query: StandingQuery
    nodes: dict[int, _NodeQueryState]
    initialized: bool = False
    scale: float = 0.0


class ContinuousQueryEngine:
    """Serve standing aggregate queries over a time-evolving sensor network."""

    protocol_prefix = "stream"

    def __init__(
        self,
        network: SensorNetwork,
        epsilon: float = 0.1,
        energy_model: EnergyModel | None = None,
    ) -> None:
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
        self.network = network
        self.epsilon = epsilon
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.trace = StreamingTrace()
        self._queries: dict[str, _QueryState] = {}
        self._answers: dict[str, Any] = {}
        self._pending_dirty: set[int] = set()
        #: Last epoch's "anything transmitting?" truth, for the
        #: ``suppression.flip`` flight event (``None`` before any epoch).
        self._suppression_state: bool | None = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, query: StandingQuery, announce: bool = True) -> None:
        """Register a standing query under ``name``.

        The root announces the query down the tree once (a constant-size
        description, charged like the one-shot protocols' request broadcast);
        from then on the query is answered every epoch until the engine is
        discarded.  Queries registered after epochs have already run are
        bootstrapped on the next epoch by treating every node as dirty.
        """
        if name in self._queries:
            raise ConfigurationError(f"query {name!r} is already registered")
        self._queries[name] = _QueryState(
            query=query,
            nodes={
                node_id: _NodeQueryState()
                for node_id in self.network.attached_node_ids()
            },
        )
        if announce:
            broadcast(
                self.network,
                {"register": name, "kind": query.kind},
                REGISTRATION_BITS,
                protocol=f"{self.protocol_prefix}:{name}:register",
            )

    def queries(self) -> dict[str, StandingQuery]:
        """The registered queries by name."""
        return {name: state.query for name, state in self._queries.items()}

    def answers(self) -> dict[str, Any]:
        """The most recent per-query answers (empty before the first epoch)."""
        return dict(self._answers)

    def root_summary(self, name: str) -> StreamSummary | None:
        """The root's merged subtree summary for one registered query.

        ``None`` until something has reached the root.  This is the
        shared-plan hook the tenancy layer derives per-tenant answers
        from (:mod:`repro.tenancy`): answer parameters excluded from the
        plan signature — a quantile's fraction — are applied to this one
        summary at the root instead of costing extra convergecasts.
        """
        try:
            state = self._queries[name]
        except KeyError:
            raise ConfigurationError(f"unknown query {name!r}") from None
        root_state = state.nodes.get(self.network.root_id)
        return None if root_state is None else root_state.subtree

    @property
    def epoch(self) -> int:
        """Number of epochs advanced so far."""
        return len(self.trace)

    # ------------------------------------------------------------------ #
    # Fault recovery
    # ------------------------------------------------------------------ #
    def apply_root_change(self, election) -> None:
        """Migrate the summary caches after a root fail-over.

        ``election`` is an :class:`~repro.faults.ElectionResult` (duck-typed,
        like :meth:`apply_repair`'s argument) describing a charged handover:
        the old root died, the highest surviving id won, and the tree was
        re-rooted by reversing the parent pointers along
        ``election.reversed_path``.  Instead of cold-resyncing the field,
        the caches *migrate* along that reversed path only:

        * the old root's per-query state is dropped (its caches died with
          it);
        * every node on the path evicts the cached summary of its former
          child that is now its parent (a subtree summary must never count
          its new ancestors), forgets what it last transmitted (its new
          parent caches nothing for it) and is marked dirty — its next
          transmission is one full subtree summary, after which deltas
          resume;
        * every node *off* the path keeps its caches and stays silent: its
          subtree, and therefore everything it ever transmitted, is
          unchanged by the handover.

        Fragments that were not the winner's re-attach through the ordinary
        repair recovery (:meth:`apply_repair`, called with the seeded
        repair's result right after this).  Idempotent and safe to call
        before or after :meth:`apply_repair` for the same epoch.
        """
        if election is None:
            return
        new_root = election.new_root
        path = tuple(election.reversed_path)
        dirty: set[int] = set()
        for state in self._queries.values():
            nodes = state.nodes
            nodes.pop(election.old_root, None)
            previous: int | None = None
            for member in path:
                node_state = nodes.get(member)
                if node_state is None:
                    node_state = nodes[member] = _NodeQueryState()
                if previous is not None:
                    node_state.children.pop(previous, None)
                node_state.transmitted = None
                dirty.add(member)
                previous = member
            if new_root not in nodes:
                nodes[new_root] = _NodeQueryState()
        # The winner must re-read its subtree even if nothing else changed,
        # so the standing answers move to the new root this epoch.
        dirty.add(new_root)
        self._pending_dirty |= dirty
        self._record_root_change_evictions(path)

    def apply_repair(self, result) -> None:
        """Re-synchronise the summary caches after a spanning-tree repair.

        ``result`` is a :class:`~repro.faults.RepairResult` (duck-typed, so
        the streaming layer does not import the faults package); the batched
        and per-edge repair implementations produce identical results, so
        recovery is oblivious to which one ran.  The recovery protocol
        re-transmits only along repaired paths:

        * nodes whose parent changed forget what they last transmitted (the
          new parent caches nothing for them) and are marked dirty — their
          next transmission is one full subtree summary, after which deltas
          resume;
        * parents that lost a child evict that child's cached summary and
          are marked dirty, so the loss propagates up as deltas;
        * crashed / cut-off nodes are dropped from the per-query state;
          every *other* node's caches remain valid and it stays silent.

        Only a full rebuild (``result.rebuilt``) resets every cache — that
        is exactly the recompute cost the incremental path avoids, and what
        the fault benchmarks measure.
        """
        if result is None or not getattr(result, "changed_anything", True):
            return
        tree_nodes = self.network.tree.parent
        if result.rebuilt:
            for state in self._queries.values():
                state.nodes = {
                    node_id: _NodeQueryState() for node_id in tree_nodes
                }
                state.initialized = False
            self._pending_dirty = set(tree_nodes)
            self._record_evictions(result)
            return
        dirty: set[int] = set()
        removed = set(result.removed)
        for state in self._queries.values():
            nodes = state.nodes
            for node_id in removed:
                nodes.pop(node_id, None)
            for parent, child in result.child_losses:
                parent_state = nodes.get(parent)
                if parent_state is not None:
                    parent_state.children.pop(child, None)
                    dirty.add(parent)
            for node_id in result.parent_changed:
                node_state = nodes.get(node_id)
                if node_state is None:
                    node_state = nodes[node_id] = _NodeQueryState()
                node_state.transmitted = None
                dirty.add(node_id)
            # Nodes that re-entered the tree after being dropped in an
            # earlier repair (a region detached for several epochs) need
            # fresh state and a full retransmission, even off the reversal
            # path — their old caches died with the states.
            for node_id in tree_nodes:
                if node_id not in nodes:
                    nodes[node_id] = _NodeQueryState()
                    dirty.add(node_id)
        self._pending_dirty |= {node for node in dirty if node in tree_nodes}
        self._record_evictions(result)

    def _record_evictions(self, result) -> None:
        """Flight events for the cache evictions a repair just caused.

        Called once per recovery (the evictions are identical for every
        registered query).  A rebuild resets every cache, so it emits one
        aggregated event; the incremental path emits one per evicted
        ``(parent, child)`` cache pair.
        """
        telemetry = self.network.telemetry
        if not telemetry.enabled:
            return
        if getattr(result, "rebuilt", False):
            telemetry.event(
                "cache.evict",
                count=len(self.network.tree.parent),
                site="rebuild-reset",
            )
            return
        for parent, child in result.child_losses:
            telemetry.event(
                "cache.evict", node=parent, child=child, site="repair"
            )

    def _record_root_change_evictions(self, path) -> None:
        """Flight events for the cache migration along a re-rooted path."""
        telemetry = self.network.telemetry
        if not telemetry.enabled:
            return
        for previous, member in zip(path, path[1:]):
            telemetry.event(
                "cache.evict", node=member, child=previous, site="root-change"
            )

    # ------------------------------------------------------------------ #
    # Epoch execution
    # ------------------------------------------------------------------ #
    def advance_epoch(
        self, updates: Mapping[int, Sequence[int]] | None = None
    ) -> EpochRecord:
        """Apply one epoch of reading updates and refresh every query's answer.

        ``updates`` maps node id → its new item list (an empty list takes the
        node offline).  Nodes not listed keep their readings.  Returns the
        epoch's :class:`~repro.streaming.trace.EpochRecord` (also appended to
        :attr:`trace`).
        """
        if not self._queries:
            raise ConfigurationError(
                "no standing queries registered; call register() first"
            )
        updates = dict(updates or {})
        # Totals-only diff: build_epoch_record never reads per-node bits, so
        # a steady-state epoch stays O(touched), not O(network size).
        before = self.network.ledger.counters_snapshot()
        self.network.assign_items(
            {node_id: list(items) for node_id, items in updates.items()}
        )

        # Nodes marked dirty by a tree repair (see apply_repair) join this
        # epoch's traversal for every query, then the backlog is cleared.
        pending = self._pending_dirty
        self._pending_dirty = set()
        tree_nodes = self.network.tree.parent
        total_dirty: set[int] = set()
        stats_total = {"transmissions": 0, "suppressions": 0}
        telemetry = self.network.telemetry
        stream_span = telemetry.span("stream", epoch=len(self.trace))
        with stream_span:
            for name, state in self._queries.items():
                dirty = self._refresh_local_summaries(state, updates)
                dirty |= pending
                dirty = {node for node in dirty if node in tree_nodes}
                total_dirty |= dirty
                with telemetry.span("convergecast", query=name):
                    stats = self._run_query_epoch(name, state, dirty)
                stats_total["transmissions"] += stats.transmissions
                stats_total["suppressions"] += stats.suppressions
                self._read_answer(name, state)
            if telemetry.enabled:
                stream_span.annotate(
                    dirty_nodes=len(total_dirty),
                    transmissions=stats_total["transmissions"],
                    suppressions=stats_total["suppressions"],
                )
                transmitting = stats_total["transmissions"] > 0
                if (
                    self._suppression_state is not None
                    and transmitting != self._suppression_state
                ):
                    telemetry.event(
                        "suppression.flip",
                        direction="transmitting" if transmitting else "quiet",
                        transmissions=stats_total["transmissions"],
                        suppressions=stats_total["suppressions"],
                    )
                self._suppression_state = transmitting

        after = self.network.ledger.counters_snapshot()
        record = build_epoch_record(
            epoch=len(self.trace),
            answers=self._answers,
            before=before,
            after=after,
            num_nodes=self.network.num_nodes,
            energy_model=self.energy_model,
            dirty_nodes=len(total_dirty),
            transmissions=stats_total["transmissions"],
            suppressions=stats_total["suppressions"],
            query_names=list(self._queries),
            protocol_prefix=self.protocol_prefix,
        )
        self.trace.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _refresh_local_summaries(
        self, state: _QueryState, updates: Mapping[int, Sequence[int]]
    ) -> set[int]:
        """Recompute local summaries of updated nodes; return the dirty set.

        Updates addressed to nodes the engine no longer tracks (crashed or
        cut off by faults) are ignored — their readings cannot reach the
        root until a repair re-attaches them, at which point
        :meth:`apply_repair` recreates their state.
        """
        if state.initialized:
            candidates = set(updates)
        else:
            candidates = set(state.nodes)
            state.initialized = True
        dirty: set[int] = set()
        for node_id in candidates:
            node_state = state.nodes.get(node_id)
            if node_state is None:
                continue
            new_local = state.query.local_summary(self.network.node(node_id).items)
            if node_state.local is None or not new_local.same_as(node_state.local):
                node_state.local = new_local
                dirty.add(node_id)
        return dirty

    def _slack(self, state: _QueryState) -> float:
        return self.epsilon * state.scale / max(1, self.network.num_nodes)

    def _run_query_epoch(
        self, name: str, state: _QueryState, dirty: set[int]
    ) -> EpochStats:
        slack = self._slack(state)

        def decide(
            node_id: int, received: Mapping[int, StreamSummary]
        ) -> tuple[StreamSummary, int] | None:
            node_state = state.nodes[node_id]
            for child, summary in received.items():
                node_state.children[child] = summary
            subtree = node_state.local
            if subtree is None:  # a query registered before any epoch ran
                subtree = state.query.local_summary(self.network.node(node_id).items)
                node_state.local = subtree
            for summary in node_state.children.values():
                subtree = subtree.merge(summary)
            node_state.subtree = subtree
            if self.network.tree.parent[node_id] is None:
                return None
            if node_state.transmitted is None:
                bits = subtree.serialized_bits()
            elif subtree.distance(node_state.transmitted) <= slack:
                return None
            else:
                # A wholesale content shift can make the delta cost more than
                # starting over; a real sender picks the cheaper frame, at the
                # price of one flag bit telling the receiver which it got.
                bits = 1 + min(
                    subtree.delta_bits(node_state.transmitted),
                    subtree.serialized_bits(),
                )
            node_state.transmitted = subtree
            return subtree, bits

        return epoch_convergecast(
            self.network,
            dirty,
            decide,
            protocol=f"{self.protocol_prefix}:{name}",
        )

    def _read_answer(self, name: str, state: _QueryState) -> None:
        root_state = state.nodes[self.network.root_id]
        if root_state.subtree is None:
            return  # nothing has ever reached the root for this query
        self._answers[name] = state.query.answer(root_state.subtree)
        # High-water mark: suppressed residue from an epoch with a larger
        # answer persists until those nodes re-activate, so both the slack and
        # the reported bound must keep covering the largest scale seen.
        state.scale = max(state.scale, state.query.scale(root_state.subtree))

    def error_bounds(self) -> dict[str, float]:
        """Per-query absolute answer-error guarantees.

        Bounds are relative to the largest answer magnitude seen so far, not
        the instantaneous one — see the class docstring.
        """
        return {
            name: state.query.error_bound(self.epsilon, state.scale)
            for name, state in self._queries.items()
        }


def run_stream(
    engine: "ContinuousQueryEngine",
    stream,
    epochs: int,
) -> StreamingTrace:
    """Drive ``engine`` through ``epochs`` epochs of a stream workload.

    Epoch 0 applies the stream's initial assignment; later epochs apply its
    per-epoch updates.  Works with any engine exposing ``advance_epoch``
    (including :class:`~repro.streaming.recompute.RecomputeEngine`), so the
    incremental/naive comparison drives both through identical inputs.
    """
    if epochs <= 0:
        raise ConfigurationError(f"epochs must be positive, got {epochs}")
    engine.advance_epoch(stream.initial())
    for epoch in range(1, epochs):
        engine.advance_epoch(stream.step(epoch))
    return engine.trace
