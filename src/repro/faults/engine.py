"""The fault-injection engine.

:class:`FaultEngine` owns everything that can go wrong with a running
:class:`~repro.network.SensorNetwork`: it applies scripted events from a
:class:`~repro.faults.events.FaultScript`, draws stochastic crash / rejoin /
link-failure events from per-epoch rates, mutates the network (alive-mask,
item loss, graph edges) accordingly, and drives the configured
:class:`~repro.faults.repair.TreeRepair` so the spanning tree keeps spanning
the alive, root-connected population.  One :meth:`step` per epoch returns a
:class:`FaultReport` describing both the injected events and the repair's
outcome, which the stream runner feeds to the continuous-query engine's
recovery protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro._util.randomness import make_rng
from repro._util.validation import require_non_negative, require_probability
from repro.exceptions import ConfigurationError
from repro.faults.events import (
    FaultEvent,
    FaultScript,
    LinkDrop,
    LinkRestore,
    NodeCrash,
    NodeRejoin,
    RegionalOutage,
    expand_regional_outage,
)
from repro.faults.repair import RepairResult, TreeRepair
from repro.network.simulator import SensorNetwork


@dataclass(frozen=True)
class FaultReport:
    """What one epoch of fault injection did to the network."""

    epoch: int
    crashed: tuple[int, ...]
    rejoined: tuple[int, ...]
    dropped_links: tuple[tuple[int, int], ...]
    restored_links: tuple[tuple[int, int], ...]
    repair: RepairResult
    applied_events: int = 0

    @property
    def had_faults(self) -> bool:
        return bool(
            self.crashed
            or self.rejoined
            or self.dropped_links
            or self.restored_links
        )


class FaultEngine:
    """Inject scripted and stochastic faults and keep the tree repaired."""

    def __init__(
        self,
        network: SensorNetwork,
        script: FaultScript | None = None,
        repair: TreeRepair | None = None,
        seed: int | None = 0,
        crash_rate: float = 0.0,
        rejoin_rate: float = 0.0,
        link_drop_rate: float = 0.0,
        rejoin_value_max: int = 1 << 16,
    ) -> None:
        self.network = network
        self.script = script if script is not None else FaultScript()
        self.repair = repair if repair is not None else TreeRepair()
        self.crash_rate = require_probability(crash_rate, "crash_rate")
        self.rejoin_rate = require_probability(rejoin_rate, "rejoin_rate")
        self.link_drop_rate = require_probability(link_drop_rate, "link_drop_rate")
        self.rejoin_value_max = require_non_negative(
            rejoin_value_max, "rejoin_value_max"
        )
        self._rng = make_rng(seed)
        self.dropped_edges: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    # Epoch driver
    # ------------------------------------------------------------------ #
    def step(
        self, epoch: int, extra_events: Sequence[FaultEvent] = ()
    ) -> FaultReport:
        """Apply epoch ``epoch``'s events (scripted, extra, then stochastic),
        repair the tree, and report what happened.

        ``extra_events`` lets callers feed in events produced elsewhere —
        e.g. a :class:`~repro.workloads.ChurnStream` running in explicit
        event mode.  A quiet epoch skips the repair pass entirely: a static
        field cannot heal or break on its own, and detached survivors are
        reconsidered by the full repair the next event triggers.
        """
        events = list(self.script.events_at(epoch))
        events.extend(extra_events)
        events.extend(self._stochastic_events())
        crashed: list[int] = []
        rejoined: list[int] = []
        dropped: list[tuple[int, int]] = []
        restored: list[tuple[int, int]] = []
        for event in events:
            self._apply(event, crashed, rejoined, dropped, restored)
        if crashed or rejoined or dropped or restored:
            repair = self.repair.repair(self.network)
        else:
            repair = _noop_repair()
        return FaultReport(
            epoch=epoch,
            crashed=tuple(crashed),
            rejoined=tuple(rejoined),
            dropped_links=tuple(dropped),
            restored_links=tuple(restored),
            repair=repair,
            applied_events=len(events),
        )

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def _apply(
        self,
        event: FaultEvent,
        crashed: list[int],
        rejoined: list[int],
        dropped: list[tuple[int, int]],
        restored: list[tuple[int, int]],
    ) -> None:
        network = self.network
        if isinstance(event, NodeCrash):
            if network.is_alive(event.node_id):
                network.kill_node(event.node_id)
                crashed.append(event.node_id)
        elif isinstance(event, NodeRejoin):
            if not network.is_alive(event.node_id):
                network.revive_node(event.node_id)
                node = network.node(event.node_id)
                node.clear_items()
                node.add_items(event.items)
                rejoined.append(event.node_id)
        elif isinstance(event, RegionalOutage):
            for crash in expand_regional_outage(
                network.graph, event, protect=(network.root_id,)
            ):
                self._apply(crash, crashed, rejoined, dropped, restored)
        elif isinstance(event, LinkDrop):
            edge = event.edge
            if network.graph.has_edge(*edge):
                network.graph.remove_edge(*edge)
                self.dropped_edges.add(edge)
                dropped.append(edge)
        elif isinstance(event, LinkRestore):
            edge = event.edge
            if edge in self.dropped_edges:
                network.graph.add_edge(*edge)
                self.dropped_edges.discard(edge)
                restored.append(edge)
        else:
            raise ConfigurationError(f"unknown fault event {event!r}")

    def _stochastic_events(self) -> list[FaultEvent]:
        """Draw this epoch's random events (deterministic in the seed).

        Nodes are visited in ascending id order so twin engines with equal
        seeds inject identical faults regardless of execution mode.
        """
        events: list[FaultEvent] = []
        network = self.network
        rng = self._rng
        if self.crash_rate > 0.0:
            for node_id in network.alive_node_ids():
                if node_id == network.root_id:
                    continue
                if rng.random() < self.crash_rate:
                    events.append(NodeCrash(node_id))
        if self.rejoin_rate > 0.0:
            for node_id in network.dead_node_ids():
                if rng.random() < self.rejoin_rate:
                    events.append(
                        NodeRejoin(
                            node_id,
                            items=(rng.randint(0, self.rejoin_value_max),),
                        )
                    )
        if self.link_drop_rate > 0.0:
            for u, v in sorted(
                tuple(sorted(edge)) for edge in network.graph.edges()
            ):
                if rng.random() < self.link_drop_rate:
                    events.append(LinkDrop(u, v))
        return events


def _noop_repair() -> RepairResult:
    return RepairResult(
        strategy="noop",
        rebuilt=False,
        parent_changed=(),
        child_losses=(),
        removed=(),
        detached=(),
        control_bits=0,
        control_messages=0,
        rounds=0,
    )
