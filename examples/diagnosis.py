"""Causal diagnosis: ask a storm-under-churn run *why* its worst epoch cost.

Run with::

    python examples/diagnosis.py

The same 400-node storm-under-churn workload as ``observability.py`` — a
crash storm at epoch 4, partial rejoins at epoch 8, background churn, a
charged heartbeat detector — but this time the tracer carries the full
causal diagnosis layer:

- a :class:`repro.telemetry.FlightRecorder` ring that captures every causal
  event (fault injections, heartbeat misses, adoptions, elections, cache
  evictions, suppression flips) with ``cause_event_id`` links back to the
  event that triggered it, and
- a :class:`repro.telemetry.CostAttribution` sink that folds each epoch
  span's per-node ledger delta into cumulative columns, top-k hotspots and
  quantiles — without charging a bit, and without taking a single extra
  ledger mark.

After the run, :func:`repro.telemetry.diagnose` replays the trace: a
rolling median/MAD detector flags the anomalous epochs, and each flag is
explained by walking the flight-recorder events backwards to a root cause.
The output ends with the "why" report for the *worst* epoch — the storm,
named as the injected fault that started the chain.
"""

from __future__ import annotations

from repro import (
    ContinuousQueryEngine,
    CountQuery,
    FaultEngine,
    HeartbeatDetector,
    MedianQuery,
    RootElection,
    SensorNetwork,
    SpanTracer,
    run_faulty_stream,
)
from repro.telemetry import CostAttribution, FlightRecorder, diagnose, verdict
from repro.workloads import ChurnStream, storm_under_churn_script

NUM_NODES = 400
EPOCHS = 12
STORM_EPOCH = 4
REJOIN_EPOCH = 8
DOMAIN = 1 << 16
EPSILON = 0.1


def main() -> None:
    network = SensorNetwork.from_items(
        [0] * NUM_NODES, topology="random_geometric", seed=0, degree_bound=None
    )
    network.clear_items()
    engine = ContinuousQueryEngine(network, epsilon=EPSILON)
    engine.register("count", CountQuery())
    engine.register("median", MedianQuery(universe_size=DOMAIN, compression=256))
    script = storm_under_churn_script(
        network.node_ids(),
        epochs=EPOCHS,
        storm_epoch=STORM_EPOCH,
        storm_fraction=0.2,
        rejoin_epoch=REJOIN_EPOCH,
        seed=0,
    )
    faults = FaultEngine(
        network,
        script=script,
        detector=HeartbeatDetector(period=2),
        election=RootElection(),
    )
    stream = ChurnStream(NUM_NODES, max_value=DOMAIN, seed=3)

    tracer = SpanTracer(flight=FlightRecorder(), attribution=CostAttribution())
    run_faulty_stream(engine, stream, faults, epochs=EPOCHS, telemetry=tracer)

    print(
        f"flight ring captured {len(tracer.flight)} causal events "
        f"({tracer.flight.dropped} dropped); attribution folded "
        f"{len(tracer.attribution.epochs)} epoch(s) "
        f"in {tracer.attribution.epochs[-1].mode!r} mode"
    )
    print()

    diagnosis = diagnose(list(tracer.iter_dicts()))
    print(diagnosis.render())
    print()

    worst = diagnosis.worst()
    if worst is None:
        print("no anomaly to explain — rerun with a sharper storm")
        return
    print(f"why the worst epoch (epoch {worst.epoch}) cost what it did:")
    for line in worst.render().splitlines():
        print(f"  {line}")
    print()
    summary = verdict(diagnosis)
    print(
        f"verdict: {summary['anomalies']} anomaly flag(s) across epochs "
        f"{summary['anomalous_epochs']}, {summary['attributed']} attributed "
        f"(root causes: {summary['root_cause_kinds']})"
    )


if __name__ == "__main__":
    main()
