"""Benchmark harness reproducing the paper's experiments (see DESIGN.md)."""
