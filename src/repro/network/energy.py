"""Energy model.

The paper's motivation (Section 1) is that communication dominates a sensor's
power budget — "sending or receiving a small message may consume as much power
as a thousand processing cycles".  The :class:`EnergyModel` turns the bit
counters of a :class:`~repro.network.CommunicationLedger` into per-node energy
figures so experiments can be reported in the units practitioners care about.

Default coefficients follow the common first-order radio model used in the
sensor-network literature (e.g. Heinzelman et al.): a fixed per-bit
electronics cost for both transmit and receive, plus an amplifier term for
transmission.  Absolute values are nominal; only ratios matter for the
comparisons reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.accounting import CommunicationLedger


@dataclass(frozen=True)
class EnergyModel:
    """Per-bit energy coefficients, in nanojoules per bit."""

    transmit_nj_per_bit: float = 50.0
    receive_nj_per_bit: float = 50.0
    amplifier_nj_per_bit: float = 10.0
    idle_nj_per_round: float = 1.0

    def transmit_cost(self, bits: int) -> float:
        """Energy (nJ) to transmit ``bits`` bits."""
        return bits * (self.transmit_nj_per_bit + self.amplifier_nj_per_bit)

    def receive_cost(self, bits: int) -> float:
        """Energy (nJ) to receive ``bits`` bits."""
        return bits * self.receive_nj_per_bit

    def report(self, ledger: CommunicationLedger) -> "EnergyReport":
        """Summarise a ledger as per-node and aggregate energy figures."""
        per_node: dict[int, float] = {}
        for node in ledger.nodes():
            traffic = ledger.traffic(node)
            per_node[node] = (
                self.transmit_cost(traffic.bits_sent)
                + self.receive_cost(traffic.bits_received)
                + self.idle_nj_per_round * ledger.rounds
            )
        total = sum(per_node.values())
        peak = max(per_node.values()) if per_node else 0.0
        return EnergyReport(per_node_nj=per_node, total_nj=total, peak_node_nj=peak)


@dataclass(frozen=True)
class EnergyReport:
    """Energy consumed by each node and in aggregate, in nanojoules."""

    per_node_nj: dict[int, float] = field(default_factory=dict)
    total_nj: float = 0.0
    peak_node_nj: float = 0.0

    @property
    def network_lifetime_proxy(self) -> float:
        """Inverse of the peak per-node energy (higher is better).

        The node that spends the most energy dies first; its consumption is
        the standard first-order proxy for network lifetime.
        """
        if self.peak_node_nj == 0.0:
            return float("inf")
        return 1.0 / self.peak_node_nj
