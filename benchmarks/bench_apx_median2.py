"""E6 — Theorem 4.7 / Corollary 4.8: the polyloglog median of Fig. 4.

Reproduces the two shapes behind the theorem:

* per-node communication is essentially flat in N for fixed m, β, ε (it is a
  function of log log N only), and it grows with the *logarithm of the domain
  width* far more slowly than the deterministic protocol's — the exponential
  gap between probing values and probing value-lengths;
* the zoom-in recursion (Fig. 3's schematic) actually delivers the requested
  value precision β.

The absolute constants favour the exact protocol at simulable sizes (a LogLog
sketch per probe is expensive); the fitted envelopes extrapolate where the
crossover falls — see EXPERIMENTS.md.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_polyloglog_sweep
from repro.analysis.metrics import fit_growth_exponent
from repro.analysis.report import format_table
from repro.analysis.theory import (
    exact_median_bits_envelope,
    polyloglog_median_bits_envelope,
    predicted_crossover,
)
from repro.core.median import DeterministicMedianProtocol
from repro.core.apx_median2 import PolyloglogMedianProtocol
from repro.core.rep_count import RepetitionPolicy
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology
from repro.workloads.generators import generate_workload

SIZES = [64, 256, 1024]


def test_polyloglog_median_scaling_in_n(benchmark):
    records = run_once(
        benchmark, run_polyloglog_sweep, SIZES, num_registers=32, beta=1 / 16, epsilon=0.25
    )
    rows = [
        [
            record.num_items,
            int(record.answer),
            int(record.true_median),
            record.extra["value_error"],
            record.extra["stages"],
            record.max_node_bits,
        ]
        for record in records
    ]
    print()
    print(format_table(
        ["N", "answer", "true median", "value error", "zoom stages", "max bits/node"],
        rows,
        title="E6  Corollary 4.8 — APX_MEDIAN2 (β = 1/16, m = 32)",
    ))

    sizes = [record.num_items for record in records]
    costs = [record.max_node_bits for record in records]
    exponent, _ = fit_growth_exponent(sizes, costs)
    benchmark.extra_info["power_law_exponent"] = round(exponent, 3)
    # Flat in N (the only N-dependence is through log log N).
    assert exponent < 0.2
    assert max(costs) <= 1.5 * min(costs)
    # Precision: value error within ~2β for most points.
    errors = sorted(record.extra["value_error"] for record in records)
    assert errors[len(errors) // 2] <= 2 * (1 / 16) + 0.02


def test_domain_width_sensitivity_and_crossover(benchmark):
    """The deterministic protocol pays per value-bit; APX_MEDIAN2 pays per length-bit."""

    def sweep():
        results = []
        n, side = 144, 12
        for log_domain in (10, 20, 30):
            max_value = (1 << log_domain) - 1
            items = generate_workload("uniform", n, max_value=max_value, seed=8)
            network = SensorNetwork.from_items(items, topology=grid_topology(side))
            exact_bits = DeterministicMedianProtocol(domain_max=max_value).run(network).max_node_bits
            network.reset_ledger()
            approx_bits = PolyloglogMedianProtocol(
                beta=1 / 8, epsilon=0.25, num_registers=16,
                repetition_policy=RepetitionPolicy.practical(cap=2),
                domain_max=max_value, seed=4,
            ).run(network).max_node_bits
            results.append((log_domain, exact_bits, approx_bits))
        return results

    results = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["log2(X̄)", "MEDIAN bits/node", "APX_MEDIAN2 bits/node"],
        [list(row) for row in results],
        title="E6b  domain-width sensitivity (N = 144)",
    ))
    exact_growth = results[-1][1] / results[0][1]
    approx_growth = results[-1][2] / results[0][2]
    benchmark.extra_info["exact_growth_10_to_30_bits"] = round(exact_growth, 2)
    benchmark.extra_info["approx_growth_10_to_30_bits"] = round(approx_growth, 2)
    # Tripling the value width inflates the deterministic protocol much more
    # than the length-domain protocol — the mechanism behind Corollary 4.8.
    assert exact_growth > approx_growth

    # Extrapolated crossover from the fitted constants (model-based, see
    # EXPERIMENTS.md for the caveats).
    exact_constant = results[0][1] / exact_median_bits_envelope(144, 1 << 10)
    approx_constant = results[0][2] / polyloglog_median_bits_envelope(
        144, num_registers=16, beta=1 / 8, epsilon=0.25
    )
    crossover = predicted_crossover(
        exact_constant, approx_constant, num_registers=16, beta=1 / 8, epsilon=0.25
    )
    benchmark.extra_info["extrapolated_crossover_N"] = crossover
