"""One engine, many tenants: the multi-tenant standing-query service.

:class:`MultiTenantEngine` is the runtime half of the tenancy layer.  It
owns one underlying streaming engine — picked per the network's execution
mode by :func:`~repro.streaming.engine_for`, so batched, per-edge,
vectorized and sharded networks all work — and drives it through the
shared plan the :class:`~repro.tenancy.QueryPlanner` maintains:

* :meth:`register` admits a tenant's query through the planner; only a
  decision that creates a **new leg** registers anything on the engine
  (and its announcement broadcast is billed to the admitting tenant).
  Shared and degraded registrations touch no engine state — Q tenants on
  one leg cost exactly what one tenant costs;
* :meth:`advance_epoch` advances the underlying engine once — one charged
  convergecast and one ε-suppression decision **per leg**, not per tenant
  (the plan-aware suppression: a leg's slack high-water mark is shared by
  every subscriber) — then splits the epoch's per-leg ledger deltas into
  the per-tenant columns (:class:`~repro.tenancy.TenantLedgerSplit`) and
  derives every tenant's answer at the root from the shared summaries
  (``root_summary`` + the *tenant's own* ``answer()``, so fraction-only
  quantile differences are resolved root-side for free).

The engine duck-types what :func:`~repro.faults.run_faulty_stream` needs
(``advance_epoch`` / ``apply_repair`` / ``apply_root_change`` /
``queries`` / ``network`` / ``energy_model``), so the whole resilient
stack — heartbeat detection, tree repair, root fail-over — serves all
tenants through the one shared plan.

Telemetry: admissions count under ``tenant.admissions`` (labelled by
status and tier), each epoch's split runs inside a ``tenant.split`` span
and bills per-tenant ``tenant.bits`` counters; ``tenant.legs`` /
``tenant.queries`` gauges track the dedup ratio.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.simulator import SensorNetwork
from repro.streaming.queries import StandingQuery
from repro.streaming.summaries import CountSummary
from repro.streaming.trace import EpochRecord, StreamingTrace
from repro.streaming.vector_engine import VectorStreamEngine, engine_for
from repro.tenancy.ledger import TenantLedgerSplit
from repro.tenancy.planner import AdmissionDecision, QueryPlanner


class MultiTenantEngine:
    """Serve many tenants' standing queries through one shared plan."""

    def __init__(
        self,
        network: SensorNetwork,
        epsilon: float = 0.1,
        energy_model: EnergyModel | None = None,
        bits_budget: int | None = None,
        **engine_kwargs: Any,
    ) -> None:
        self.network = network
        self.engine = engine_for(network, epsilon, energy_model, **engine_kwargs)
        self.planner = QueryPlanner(
            num_nodes=network.num_nodes, bits_budget=bits_budget
        )
        self.split = TenantLedgerSplit()
        #: Tenant -> query name -> (the tenant's own query, its leg).
        self._tenant_queries: dict[str, dict[str, tuple[StandingQuery, str]]] = {}
        self._tenant_answers: dict[str, dict[str, Any]] = {}
        #: Ledger bits already settled into the split, per protocol key.
        self._accounted: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        tenant: str,
        name: str,
        query: StandingQuery,
        tier: str = "standard",
    ) -> AdmissionDecision:
        """Admit one tenant query into the shared plan.

        Returns the planner's :class:`~repro.tenancy.AdmissionDecision`;
        a ``rejected`` decision leaves the engine, the plan and the ledger
        untouched (the tenant simply gets no answers for this name).
        """
        if not tenant or not name:
            raise ConfigurationError(
                "tenant and query name must be non-empty strings"
            )
        if name in self._tenant_queries.get(tenant, {}):
            raise ConfigurationError(
                f"tenant {tenant!r} already registered query {name!r}"
            )
        if isinstance(self.engine, VectorStreamEngine) and not isinstance(
            query.local_summary([]), CountSummary
        ):
            # Fail before the planner records anything, mirroring the
            # vectorized engine's own count-only registration guard.
            raise ConfigurationError(
                f"{type(query).__name__} is not count-valued; a "
                f"{self.network.execution!r} network serves COUNT / COUNTP "
                "tenants only — use a batched or per-edge network for "
                "quantile and distinct-count tenants"
            )
        decision = self.planner.admit(tenant, name, query, tier=tier)
        if decision.status == "admitted":
            self.engine.register(decision.leg, self.planner.leg(decision.leg).query)
            self._settle_registrations()
        if decision.admitted:
            self._tenant_queries.setdefault(tenant, {})[name] = (
                query,
                decision.leg,
            )
        telemetry = self.network.telemetry
        if telemetry.enabled:
            telemetry.count(
                "tenant.admissions",
                1,
                status=decision.status,
                tier=decision.tier,
            )
            telemetry.gauge("tenant.legs", len(self.planner.legs()))
            telemetry.gauge(
                "tenant.queries",
                sum(len(queries) for queries in self._tenant_queries.values()),
            )
        return decision

    # ------------------------------------------------------------------ #
    # Epoch execution
    # ------------------------------------------------------------------ #
    def advance_epoch(
        self, updates: Mapping[int, Sequence[int]] | None = None
    ) -> EpochRecord:
        """Advance the shared plan one epoch and bill every tenant.

        Returns the underlying engine's
        :class:`~repro.streaming.EpochRecord` (per-leg answers and the
        plan's total epoch cost); per-tenant derived answers are read via
        :meth:`tenant_answers`.
        """
        if not self.planner.legs():
            raise ConfigurationError(
                "no admitted standing queries; register() at least one "
                "tenant query first"
            )
        record = self.engine.advance_epoch(updates)
        telemetry = self.network.telemetry
        with telemetry.span("tenant.split", epoch=record.epoch) as span:
            epoch_shares = self._settle_epoch()
            self._derive_answers()
            if telemetry.enabled:
                span.annotate(
                    bits=sum(epoch_shares.values()),
                    tenants=len(epoch_shares),
                    legs=len(self.planner.legs()),
                )
                for tenant, bits in epoch_shares.items():
                    telemetry.count("tenant.bits", bits, tenant=tenant)
        return record

    # ------------------------------------------------------------------ #
    # Fault recovery + engine passthroughs
    # ------------------------------------------------------------------ #
    def apply_repair(self, result) -> None:
        self.engine.apply_repair(result)

    def apply_root_change(self, election) -> None:
        self.engine.apply_root_change(election)

    def queries(self) -> dict[str, StandingQuery]:
        """The shared plan's leg queries (what the network actually runs)."""
        return self.engine.queries()

    def close(self) -> None:
        """Release underlying resources (sharded worker pools)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    @property
    def trace(self) -> StreamingTrace:
        return self.engine.trace

    @property
    def epoch(self) -> int:
        return self.engine.epoch

    @property
    def epsilon(self) -> float:
        return self.engine.epsilon

    @property
    def energy_model(self) -> EnergyModel:
        return self.engine.energy_model

    # ------------------------------------------------------------------ #
    # Answers
    # ------------------------------------------------------------------ #
    def tenant_answers(self, tenant: str) -> dict[str, Any]:
        """One tenant's latest answers by its own query names."""
        return dict(self._tenant_answers.get(tenant, {}))

    def answers(self) -> dict[str, dict[str, Any]]:
        """Every tenant's latest answers (empty before the first epoch)."""
        return {
            tenant: dict(answers)
            for tenant, answers in self._tenant_answers.items()
        }

    def tenants(self) -> list[str]:
        """Tenants with at least one served (non-rejected) query."""
        return sorted(self._tenant_queries)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def plan_bits(self) -> int:
        """Total bits the shared plan has charged the network ledger.

        The sum of every leg's protocol keys (epoch traffic plus
        registration broadcasts) — exactly what the tenant columns of
        :attr:`split` must add up to.
        """
        per_protocol = self.network.ledger.per_protocol_bits()
        return sum(
            per_protocol.get(key, 0)
            for leg in self.planner.legs()
            for key in self._leg_keys(leg)
        )

    def decomposition_holds(self) -> bool:
        """The ledger-split invariant, checked against the network ledger."""
        return (
            self.split.decomposition_holds()
            and self.split.total_bits == self.plan_bits()
        )

    def _leg_keys(self, leg_name: str) -> tuple[str, str]:
        epoch_key = f"{self.engine.protocol_prefix}:{leg_name}"
        return epoch_key, f"{epoch_key}:register"

    def _settle_registrations(self) -> None:
        """Bill unaccounted registration broadcasts to each leg's owner."""
        per_protocol = self.network.ledger.per_protocol_bits()
        for leg_name, leg in self.planner.legs().items():
            _, register_key = self._leg_keys(leg_name)
            charged = per_protocol.get(register_key, 0)
            delta = charged - self._accounted.get(register_key, 0)
            if delta:
                self.split.charge_direct(leg.owner, leg_name, delta)
                self._accounted[register_key] = charged

    def _settle_epoch(self) -> dict[str, int]:
        """Split this epoch's per-leg ledger deltas; returns tenant shares."""
        self._settle_registrations()
        per_protocol = self.network.ledger.per_protocol_bits()
        leg_deltas: dict[str, int] = {}
        for leg_name in self.planner.legs():
            epoch_key, _ = self._leg_keys(leg_name)
            charged = per_protocol.get(epoch_key, 0)
            delta = charged - self._accounted.get(epoch_key, 0)
            if delta:
                leg_deltas[leg_name] = delta
                self._accounted[epoch_key] = charged
        return self.split.split_epoch(leg_deltas, self.planner.subscriptions())

    def _derive_answers(self) -> None:
        """Per-tenant answers off the shared root summaries.

        Each tenant's *own* query extracts the answer, so parameters the
        plan signature excludes (a quantile's fraction) apply here, at the
        root, for free.  A leg whose summary has not reached the root yet
        (nothing transmitted so far) yields no answer — matching the
        single-tenant engines' behaviour.
        """
        for tenant, queries in self._tenant_queries.items():
            answers = self._tenant_answers.setdefault(tenant, {})
            for name, (query, leg) in queries.items():
                summary = self.engine.root_summary(leg)
                if summary is not None:
                    answers[name] = query.answer(summary)
