"""Tests for the baseline median protocols (experiment E8's contenders)."""

import pytest

from repro.baselines.gk_median import GKMedianProtocol
from repro.baselines.gossip_median import GossipMedianProtocol
from repro.baselines.naive import NaiveShipAllMedianProtocol
from repro.baselines.qdigest_median import QDigestMedianProtocol
from repro.baselines.sampling_median import SamplingMedianProtocol
from repro.core.definitions import rank, reference_median
from repro.core.median import DeterministicMedianProtocol
from repro.exceptions import ConfigurationError, EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology, single_hop_topology
from repro.workloads.generators import generate_workload


def _network(n=100, side=10, workload="uniform", max_value=50_000, seed=1):
    items = generate_workload(workload, n, max_value=max_value, seed=seed)
    return SensorNetwork.from_items(items, topology=grid_topology(side)), items


def _rank_error(items, estimate):
    return abs(rank(items, estimate) - len(items) / 2) / len(items)


class TestNaiveMedian:
    def test_exact_answer(self):
        network, items = _network(seed=2)
        outcome = NaiveShipAllMedianProtocol().run(network).value
        assert outcome.median == reference_median(items)
        assert outcome.n == len(items)

    def test_exact_on_duplicate_heavy_input(self):
        network, items = _network(workload="zipf", seed=3)
        outcome = NaiveShipAllMedianProtocol(domain_max=50_000).run(network).value
        assert outcome.median == reference_median(items)

    def test_cost_linear_in_n(self):
        costs = {}
        for n in (36, 144):
            items = generate_workload("uniform", n, max_value=n * n, seed=4)
            network = SensorNetwork.from_items(items, topology=line_topology(n))
            costs[n] = NaiveShipAllMedianProtocol(domain_max=n * n).run(network).max_node_bits
        assert costs[144] >= 3 * costs[36]

    def test_more_expensive_than_binary_search_median(self):
        network, items = _network(n=225, side=15, seed=5)
        naive_bits = NaiveShipAllMedianProtocol(domain_max=50_000).run(network).max_node_bits
        network.reset_ledger()
        smart_bits = DeterministicMedianProtocol(domain_max=50_000).run(network).max_node_bits
        assert naive_bits > 2 * smart_bits

    def test_empty_network_rejected(self):
        network = SensorNetwork.from_items([1], topology=line_topology(1))
        network.clear_items()
        with pytest.raises(EmptyNetworkError):
            NaiveShipAllMedianProtocol().run(network)


class TestSamplingMedian:
    def test_rank_error_shrinks_with_sample_size(self):
        network, items = _network(n=400, side=20, seed=6)
        errors = {}
        for sample_size in (8, 128):
            network.reset_ledger()
            outcome = SamplingMedianProtocol(
                sample_size=sample_size, domain_max=50_000, salt=3
            ).run(network).value
            errors[sample_size] = _rank_error(items, outcome.median)
        assert errors[128] <= errors[8] + 0.05

    def test_reasonable_accuracy(self):
        network, items = _network(seed=7)
        outcome = SamplingMedianProtocol(sample_size=64, domain_max=50_000).run(network).value
        assert _rank_error(items, outcome.median) < 0.2

    def test_sample_size_validated(self):
        with pytest.raises(Exception):
            SamplingMedianProtocol(sample_size=0)

    def test_cost_scales_with_sample_size(self):
        network, _ = _network(seed=8)
        small = SamplingMedianProtocol(sample_size=8, domain_max=50_000).run(network)
        network.reset_ledger()
        large = SamplingMedianProtocol(sample_size=64, domain_max=50_000).run(network)
        assert large.max_node_bits > 2 * small.max_node_bits


class TestGKMedian:
    def test_rank_error_within_epsilon_budget(self):
        network, items = _network(n=400, side=20, seed=9)
        outcome = GKMedianProtocol(epsilon=0.05, domain_max=50_000).run(network).value
        # Merging along the tree can sum errors; stay within a small multiple.
        assert _rank_error(items, outcome.median) < 0.2

    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            GKMedianProtocol(epsilon=0.0)

    def test_summary_size_reported(self):
        network, _ = _network(seed=10)
        outcome = GKMedianProtocol(epsilon=0.1, domain_max=50_000).run(network).value
        assert outcome.summary_size > 0

    def test_cheaper_than_naive_on_large_networks(self):
        network, _ = _network(n=400, side=20, seed=11)
        gk_bits = GKMedianProtocol(epsilon=0.1, domain_max=50_000).run(network).max_node_bits
        network.reset_ledger()
        naive_bits = NaiveShipAllMedianProtocol(domain_max=50_000).run(network).max_node_bits
        assert gk_bits < naive_bits


class TestQDigestMedian:
    def test_reasonable_accuracy(self):
        network, items = _network(n=400, side=20, seed=12)
        outcome = QDigestMedianProtocol(compression=64, domain_max=50_000).run(network).value
        assert _rank_error(items, outcome.median) < 0.2

    def test_accuracy_improves_with_compression_budget(self):
        network, items = _network(n=400, side=20, seed=13)
        errors = {}
        for compression in (4, 128):
            network.reset_ledger()
            outcome = QDigestMedianProtocol(
                compression=compression, domain_max=50_000
            ).run(network).value
            errors[compression] = _rank_error(items, outcome.median)
        assert errors[128] <= errors[4] + 0.05

    def test_digest_size_reported(self):
        network, _ = _network(seed=14)
        outcome = QDigestMedianProtocol(compression=16, domain_max=50_000).run(network).value
        assert outcome.digest_size > 0


class TestGossipMedian:
    def test_accuracy_on_well_mixing_topology(self):
        items = generate_workload("uniform", 64, max_value=10_000, seed=15)
        network = SensorNetwork.from_items(items, topology=single_hop_topology(64))
        outcome = GossipMedianProtocol(seed=1).run(network).value
        assert _rank_error(items, outcome.median) < 0.25

    def test_probe_and_round_metadata(self):
        items = generate_workload("uniform", 36, max_value=1_000, seed=16)
        network = SensorNetwork.from_items(items, topology=grid_topology(6))
        outcome = GossipMedianProtocol(seed=2, rounds_per_probe=20).run(network).value
        assert outcome.rounds_per_probe == 20
        assert outcome.probes >= 1

    def test_degenerate_equal_values(self):
        network = SensorNetwork.from_items([9] * 25, topology=grid_topology(5))
        outcome = GossipMedianProtocol(seed=3).run(network).value
        assert outcome.median == 9

    def test_empty_network_rejected(self):
        network = SensorNetwork.from_items([1], topology=line_topology(1))
        network.clear_items()
        with pytest.raises(EmptyNetworkError):
            GossipMedianProtocol().run(network)

    def test_uses_no_spanning_tree_messages(self):
        items = generate_workload("uniform", 36, max_value=1_000, seed=17)
        network = SensorNetwork.from_items(items, topology=grid_topology(6))
        GossipMedianProtocol(seed=4, rounds_per_probe=10).run(network)
        breakdown = network.ledger.per_protocol_bits()
        assert "PUSH_SUM" in breakdown
        assert breakdown.get("COUNTP", 0) == 0
