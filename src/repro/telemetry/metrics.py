"""The metrics registry: counters, gauges and histograms with two exporters.

One :class:`MetricsRegistry` holds every named metric of a run.  Metrics are
created lazily on first touch and carry an optional label set (``protocol``,
``phase``, ``query``, …), so the registry doubles as the per-ledger-key bit
breakdown and the per-phase wall-clock table.  Two render targets:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series), so a run's metrics can be scraped or diffed with
  standard tooling;
* :meth:`MetricsRegistry.render_markdown` — the human dashboard the
  ``scripts/telemetry_report.py`` CLI and ``examples/observability.py``
  print.

Like every telemetry component, the registry never touches the
communication ledger: it is an observer of the cost model, not a payer
into it.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError
from repro.telemetry.recorder import flatten_labels

#: Default histogram bucket boundaries: four decades around "seconds of
#: wall-clock and handfuls-to-millions of bits" — wide enough that both the
#: phase timings and the bit-volume observations land inside the ladder.
DEFAULT_BUCKETS = (
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:.]*$")
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")

LabelKey = tuple[tuple[str, str], ...]


def _prom_name(name: str) -> str:
    """Metric name mangled to the Prometheus charset (dots become _)."""
    return _PROM_BAD.sub("_", name)


def _prom_labels(key: LabelKey, extra: str | None = None) -> str:
    parts = [f'{label}="{value}"' for label, value in key]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


@dataclass
class HistogramState:
    """Count/sum/min/max plus cumulative bucket counts for one label set."""

    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * len(self.buckets)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """All counters, gauges and histograms of one instrumented run."""

    def __init__(self, histogram_buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        buckets = tuple(sorted(float(bound) for bound in histogram_buckets))
        if not buckets:
            raise ConfigurationError("histogram_buckets must not be empty")
        self._default_buckets = buckets
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, HistogramState]] = {}
        self._histogram_buckets: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_OK.match(name):
            raise ConfigurationError(
                f"invalid metric name {name!r}; use letters, digits, '_', ':', '.'"
            )
        return name

    def count(self, name: str, value: int | float = 1, **labels: str) -> None:
        """Add ``value`` (non-negative) to the counter ``name``."""
        if value < 0:
            raise ConfigurationError(
                f"counter {name!r} cannot decrease (got {value})"
            )
        family = self._counters.setdefault(self._check_name(name), {})
        key = flatten_labels(labels)
        family[key] = family.get(key, 0) + value

    def gauge(self, name: str, value: int | float, **labels: str) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        family = self._gauges.setdefault(self._check_name(name), {})
        family[flatten_labels(labels)] = value

    def declare_histogram(self, name: str, buckets: Iterable[float]) -> None:
        """Pin explicit bucket bounds for ``name`` (before first observation)."""
        if name in self._histograms:
            raise ConfigurationError(
                f"histogram {name!r} already has observations; declare first"
            )
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ConfigurationError("histogram buckets must not be empty")
        self._histogram_buckets[self._check_name(name)] = bounds

    def observe(self, name: str, value: int | float, **labels: str) -> None:
        """Record one observation into the histogram ``name``."""
        family = self._histograms.setdefault(self._check_name(name), {})
        key = flatten_labels(labels)
        state = family.get(key)
        if state is None:
            bounds = self._histogram_buckets.get(name, self._default_buckets)
            state = family[key] = HistogramState(buckets=bounds)
        state.observe(float(value))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0 if never touched)."""
        return self._counters.get(name, {}).get(flatten_labels(labels), 0)

    def gauge_value(self, name: str, **labels: str) -> float | None:
        """Current value of one gauge series (``None`` if never set)."""
        return self._gauges.get(name, {}).get(flatten_labels(labels))

    def histogram(self, name: str, **labels: str) -> HistogramState | None:
        """The histogram state of one series (``None`` if never observed)."""
        return self._histograms.get(name, {}).get(flatten_labels(labels))

    def counter_series(self, name: str) -> dict[LabelKey, float]:
        """Every label set of counter ``name`` with its value."""
        return dict(self._counters.get(name, {}))

    def names(self) -> dict[str, list[str]]:
        """Registered metric names grouped by kind."""
        return {
            "counters": sorted(self._counters),
            "gauges": sorted(self._gauges),
            "histograms": sorted(self._histograms),
        }

    # ------------------------------------------------------------------ #
    # Exporters
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-safe dump of every metric (the JSONL ``metrics`` line)."""

        def series(family: Mapping[LabelKey, float]) -> list[dict]:
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(family.items())
            ]

        return {
            "counters": {
                name: series(family)
                for name, family in sorted(self._counters.items())
            },
            "gauges": {
                name: series(family)
                for name, family in sorted(self._gauges.items())
            },
            "histograms": {
                name: [
                    {
                        "labels": dict(key),
                        "count": state.count,
                        "sum": state.total,
                        "min": state.minimum if state.count else None,
                        "max": state.maximum if state.count else None,
                        "buckets": {
                            str(bound): cumulative
                            for bound, cumulative in zip(
                                state.buckets, state.counts
                            )
                        },
                    }
                    for key, state in sorted(family.items())
                ]
                for name, family in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """The Prometheus text exposition format (one family per metric)."""
        lines: list[str] = []
        for name, family in sorted(self._counters.items()):
            metric = prefix + _prom_name(name)
            lines.append(f"# TYPE {metric} counter")
            for key, value in sorted(family.items()):
                lines.append(f"{metric}{_prom_labels(key)} {_format(value)}")
        for name, family in sorted(self._gauges.items()):
            metric = prefix + _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(family.items()):
                lines.append(f"{metric}{_prom_labels(key)} {_format(value)}")
        for name, family in sorted(self._histograms.items()):
            metric = prefix + _prom_name(name)
            lines.append(f"# TYPE {metric} histogram")
            for key, state in sorted(family.items()):
                for bound, cumulative in zip(state.buckets, state.counts):
                    le_label = 'le="' + _format(bound) + '"'
                    labels = _prom_labels(key, le_label)
                    lines.append(f"{metric}_bucket{labels} {cumulative}")
                inf_labels = _prom_labels(key, 'le="+Inf"')
                lines.append(f"{metric}_bucket{inf_labels} {state.count}")
                lines.append(
                    f"{metric}_sum{_prom_labels(key)} {_format(state.total)}"
                )
                lines.append(f"{metric}_count{_prom_labels(key)} {state.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_markdown(self) -> str:
        """The human dashboard: one markdown table per metric kind."""
        sections: list[str] = []
        if self._counters:
            rows = ["| counter | labels | value |", "| --- | --- | ---: |"]
            for name, family in sorted(self._counters.items()):
                for key, value in sorted(family.items()):
                    rows.append(
                        f"| `{name}` | {_labels_cell(key)} | {_format(value)} |"
                    )
            sections.append("\n".join(rows))
        if self._gauges:
            rows = ["| gauge | labels | value |", "| --- | --- | ---: |"]
            for name, family in sorted(self._gauges.items()):
                for key, value in sorted(family.items()):
                    rows.append(
                        f"| `{name}` | {_labels_cell(key)} | {_format(value)} |"
                    )
            sections.append("\n".join(rows))
        if self._histograms:
            rows = [
                "| histogram | labels | count | mean | min | max |",
                "| --- | --- | ---: | ---: | ---: | ---: |",
            ]
            for name, family in sorted(self._histograms.items()):
                for key, state in sorted(family.items()):
                    rows.append(
                        f"| `{name}` | {_labels_cell(key)} | {state.count} | "
                        f"{_format(state.mean)} | "
                        f"{_format(state.minimum) if state.count else '-'} | "
                        f"{_format(state.maximum) if state.count else '-'} |"
                    )
            sections.append("\n".join(rows))
        if not sections:
            return "(no metrics recorded)\n"
        return "\n\n".join(sections) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


def _format(value: float) -> str:
    """Integers render without a trailing ``.0``; floats at 6 significant digits."""
    if isinstance(value, float):
        if value.is_integer() and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return json.dumps(value)


def _labels_cell(key: LabelKey) -> str:
    if not key:
        return "-"
    return ", ".join(f"{label}={value}" for label, value in key)
