"""Cell runners: one sweep cell in, one normalized record out.

Each runner wraps one of the hand-written study drivers in
:mod:`repro.analysis.experiments`, installs a fresh
:class:`~repro.telemetry.SpanTracer` on the instrumented arm (the study
runners grew ``telemetry=`` hooks in the telemetry PR, so every phase's
spans and bits come for free), and folds the outcome into a plain dict:

``measures``
    Deterministic simulation results — bits, savings factors, answer
    errors.  Same seed, same numbers, on every machine and under any
    process fan-out; this is the section ``sweep diff`` compares.
``timing``
    Wall-clock observations.  Recorded for humans, ignored by the diff.
``phases``
    The telemetry phase breakdown (:func:`repro.telemetry.phases_payload`)
    — the same shape the ``BENCH_<name>.json`` reports carry, so a sweep
    cell's span taxonomy maps 1:1 onto ``docs/TELEMETRY.md``.

Runners take the sweep axis vocabulary (``n``, ``scenario``,
``detector_period``, …) and translate it onto each study's keyword
arguments; unknown parameters fail loudly with the study's ``TypeError``
so a typo in a spec can never silently run a default.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.analysis.experiments import (
    run_fault_tolerance_study,
    run_multitenant_study,
    run_root_failover_study,
    run_scaling_study,
    run_streaming_comparison,
)
from repro.exceptions import ConfigurationError
from repro.telemetry import SpanTracer, phases_payload


def _take_n(params: dict) -> dict:
    """Translate the sweep-wide ``n`` axis onto a study's ``num_nodes``."""
    if "n" in params:
        if "num_nodes" in params:
            raise ConfigurationError("give either 'n' or 'num_nodes', not both")
        params = dict(params)
        params["num_nodes"] = params.pop("n")
    return params


def run_streaming_cell(params: dict[str, Any]) -> dict:
    """E10 as a cell: incremental vs recompute over one identical stream."""
    tracer = SpanTracer()
    comparison = run_streaming_comparison(telemetry=tracer, **_take_n(params))
    return {
        "measures": {
            "workload": comparison.workload,
            "num_nodes": comparison.num_nodes,
            "epochs": comparison.epochs,
            "epsilon": comparison.epsilon,
            "incremental_bits": comparison.incremental_bits,
            "recompute_bits": comparison.recompute_bits,
            "savings_factor": round(comparison.savings_factor, 4),
            "max_count_error": comparison.max_count_error,
            "max_median_rank_error": comparison.max_median_rank_error,
            "count_error_budget": comparison.count_error_budget,
            "median_rank_error_budget": round(
                comparison.median_rank_error_budget, 4
            ),
        },
        "phases": phases_payload(tracer),
    }


def run_fault_tolerance_cell(params: dict[str, Any]) -> dict:
    """E12 as a cell: incremental repair vs rebuild under one fault script."""
    tracer = SpanTracer()
    comparison = run_fault_tolerance_study(telemetry=tracer, **_take_n(params))
    return {
        "measures": {
            "scenario": comparison.scenario,
            "num_nodes": comparison.num_nodes,
            "epochs": comparison.epochs,
            "epsilon": comparison.epsilon,
            "incremental_fault_bits": comparison.incremental_fault_bits,
            "rebuild_fault_bits": comparison.rebuild_fault_bits,
            "savings_factor": round(comparison.savings_factor, 4),
            "incremental_total_bits": comparison.incremental_total_bits,
            "rebuild_total_bits": comparison.rebuild_total_bits,
            "incremental_repair_bits": comparison.incremental_repair_bits,
            "rebuild_repair_bits": comparison.rebuild_repair_bits,
            "incremental_max_count_error": comparison.incremental_max_count_error,
            "rebuild_max_count_error": comparison.rebuild_max_count_error,
            "count_error_budget": comparison.count_error_budget,
            "incremental_rebuilds": comparison.incremental_rebuilds,
            "rebuild_rebuilds": comparison.rebuild_rebuilds,
            "detection_bits": comparison.incremental_detection_bits,
            "detection_latency": comparison.detection_latency,
            "detector_period": comparison.detector_period,
        },
        "phases": phases_payload(tracer),
    }


def run_root_failover_cell(params: dict[str, Any]) -> dict:
    """E13 as a cell: charged election + migration vs rebuild-and-recompute."""
    tracer = SpanTracer()
    comparison = run_root_failover_study(telemetry=tracer, **_take_n(params))
    return {
        "measures": {
            "num_nodes": comparison.num_nodes,
            "epochs": comparison.epochs,
            "crash_epoch": comparison.crash_epoch,
            "new_root": comparison.new_root,
            "attached_at_crash": comparison.attached_at_crash,
            "failover_fault_bits": comparison.failover_fault_bits,
            "rebuild_fault_bits": comparison.rebuild_fault_bits,
            "savings_factor": round(comparison.savings_factor, 4),
            "failover_election_bits": comparison.failover_election_bits,
            "rebuild_election_bits": comparison.rebuild_election_bits,
            "failover_max_count_error": comparison.failover_max_count_error,
            "rebuild_max_count_error": comparison.rebuild_max_count_error,
            "count_error_budget": comparison.count_error_budget,
            "decomposition_holds": comparison.decomposition_holds,
        },
        "phases": phases_payload(tracer),
    }


def run_scaling_cell(params: dict[str, Any]) -> dict:
    """E11 as a cell: one network size, batched vs per-edge round trip.

    Wall-clock comparisons are machine-dependent, so the speedup lands in
    ``timing``; the ledger-identity verdict and the charged bits — the
    deterministic part — are the cell's measures.
    """
    params = _take_n(params)
    num_nodes = params.pop("num_nodes")
    tracer = SpanTracer()
    records = run_scaling_study(sizes=[num_nodes], telemetry=tracer, **params)
    (record,) = records
    return {
        "measures": {
            "num_nodes": record.num_nodes,
            "topology": record.topology,
            "tree_height": record.tree_height,
            "total_bits": record.total_bits,
            "messages": record.messages,
            "ledgers_identical": record.ledgers_identical,
        },
        "timing": {
            "batched_seconds": round(record.batched_seconds, 4),
            "per_edge_seconds": (
                None
                if record.per_edge_seconds is None
                else round(record.per_edge_seconds, 4)
            ),
            "speedup": (
                None if record.speedup is None else round(record.speedup, 2)
            ),
        },
        "phases": phases_payload(tracer),
    }


def run_multitenant_cell(params: dict[str, Any]) -> dict:
    """E14 as a cell: Q overlapping tenant queries, shared plan vs Q engines."""
    tracer = SpanTracer()
    comparison = run_multitenant_study(telemetry=tracer, **_take_n(params))
    return {
        "measures": {
            "num_nodes": comparison.num_nodes,
            "epochs": comparison.epochs,
            "epsilon": comparison.epsilon,
            "workload": comparison.workload,
            "tenants": comparison.tenants,
            "legs": comparison.legs,
            "admitted": comparison.admitted,
            "shared": comparison.shared,
            "degraded": comparison.degraded,
            "rejected": comparison.rejected,
            "shared_bits": comparison.shared_bits,
            "independent_bits": comparison.independent_bits,
            "savings_factor": round(comparison.savings_factor, 4),
            "answers_match": comparison.answers_match,
            "decomposition_holds": comparison.decomposition_holds,
        },
        "phases": phases_payload(tracer),
    }


#: The experiment-kind registry sweep specs select from.
CELL_RUNNERS: dict[str, Callable[[dict[str, Any]], dict]] = {
    "streaming": run_streaming_cell,
    "fault_tolerance": run_fault_tolerance_cell,
    "root_failover": run_root_failover_cell,
    "scaling": run_scaling_cell,
    "multitenant": run_multitenant_cell,
}


def runner_for(experiment: str) -> Callable[[dict[str, Any]], dict]:
    """Resolve an experiment kind, failing loudly with the known list."""
    try:
        return CELL_RUNNERS[experiment]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment kind {experiment!r}; "
            f"known: {sorted(CELL_RUNNERS)}"
        ) from None


def run_cell(experiment: str, params: dict[str, Any]) -> dict:
    """Execute one cell and stamp its wall-clock into ``timing``."""
    runner = runner_for(experiment)
    started = time.perf_counter()
    result = runner(dict(params))
    result.setdefault("timing", {})
    result["timing"].setdefault(
        "cell_seconds", round(time.perf_counter() - started, 4)
    )
    return result
