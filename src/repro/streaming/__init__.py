"""Continuous-query streaming engine.

Every protocol elsewhere in the package answers a *one-shot* query: the root
initiates, a convergecast runs, the network is done.  Real deployments of the
paper's setting run the same aggregates — median/quantiles, counts, count
distinct, predicate counts — *continuously* over readings that evolve over
time.  This subpackage is that execution layer:

* :mod:`repro.streaming.queries` — standing-query definitions
  (:class:`CountQuery`, :class:`PredicateCountQuery`, :class:`QuantileQuery`,
  :class:`MedianQuery`, :class:`DistinctCountQuery`);
* :mod:`repro.streaming.summaries` — the mergeable, delta-encodable subtree
  summaries those queries maintain, built on the existing sketches;
* :mod:`repro.streaming.engine` — :class:`ContinuousQueryEngine`, which
  caches per-subtree summaries and per epoch retransmits only deltas from
  nodes whose summary moved beyond an ε-slack, so steady-state communication
  is proportional to change rather than network size;
* :mod:`repro.streaming.recompute` — :class:`RecomputeEngine`, the naive
  every-epoch-from-scratch baseline the savings are measured against;
* :mod:`repro.streaming.trace` — per-epoch bits / messages / energy records.

Quick start::

    from repro import (
        ContinuousQueryEngine, MedianQuery, CountQuery, SensorNetwork,
        run_stream,
    )
    from repro.workloads import DriftStream

    stream = DriftStream(num_nodes=100, max_value=1 << 16, seed=0)
    network = SensorNetwork.from_items([0] * 100, topology="grid")
    engine = ContinuousQueryEngine(network, epsilon=0.1)
    engine.register("median", MedianQuery(universe_size=1 << 16))
    engine.register("count", CountQuery())
    trace = run_stream(engine, stream, epochs=50)
    print(engine.answers(), trace.total_bits)
"""

from repro.streaming.engine import ContinuousQueryEngine, run_stream
from repro.streaming.queries import (
    CountQuery,
    DistinctCountQuery,
    MedianQuery,
    PredicateCountQuery,
    QuantileQuery,
    StandingQuery,
)
from repro.streaming.recompute import RecomputeEngine
from repro.streaming.summaries import (
    CountSummary,
    DistinctSummary,
    QuantileSummary,
    StreamSummary,
)
from repro.streaming.trace import EpochRecord, StreamingTrace
from repro.streaming.vector_engine import VectorStreamEngine, engine_for

__all__ = [
    "ContinuousQueryEngine",
    "VectorStreamEngine",
    "engine_for",
    "RecomputeEngine",
    "run_stream",
    "StandingQuery",
    "CountQuery",
    "PredicateCountQuery",
    "QuantileQuery",
    "MedianQuery",
    "DistinctCountQuery",
    "StreamSummary",
    "CountSummary",
    "QuantileSummary",
    "DistinctSummary",
    "EpochRecord",
    "StreamingTrace",
]
