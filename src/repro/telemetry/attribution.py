"""Per-node cost attribution: *which* nodes an epoch's bits landed on.

The paper's cost measure is per-node — the maximum over nodes of bits sent
plus received — yet the telemetry layer (PR 6) reports only aggregate
per-phase totals.  :class:`CostAttribution` closes that gap as an opt-in
sink on a :class:`~repro.telemetry.SpanTracer`: every time an ``epoch``
span closes, the sink reads the span's already-open
:class:`~repro.network.LedgerMark` (no second mark, no extra charge) and
folds the epoch's per-node bit deltas into one of two representations:

* **dense** — cumulative per-node bits as a numpy ``int64`` column (a plain
  dict without numpy), exact per-node history for the batched / vectorized
  regimes up to :attr:`CostAttribution.dense_limit` nodes;
* **sketch** — the million-node regime: each epoch's per-node bit
  *distribution* is compressed into the repository's own
  :class:`~repro.sketches.QDigest` (values log₂-bucketed, digest
  compression ``≈ 1/ε``) plus an exact top-``k`` hotspot heap, so retained
  state stays ``O(k + 1/ε)`` per epoch instead of ``O(n)`` — the
  observability layer summarised with the paper's own machinery.

Either way the sink *observes* the ledger and never charges it (the
telemetry cardinal rule; the overhead-guard test holds it to zero extra
bits), and each epoch lands in the JSONL trace as one
``"type": "attribution"`` line that :mod:`repro.telemetry.diagnose` and
``scripts/diagnose.py`` use to name hotspots in "why" reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Iterator

from repro._util.fastpath import np
from repro.exceptions import ConfigurationError
from repro.sketches.qdigest import QDigest

#: Valid values of :attr:`CostAttribution.mode`.
ATTRIBUTION_MODES = ("auto", "dense", "sketch")

#: The sketch's value domain: per-node epoch deltas are clamped into
#: ``[0, 2**UNIVERSE_BITS)`` (30 bits ≈ a gigabit on one node in one epoch,
#: far beyond anything the suppression machinery permits).
UNIVERSE_BITS = 30

#: Quantile fractions reported per epoch.
QUANTILE_FRACTIONS = (0.5, 0.9, 0.99)

#: Largest per-node epoch delta for which the dense fold derives its order
#: statistics from one ``np.bincount`` pass (the histogram then costs at
#: most 1 MiB) instead of an introselect over the delta column.
BINCOUNT_LIMIT = 1 << 17

#: Dict folds at or above this many touched nodes route their statistics
#: through numpy (when available); below it the pure-Python heap/sort is
#: faster than the round-trip into arrays.
VECTOR_DICT_FOLD_MIN = 4096


@dataclass
class EpochAttribution:
    """One epoch's per-node bit distribution, compressed.

    ``hotspots`` is the exact top-``k`` of the epoch's per-node deltas as
    ``(node, bits)`` pairs, descending; ``quantiles`` maps ``"p50"`` /
    ``"p90"`` / ``"p99"`` / ``"max"`` to bit values (digest-approximate in
    sketch mode, exact in dense mode); ``digest`` is the
    :class:`~repro.sketches.QDigest` itself in sketch mode (``None`` in
    dense mode, where the full delta vector was available).
    """

    epoch: int
    #: Sum of per-node deltas.  Every charged bit touches a sender and a
    #: receiver, so this is exactly twice the ledger's epoch ``total_bits``.
    node_bits: int
    #: Nodes with a non-zero delta this epoch.
    touched: int
    hotspots: list[tuple[int, int]]
    quantiles: dict[str, int]
    mode: str
    digest: QDigest | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        """JSON-safe dict — one ``"type": "attribution"`` JSONL line."""
        record = {
            "type": "attribution",
            "epoch": self.epoch,
            "node_bits": self.node_bits,
            "touched": self.touched,
            "hotspots": [[int(node), int(bits)] for node, bits in self.hotspots],
            "quantiles": dict(self.quantiles),
            "mode": self.mode,
        }
        if self.digest is not None:
            record["sketch_entries"] = self.digest.size
            record["sketch_bits"] = self.digest.serialized_bits()
        return record


class CostAttribution:
    """Opt-in per-node cost sink fed from ledger-mark deltas.

    ``mode="auto"`` (default) keeps the dense column while the population
    stays at or below ``dense_limit`` and switches to the sketch above it;
    ``"dense"`` / ``"sketch"`` pin one representation.  ``epsilon`` sets the
    q-digest compression (``compression ≈ 1/ε``); ``top_k`` the exact
    hotspot count.  ``span_name`` names the span whose close feeds the sink
    (the pipeline's per-epoch unit, ``"epoch"``).

    Attach to a tracer and run as usual::

        tracer = SpanTracer(attribution=CostAttribution(top_k=8))
        run_faulty_stream(engine, stream, faults, epochs, telemetry=tracer)
        node, bits, share = tracer.attribution.top_hotspot(epoch=3)
    """

    def __init__(
        self,
        mode: str = "auto",
        *,
        top_k: int = 8,
        epsilon: float = 1 / 64,
        dense_limit: int = 200_000,
        span_name: str = "epoch",
    ) -> None:
        if mode not in ATTRIBUTION_MODES:
            raise ConfigurationError(
                f"unknown attribution mode {mode!r}; known: {ATTRIBUTION_MODES}"
            )
        if top_k <= 0:
            raise ConfigurationError(f"top_k must be positive, got {top_k}")
        if not 0 < epsilon <= 1:
            raise ConfigurationError(
                f"epsilon must be in (0, 1], got {epsilon}"
            )
        self.mode = mode
        self.top_k = top_k
        self.epsilon = epsilon
        self.compression = max(1, round(1 / epsilon))
        self.dense_limit = dense_limit
        self.span_name = span_name
        #: One :class:`EpochAttribution` per observed epoch, in order.
        self.epochs: list[EpochAttribution] = []
        #: Dense mode: cumulative per-node bits (numpy ``int64`` keyed by
        #: canonical position / node id, or a dict without numpy).  ``None``
        #: until the first fold, and permanently ``None`` in sketch mode —
        #: the memory-bound test asserts exactly this.
        self.cumulative: Any = None
        self._cumulative_dict: dict[int, int] | None = None

    # ------------------------------------------------------------------ #
    # Feeding (driven by SpanTracer._close; manual driving also works)
    # ------------------------------------------------------------------ #
    def observe_span(self, span, ledger, mark):
        """Fold one closing span's ledger interval (called by the tracer).

        Returns the dense per-node delta array on the numpy path (so the
        tracer can reuse it for the span's ``max_node_bits`` instead of
        re-subtracting), or ``None`` on the dict path.
        """
        epoch = span.attributes.get("epoch")
        if epoch is None:
            epoch = len(self.epochs)
        return self.observe(int(epoch), ledger, mark)

    def observe(self, epoch: int, ledger, mark):
        """Fold the per-node deltas accumulated on ``mark`` since its start.

        Reads the mark without releasing it (the caller owns its
        lifecycle).  An :class:`~repro.network.ArrayLedger` mark folds as
        one whole-array subtraction (the delta array is returned); a
        dict-backed :class:`~repro.network.LedgerMark` folds its
        O(touched) baselines and returns ``None``.
        """
        deltas = None
        if np is not None and hasattr(ledger, "node_delta_array"):
            deltas = ledger.node_delta_array(mark)
        if deltas is not None:
            self._fold_array(epoch, deltas)
        else:
            self._fold_dict(epoch, ledger.node_deltas_since(mark))
        return deltas

    def _use_dense(self, population: int) -> bool:
        if self.mode == "dense":
            return True
        if self.mode == "sketch":
            return False
        return population <= self.dense_limit

    def _fold_array(self, epoch: int, deltas) -> None:
        size = int(deltas.size)
        dense = self._use_dense(size)
        if dense:
            if self.cumulative is None or self.cumulative.size < size:
                grown = np.zeros(size, dtype=np.int64)
                if self.cumulative is not None:
                    grown[: self.cumulative.size] = self.cumulative
                self.cumulative = grown
            self.cumulative[:size] += deltas
        digest = None
        hotspots: list[tuple[int, int]] = []
        quantiles = {"p50": 0, "p90": 0, "p99": 0, "max": 0}
        touched = 0
        node_bits = 0
        dmax = int(deltas.max()) if size else 0
        if dmax > 0:
            if (
                dense
                and dmax <= BINCOUNT_LIMIT
                and int(deltas.min()) >= 0
            ):
                # Fast path for the per-epoch regime: one counting pass
                # over the column yields the whole value histogram, and
                # every order statistic falls out of its prefix sums.
                touched, node_bits, quantiles, cutoff, k = (
                    self._stats_from_bincount(deltas, dmax)
                )
            else:
                positive = deltas[deltas > 0]
                touched = int(positive.size)
                node_bits = int(positive.sum())
                k = min(self.top_k, touched)
                # One multi-index introselect serves both the exact
                # quantiles and the top-k value cutoff.  Seeding the
                # selection at the median makes the near-end indices
                # almost free, where a lone kth at touched-k (or
                # np.argpartition) costs ~7x more on the heavily
                # duplicated delta columns real sweeps produce.
                indices = sorted(
                    {
                        min(touched - 1, int(fraction * touched))
                        for fraction in QUANTILE_FRACTIONS
                    }
                    | {touched - k}
                )
                selected = np.partition(positive, indices)
                cutoff = int(selected[touched - k])
                if dense:
                    quantiles = {
                        f"p{int(fraction * 100)}": int(
                            selected[min(touched - 1, int(fraction * touched))]
                        )
                        for fraction in QUANTILE_FRACTIONS
                    }
                    quantiles["max"] = int(selected[indices[-1] :].max())
                else:
                    digest = self._digest_from_buckets(
                        self._buckets_array(positive)
                    )
                    quantiles = self._digest_quantiles(digest)
            candidates = np.nonzero(deltas > cutoff)[0]
            if candidates.size < k:
                ties = np.nonzero(deltas == cutoff)[0][: k - candidates.size]
                candidates = np.concatenate([candidates, ties])
            hotspots = sorted(
                ((int(node), int(deltas[node])) for node in candidates),
                key=itemgetter(1),
                reverse=True,
            )
        if not dense and digest is None:
            positive = deltas[deltas > 0]
            touched = int(positive.size)
            node_bits = int(positive.sum()) if touched else 0
            digest = self._digest_from_buckets(self._buckets_array(positive))
            quantiles = self._digest_quantiles(digest)
        self.epochs.append(
            EpochAttribution(
                epoch=epoch,
                node_bits=node_bits,
                touched=touched,
                hotspots=hotspots,
                quantiles=quantiles,
                mode="dense" if dense else "sketch",
                digest=digest,
            )
        )

    def _stats_from_bincount(self, deltas, dmax: int):
        """Exact fold statistics from one counting pass over the column.

        Per-node epoch deltas are small (heartbeats plus a few summaries),
        so the value histogram is tiny and every order statistic — the
        quantiles, the top-k cutoff, the positive count and their sum —
        reads straight off its prefix sums, replacing the O(n log n)-ish
        selection with a single O(n) pass.
        """
        counts = np.bincount(deltas)
        touched = int(deltas.size - counts[0])
        values = np.arange(counts.size, dtype=np.int64)
        node_bits = int(values @ counts)
        positive_cum = np.cumsum(counts[1:])

        def value_at(rank: int) -> int:
            # sorted(positive)[rank]: first value whose running count
            # exceeds the rank.
            return 1 + int(np.searchsorted(positive_cum, rank, side="right"))

        quantiles = {
            f"p{int(fraction * 100)}": value_at(
                min(touched - 1, int(fraction * touched))
            )
            for fraction in QUANTILE_FRACTIONS
        }
        quantiles["max"] = dmax
        k = min(self.top_k, touched)
        return touched, node_bits, quantiles, value_at(touched - k), k

    def _fold_dict(self, epoch: int, deltas: dict[int, int]) -> None:
        positive = {node: bits for node, bits in deltas.items() if bits > 0}
        dense = self._use_dense(len(positive))
        if dense:
            if self._cumulative_dict is None:
                self._cumulative_dict = {}
                if self.cumulative is None:
                    self.cumulative = self._cumulative_dict
            cumulative = self._cumulative_dict
            for node, bits in positive.items():
                cumulative[node] = cumulative.get(node, 0) + bits
        if np is not None and len(positive) >= VECTOR_DICT_FOLD_MIN:
            # Large dict folds (the batched pipeline at scale): Python
            # sorts/heaps over 10^5 items cost more than the epoch's own
            # bookkeeping, so lift the stats into numpy.
            self._append_dict_stats_vectorized(epoch, positive, dense)
            return
        hotspots = heapq.nlargest(
            self.top_k, positive.items(), key=itemgetter(1)
        )
        hotspots.sort(key=itemgetter(1), reverse=True)
        digest = None
        if dense:
            quantiles = self._exact_quantiles(sorted(positive.values()))
        else:
            buckets: dict[int, int] = {}
            for bits in positive.values():
                bucket = 1 << (min(bits, (1 << UNIVERSE_BITS) - 1).bit_length() - 1)
                buckets[bucket] = buckets.get(bucket, 0) + 1
            digest = self._digest_from_buckets(buckets)
            quantiles = self._digest_quantiles(digest)
        self.epochs.append(
            EpochAttribution(
                epoch=epoch,
                node_bits=sum(positive.values()),
                touched=len(positive),
                hotspots=hotspots,
                quantiles=quantiles,
                mode="dense" if dense else "sketch",
                digest=digest,
            )
        )

    def _append_dict_stats_vectorized(
        self, epoch: int, positive: dict[int, int], dense: bool
    ) -> None:
        """Numpy stats for a large dict fold (same results, no big sorts)."""
        count = len(positive)
        nodes = np.fromiter(positive.keys(), dtype=np.int64, count=count)
        bits = np.fromiter(positive.values(), dtype=np.int64, count=count)
        dmax = int(bits.max())
        digest = None
        if dense and 0 < dmax <= BINCOUNT_LIMIT:
            touched, node_bits, quantiles, cutoff, k = (
                self._stats_from_bincount(bits, dmax)
            )
        else:
            node_bits = int(bits.sum())
            k = min(self.top_k, count)
            indices = sorted(
                {
                    min(count - 1, int(fraction * count))
                    for fraction in QUANTILE_FRACTIONS
                }
                | {count - k}
            )
            selected = np.partition(bits, indices)
            cutoff = int(selected[count - k])
            if dense:
                quantiles = {
                    f"p{int(fraction * 100)}": int(
                        selected[min(count - 1, int(fraction * count))]
                    )
                    for fraction in QUANTILE_FRACTIONS
                }
                quantiles["max"] = dmax
            else:
                digest = self._digest_from_buckets(self._buckets_array(bits))
                quantiles = self._digest_quantiles(digest)
        chosen = np.nonzero(bits > cutoff)[0]
        if chosen.size < k:
            ties = np.nonzero(bits == cutoff)[0][: k - chosen.size]
            chosen = np.concatenate([chosen, ties])
        hotspots = sorted(
            zip(nodes[chosen].tolist(), bits[chosen].tolist()),
            key=itemgetter(1),
            reverse=True,
        )
        self.epochs.append(
            EpochAttribution(
                epoch=epoch,
                node_bits=node_bits,
                touched=count,
                hotspots=hotspots,
                quantiles=quantiles,
                mode="dense" if dense else "sketch",
                digest=digest,
            )
        )

    # ------------------------------------------------------------------ #
    # Sketch helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _buckets_array(positive) -> dict[int, int]:
        """Log₂ histogram of an array of positive deltas: {2^e: count}."""
        if not positive.size:
            return {}
        clamped = np.minimum(positive, (1 << UNIVERSE_BITS) - 1)
        exponents = np.frexp(clamped.astype(np.float64))[1] - 1
        counts = np.bincount(exponents)
        return {
            1 << exponent: int(count)
            for exponent, count in enumerate(counts.tolist())
            if count
        }

    def _digest_from_buckets(self, buckets: dict[int, int]) -> QDigest:
        digest = QDigest(
            universe_size=1 << UNIVERSE_BITS, compression=self.compression
        )
        for value, count in sorted(buckets.items()):
            digest.add(value, count)
        digest.compress()
        return digest

    @staticmethod
    def _exact_quantiles(ordered) -> dict[str, int]:
        """Quantiles of a sorted sequence / array of positive deltas."""
        size = len(ordered)
        if not size:
            return {"p50": 0, "p90": 0, "p99": 0, "max": 0}
        quantiles = {
            f"p{int(fraction * 100)}": int(
                ordered[min(size - 1, int(fraction * size))]
            )
            for fraction in QUANTILE_FRACTIONS
        }
        quantiles["max"] = int(ordered[size - 1])
        return quantiles

    @staticmethod
    def _digest_quantiles(digest: QDigest) -> dict[str, int]:
        if digest.total == 0:
            return {"p50": 0, "p90": 0, "p99": 0, "max": 0}
        quantiles = {
            f"p{int(fraction * 100)}": int(digest.quantile(fraction))
            for fraction in QUANTILE_FRACTIONS
        }
        quantiles["max"] = int(digest.quantile(1.0))
        return quantiles

    # ------------------------------------------------------------------ #
    # Queries and export
    # ------------------------------------------------------------------ #
    def epoch_record(self, epoch: int) -> EpochAttribution | None:
        """The attribution of epoch ``epoch`` (last fold wins), or ``None``."""
        for record in reversed(self.epochs):
            if record.epoch == epoch:
                return record
        return None

    def top_hotspot(self, epoch: int) -> tuple[int, int, float] | None:
        """``(node, bits, share)`` of the epoch's hottest node, or ``None``.

        ``share`` is the node's fraction of the epoch's summed per-node
        bits (1.0 when it carried everything).
        """
        record = self.epoch_record(epoch)
        if record is None or not record.hotspots:
            return None
        node, bits = record.hotspots[0]
        share = bits / record.node_bits if record.node_bits else 0.0
        return node, bits, share

    def state_entries(self) -> int:
        """Retained per-node-resolution entries — the memory-bound measure.

        Dense mode counts the cumulative column; sketch mode counts only
        hotspot pairs and surviving digest ranges, which is what keeps the
        million-node regime at ``O(epochs · (k + 1/ε))``.
        """
        entries = 0
        if self.cumulative is not None:
            entries += len(self.cumulative)
        for record in self.epochs:
            entries += len(record.hotspots)
            if record.digest is not None:
                entries += record.digest.size
        return entries

    def iter_dicts(self) -> Iterator[dict]:
        """JSON-safe dicts, one per observed epoch."""
        for record in self.epochs:
            yield record.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CostAttribution(mode={self.mode!r}, epochs={len(self.epochs)}, "
            f"top_k={self.top_k}, compression={self.compression})"
        )
