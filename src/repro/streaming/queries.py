"""Standing-query definitions for the continuous-query engine.

A :class:`StandingQuery` is the declarative half of a registered query: it
knows how to turn a node's local items into a summary, how summaries merge,
how to extract the answer at the root, and what approximation the combination
of its summary type and the engine's ε-suppression guarantees.  The engine
(:mod:`repro.streaming.engine`) owns all state and scheduling; queries are
stateless and reusable across engines.

Four query families mirror the paper's aggregate repertoire:

* :class:`CountQuery` — |X|, exact up to the suppression slack;
* :class:`PredicateCountQuery` — COUNTP for a locally-computable predicate
  (Section 3.1's building block, run continuously);
* :class:`QuantileQuery` / :class:`MedianQuery` — rank queries over a
  q-digest, the streaming analogue of the paper's median protocols;
* :class:`DistinctCountQuery` — Section 5's COUNT DISTINCT via LogLog
  sketches, whose duplicate-insensitivity also buys robustness to
  duplicating radios.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Sequence

from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError
from repro.sketches.loglog import loglog_relative_sigma
from repro.streaming.summaries import (
    CountSummary,
    DistinctSummary,
    QuantileSummary,
    StreamSummary,
)

# Size of the standing-query announcement the root broadcasts once at
# registration time: an opcode plus a small parameter block.
REGISTRATION_BITS = 16


class StandingQuery(abc.ABC):
    """A continuously-maintained aggregate over the network's items."""

    kind = "QUERY"

    @abc.abstractmethod
    def local_summary(self, items: Sequence[int]) -> StreamSummary:
        """Summarise one node's local items (computed locally, free)."""

    @abc.abstractmethod
    def answer(self, summary: StreamSummary):
        """Extract the query answer from the root's merged summary."""

    def scale(self, summary: StreamSummary) -> float:
        """Magnitude of the current answer, used to size the ε-slack."""
        answer = self.answer(summary)
        return float(answer) if answer is not None else 0.0

    def error_bound(self, epsilon: float, scale: float) -> float:
        """Absolute answer error the engine guarantees at suppression level ε.

        Each suppressing node holds back a change of distance at most
        ``ε · scale / n``; at most ``n`` nodes can be stale at once, so the
        root answer is perturbed by at most ``ε · scale`` (plus any error
        inherent to the summary type, which subclasses add).
        """
        return epsilon * scale


class CountQuery(StandingQuery):
    """Continuously maintain |X|, the number of items in the network."""

    kind = "COUNT"

    def local_summary(self, items: Sequence[int]) -> CountSummary:
        return CountSummary(len(items))

    def answer(self, summary: CountSummary) -> int:
        return summary.count


class PredicateCountQuery(StandingQuery):
    """Continuously maintain COUNTP: the number of items satisfying a predicate.

    The predicate must be locally computable from an item value alone (the
    paper's Section 3.1 requirement); it is announced once at registration
    and evaluated for free at each node.
    """

    kind = "COUNTP"

    def __init__(self, predicate: Callable[[int], bool], description: str = "P") -> None:
        self.predicate = predicate
        self.description = description

    def local_summary(self, items: Sequence[int]) -> CountSummary:
        return CountSummary(sum(1 for item in items if self.predicate(item)))

    def answer(self, summary: CountSummary) -> int:
        return summary.count


class QuantileQuery(StandingQuery):
    """Continuously maintain a quantile of the value multiset via q-digests."""

    kind = "QUANTILE"

    def __init__(
        self, fraction: float, universe_size: int, compression: int = 64
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must lie in [0, 1], got {fraction}"
            )
        require_positive(universe_size, "universe_size")
        require_positive(compression, "compression")
        self.fraction = fraction
        self.universe_size = universe_size
        self.compression = compression

    def local_summary(self, items: Sequence[int]) -> QuantileSummary:
        return QuantileSummary.from_values(
            items, universe_size=self.universe_size, compression=self.compression
        )

    def answer(self, summary: QuantileSummary) -> int | None:
        if summary.total == 0:
            return None
        return summary.digest.quantile(self.fraction)

    def scale(self, summary: QuantileSummary) -> float:
        # The slack is a rank budget, so the scale is the item count, not the
        # quantile value.
        return float(summary.total)

    def digest_rank_error_fraction(self) -> float:
        """Worst-case rank error (fraction of N) of the q-digest itself."""
        levels = max(1, math.ceil(math.log2(self.universe_size)))
        return levels / self.compression

    def error_bound(self, epsilon: float, scale: float) -> float:
        """Total rank error: suppression slack plus digest compression error."""
        return (epsilon + self.digest_rank_error_fraction()) * scale


class MedianQuery(QuantileQuery):
    """The 0.5-quantile — the paper's flagship aggregate, run continuously."""

    kind = "MEDIAN"

    def __init__(self, universe_size: int, compression: int = 64) -> None:
        super().__init__(0.5, universe_size=universe_size, compression=compression)


class DistinctCountQuery(StandingQuery):
    """Continuously maintain COUNT DISTINCT via mergeable LogLog sketches."""

    kind = "DISTINCT"

    def __init__(
        self,
        num_registers: int = 64,
        salt: int = 0,
        max_expected_count: int = 1 << 30,
    ) -> None:
        require_positive(num_registers, "num_registers")
        self.num_registers = num_registers
        self.salt = salt
        self.max_expected_count = max_expected_count

    def local_summary(self, items: Sequence[int]) -> DistinctSummary:
        return DistinctSummary.from_values(
            items,
            num_registers=self.num_registers,
            salt=self.salt,
            max_expected_count=self.max_expected_count,
        )

    def answer(self, summary: DistinctSummary) -> float:
        return summary.sketch.estimate()

    def error_bound(self, epsilon: float, scale: float) -> float:
        """The sketch's 3σ error — register changes are never suppressed.

        :class:`~repro.streaming.summaries.DistinctSummary` reports an
        infinite distance for any register change, so ε plays no role: the
        root sketch always reflects the nodes' current readings exactly.
        """
        del epsilon
        return 3.0 * loglog_relative_sigma(self.num_registers) * scale
