"""Communication-complexity accounting.

The paper's central cost measure (Section 2.1) is the *individual*
communication complexity: the maximum, over all nodes, of the number of bits
transmitted **and** received by that node.  :class:`CommunicationLedger`
records every charged transmission and exposes that measure, together with
totals, per-protocol breakdowns and message/round counts used by the
experiment harness.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator

from repro._util.validation import require_non_negative
from repro.exceptions import BudgetExceededError


@dataclass
class NodeTraffic:
    """Per-node traffic counters."""

    bits_sent: int = 0
    bits_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0

    @property
    def bits_total(self) -> int:
        """Bits transmitted plus received — the paper's per-node cost."""
        return self.bits_sent + self.bits_received

    def merge(self, other: "NodeTraffic") -> None:
        """Accumulate another traffic record into this one."""
        self.bits_sent += other.bits_sent
        self.bits_received += other.bits_received
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received


@dataclass
class LedgerSnapshot:
    """Immutable summary of a ledger at one point in time."""

    per_node_bits: dict[int, int]
    total_bits: int
    max_node_bits: int
    messages: int
    rounds: int
    per_protocol_bits: dict[str, int] = field(default_factory=dict)


class CommunicationLedger:
    """Records every bit sent or received by every node.

    The ledger is deliberately independent of the network topology: protocols
    charge transmissions explicitly via :meth:`charge`, which keeps the
    accounting honest even for protocols that bypass the spanning tree (e.g.
    gossip baselines).

    An optional ``per_node_budget_bits`` turns the ledger into an enforcement
    mechanism: exceeding the budget raises :class:`BudgetExceededError`, which
    is how the test suite demonstrates the Ω(n) behaviour of exact
    COUNT DISTINCT without actually shipping gigabytes of simulated traffic.
    """

    def __init__(self, per_node_budget_bits: int | None = None) -> None:
        if per_node_budget_bits is not None:
            require_non_negative(per_node_budget_bits, "per_node_budget_bits")
        self._per_node: dict[int, NodeTraffic] = defaultdict(NodeTraffic)
        self._per_protocol_bits: dict[str, int] = defaultdict(int)
        self._messages = 0
        self._rounds = 0
        self._budget = per_node_budget_bits

    # ------------------------------------------------------------------ #
    # Charging
    # ------------------------------------------------------------------ #
    def charge(
        self,
        sender: int,
        receiver: int,
        size_bits: int,
        protocol: str = "unknown",
    ) -> None:
        """Charge a single transmission of ``size_bits`` from sender to receiver."""
        require_non_negative(size_bits, "size_bits")
        sender_traffic = self._per_node[sender]
        receiver_traffic = self._per_node[receiver]
        sender_traffic.bits_sent += size_bits
        sender_traffic.messages_sent += 1
        receiver_traffic.bits_received += size_bits
        receiver_traffic.messages_received += 1
        self._per_protocol_bits[protocol] += size_bits
        self._messages += 1
        if self._budget is not None:
            for node_id, traffic in ((sender, sender_traffic), (receiver, receiver_traffic)):
                if traffic.bits_total > self._budget:
                    raise BudgetExceededError(
                        f"node {node_id} exceeded per-node budget of "
                        f"{self._budget} bits ({traffic.bits_total} bits used)"
                    )

    def charge_local(self, node: int, size_bits: int, protocol: str = "local") -> None:
        """Charge bits that a node stores/processes locally without transmitting.

        Not part of the communication-complexity measure; tracked only so the
        space-oriented experiments can report it.
        """
        require_non_negative(size_bits, "size_bits")
        self._per_protocol_bits[f"{protocol}:local"] += size_bits

    def advance_round(self, count: int = 1) -> None:
        """Record ``count`` additional synchronous communication rounds."""
        require_non_negative(count, "count")
        self._rounds += count

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def traffic(self, node: int) -> NodeTraffic:
        """Return the traffic record for ``node`` (zeros if it never communicated)."""
        return self._per_node[node]

    def node_bits(self, node: int) -> int:
        """Bits sent plus received by ``node``."""
        return self._per_node[node].bits_total

    @property
    def max_node_bits(self) -> int:
        """The paper's communication-complexity measure: max over nodes."""
        if not self._per_node:
            return 0
        return max(traffic.bits_total for traffic in self._per_node.values())

    @property
    def total_bits(self) -> int:
        """Total bits transmitted across the whole network (each bit counted once)."""
        return sum(traffic.bits_sent for traffic in self._per_node.values())

    @property
    def total_messages(self) -> int:
        return self._messages

    @property
    def rounds(self) -> int:
        return self._rounds

    def per_protocol_bits(self) -> dict[str, int]:
        """Total bits broken down by the protocol label passed to :meth:`charge`."""
        return dict(self._per_protocol_bits)

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids that have sent or received at least one message."""
        return iter(self._per_node.keys())

    def snapshot(self) -> LedgerSnapshot:
        """Return an immutable summary of the current counters."""
        return LedgerSnapshot(
            per_node_bits={
                node: traffic.bits_total for node, traffic in self._per_node.items()
            },
            total_bits=self.total_bits,
            max_node_bits=self.max_node_bits,
            messages=self._messages,
            rounds=self._rounds,
            per_protocol_bits=dict(self._per_protocol_bits),
        )

    def reset(self) -> None:
        """Clear all counters (budget configuration is retained)."""
        self._per_node.clear()
        self._per_protocol_bits.clear()
        self._messages = 0
        self._rounds = 0

    def merge(self, other: "CommunicationLedger") -> None:
        """Accumulate the counters of another ledger into this one."""
        for node, traffic in other._per_node.items():
            self._per_node[node].merge(traffic)
        for protocol, bits in other._per_protocol_bits.items():
            self._per_protocol_bits[protocol] += bits
        self._messages += other._messages
        self._rounds += other._rounds

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CommunicationLedger(max_node_bits={self.max_node_bits}, "
            f"total_bits={self.total_bits}, messages={self._messages}, "
            f"rounds={self._rounds})"
        )
