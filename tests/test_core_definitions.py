"""Tests for the reference definitions (Section 2.3, Definitions 2.3 / 2.4)."""

import pytest

from repro.core.definitions import (
    approximate_order_statistic_interval,
    is_approximate_median,
    is_median,
    is_order_statistic,
    rank,
    reference_median,
    reference_order_statistic,
)
from repro.exceptions import ConfigurationError, EmptyNetworkError


class TestRank:
    def test_strictly_smaller(self):
        items = [1, 3, 3, 7]
        assert rank(items, 3) == 1
        assert rank(items, 4) == 3
        assert rank(items, 0) == 0
        assert rank(items, 100) == 4

    def test_fractional_threshold(self):
        assert rank([1, 2, 3], 2.5) == 2


class TestOrderStatisticDefinition:
    def test_median_of_odd_multiset(self):
        items = [5, 1, 9]
        assert reference_median(items) == 5
        assert is_median(items, 5)
        assert not is_median(items, 1)
        assert not is_median(items, 9)

    def test_median_of_even_multiset_is_lower_median(self):
        items = [1, 2, 3, 4]
        assert reference_median(items) == 2
        assert is_median(items, 2)
        assert not is_median(items, 3)

    def test_duplicates(self):
        items = [4, 4, 4, 4, 9]
        assert reference_median(items) == 4
        assert is_median(items, 4)

    def test_k_extremes(self):
        items = [10, 20, 30, 40]
        assert reference_order_statistic(items, 1) == 10
        assert reference_order_statistic(items, 4) == 40

    def test_fractional_k(self):
        items = [10, 20, 30]
        assert reference_order_statistic(items, 1.5) == 20

    def test_reference_is_unique_integer_order_statistic(self):
        # Definition 2.3 pins down a unique integer when items are integers.
        items = [3, 8, 8, 15, 22]
        for k in (1, 2, 2.5, 3, 4, 5):
            value = reference_order_statistic(items, k)
            assert is_order_statistic(items, k, value)
            others = [
                candidate
                for candidate in range(0, 30)
                if candidate != value and is_order_statistic(items, k, candidate)
            ]
            assert others == []

    def test_out_of_range_k_rejected(self):
        with pytest.raises(ConfigurationError):
            reference_order_statistic([1, 2, 3], 0)
        with pytest.raises(ConfigurationError):
            reference_order_statistic([1, 2, 3], 4)

    def test_empty_rejected(self):
        with pytest.raises(EmptyNetworkError):
            reference_median([])
        with pytest.raises(EmptyNetworkError):
            is_order_statistic([], 1, 0)


class TestApproximateDefinition:
    def test_exact_median_is_always_approximate_median(self):
        items = [2, 9, 4, 7, 7, 1, 8]
        median = reference_median(items)
        assert is_approximate_median(items, median, alpha=0.0, beta=0.0)

    def test_value_slack_beta(self):
        items = [0, 100, 200, 300, 400]  # the median is 200
        # 210 is not a median but is within 0.05 * 400 = 20 of one.
        assert not is_median(items, 210)
        assert is_approximate_median(items, 210, alpha=0.0, beta=0.05)
        assert not is_approximate_median(items, 210, alpha=0.0, beta=0.01)

    def test_rank_slack_alpha(self):
        items = list(range(100))
        # Value 60 has rank 60 = 0.6 N; it is a (0.25, 0)-median but not a (0.1, 0)-median.
        assert is_approximate_median(items, 60, alpha=0.25, beta=0.0)
        assert not is_approximate_median(items, 60, alpha=0.1, beta=0.0)

    def test_interval_is_ordered(self):
        items = list(range(50))
        low, high = approximate_order_statistic_interval(items, 25, alpha=0.2)
        assert low <= high

    def test_interval_widens_with_alpha(self):
        items = list(range(50))
        narrow = approximate_order_statistic_interval(items, 25, alpha=0.05)
        wide = approximate_order_statistic_interval(items, 25, alpha=0.4)
        assert wide[0] <= narrow[0] and wide[1] >= narrow[1]

    def test_alpha_one_removes_lower_constraint(self):
        items = list(range(10))
        low, high = approximate_order_statistic_interval(items, 5, alpha=1.0)
        assert low == float("-inf")
        assert high == 9.0  # k(1+alpha) = N keeps the largest item as the cap

    def test_alpha_beyond_one_removes_upper_constraint_too(self):
        items = list(range(10))
        low, high = approximate_order_statistic_interval(items, 5, alpha=1.2)
        assert low == float("-inf")
        assert high == float("inf")

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            is_approximate_median([1, 2, 3], 2, alpha=-0.1, beta=0.0)

    def test_brute_force_agreement_small_domain(self):
        # Cross-check the interval computation against a brute-force scan.
        items = [0, 2, 2, 5, 9, 9, 9, 14]
        k = len(items) / 2.0
        alpha = 0.3
        low, high = approximate_order_statistic_interval(items, k, alpha)
        for candidate in range(-1, 16):
            satisfies = (
                rank(items, candidate) < k * (1 + alpha)
                and rank(items, candidate + 1) >= k * (1 - alpha)
            )
            in_interval = low <= candidate <= high
            assert satisfies == in_interval, candidate
