"""Internal utilities shared across the ``repro`` package."""

from repro._util.bits import (
    bit_width,
    encoded_int_bits,
    fixed_width_bits,
    varint_bits,
)
from repro._util.randomness import make_rng, spawn_rngs
from repro._util.validation import (
    require_integer,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "bit_width",
    "encoded_int_bits",
    "fixed_width_bits",
    "varint_bits",
    "make_rng",
    "spawn_rngs",
    "require_integer",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
