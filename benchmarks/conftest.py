"""Shared helpers for the benchmark harness.

Every benchmark runs its experiment exactly once per pytest-benchmark round
(``rounds=1, iterations=1``): the quantity of interest is the *communication*
measured inside the simulation, not the wall-clock time of the simulator, so
repeated timing adds nothing.  Results that reproduce the paper's claims are
attached to ``benchmark.extra_info`` (visible in ``--benchmark-verbose`` /
JSON output) and printed as plain-text tables (visible with ``-s``).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def bench_once():
    """Fixture wrapper around :func:`run_once` for terser benchmark bodies."""
    return run_once
