"""Epoch-aware incremental convergecast.

The one-shot :func:`~repro.protocols.convergecast.convergecast` walks the
whole tree and every node transmits.  In steady-state continuous monitoring
most subtrees are unchanged, so the streaming engine needs a traversal in
which only *dirty* nodes (and their ancestors, transitively, until a node
decides the change is too small to forward) participate.  This module
provides that traversal as synchronous rounds: a node at depth ``d`` acts in
the round in which all of its children's updates (sent one round earlier)
have been delivered, so one epoch costs at most ``deepest dirty depth + 1``
rounds and exactly one upward message per node that decides to retransmit.

The traversal is policy-free: the per-node retransmit decision (including
ε-suppression and delta sizing) is supplied by the caller as a ``decide``
callback, which is how the streaming engine keeps all summary semantics in
one place while this module owns scheduling and charging.

Two execution paths implement the rounds, selected by ``network.execution``:
the batched path (default) sweeps one tree level per round and charges each
round's transmissions in a single
:meth:`~repro.network.SensorNetwork.send_up_tree` call; the per-edge path
runs the rounds on :class:`~repro.network.RoundEngine` with one
:meth:`~repro.network.SensorNetwork.send` per transmission.  Both visit the
active nodes of a round in ascending id order (the round engine's iteration
order), so ledgers — including lossy-radio retries — are bit-for-bit
identical.

The ``"vectorized"`` and ``"sharded"`` execution modes fall through to the
batched path here (this module's ``decide`` callback is inherently
per-node); their whole-array twin of this traversal — same level schedule,
same charge order, no callback — is
:func:`repro.streaming.vector_kernels.sweep_levels`, which the
count-specialised :class:`~repro.streaming.vector_engine.VectorStreamEngine`
substitutes for the loop below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.network.scheduler import RoundEngine
from repro.network.simulator import SensorNetwork

# ``decide(node_id, child_updates)`` receives the payloads delivered by the
# node's children this epoch (child id → payload) and returns either ``None``
# (suppress: the parent keeps using the last transmitted summary) or a
# ``(payload, size_bits)`` pair to forward to the parent.  It is called only
# for *active* nodes: those that are dirty or received at least one update.
DecideFn = Callable[[int, Mapping[int, Any]], "tuple[Any, int] | None"]


@dataclass(frozen=True)
class EpochStats:
    """Traffic outcome of one epoch's incremental convergecast."""

    rounds: int
    activated: int
    transmissions: int
    suppressions: int


def epoch_convergecast(
    network: SensorNetwork,
    dirty: set[int],
    decide: DecideFn,
    protocol: str = "epoch-convergecast",
) -> EpochStats:
    """Run one epoch of change-driven leaves-to-root aggregation.

    ``dirty`` is the set of nodes whose local state changed this epoch; a node
    outside it is still activated if a descendant's update reaches it.  When
    nothing is dirty the traversal is skipped entirely and costs zero rounds,
    zero bits — the property that makes steady-state epochs free.

    Dirty nodes the current spanning tree does not span (crashed or cut off
    after a fault) are ignored on both execution paths: they have no route to
    the root until a repair re-attaches them.
    """
    if dirty:
        depth_of = network.tree.depth
        dirty = {node for node in dirty if node in depth_of}
    if not dirty:
        return EpochStats(rounds=0, activated=0, transmissions=0, suppressions=0)
    if network.execution == "per-edge":
        stats = _epoch_convergecast_per_edge(network, dirty, decide, protocol)
    else:
        stats = _epoch_convergecast_batched(network, dirty, decide, protocol)
    telemetry = network.telemetry
    if telemetry.enabled:
        telemetry.count("sweep.epochs", 1, protocol=protocol, path=network.execution)
        telemetry.count("sweep.rounds", stats.rounds, protocol=protocol)
        telemetry.count("sweep.activated", stats.activated, protocol=protocol)
        telemetry.count("sweep.transmissions", stats.transmissions, protocol=protocol)
        telemetry.count("sweep.suppressions", stats.suppressions, protocol=protocol)
    return stats


def _epoch_convergecast_batched(
    network: SensorNetwork,
    dirty: set[int],
    decide: DecideFn,
    protocol: str,
) -> EpochStats:
    depth_of = network.tree.depth
    deepest = max(depth_of[node] for node in dirty)
    parent_of = network.tree.parent
    ledger = network.ledger
    received: dict[int, dict[int, Any]] = {}
    # Only dirty nodes and nodes a delivery reaches ever act, so the sweep
    # tracks the active frontier per level instead of scanning whole levels —
    # a steady-state epoch with k dirty nodes is O(k · depth), not O(n).
    active_by_depth: list[set[int]] = [set() for _ in range(deepest + 1)]
    for node_id in dirty:
        active_by_depth[depth_of[node_id]].add(node_id)
    activated = transmissions = suppressions = 0
    for depth in range(deepest, -1, -1):
        links: list[tuple[int, int]] = []
        sizes: list[int] = []
        deliveries: list[tuple[int, int, Any]] = []
        # Ascending id order: the order the per-edge round engine visits.
        for node_id in sorted(active_by_depth[depth]):
            updates = received.pop(node_id, None)
            activated += 1
            decision = decide(node_id, updates if updates is not None else {})
            parent = parent_of[node_id]
            if parent is None:
                continue
            if decision is None:
                suppressions += 1
                continue
            payload, size_bits = decision
            transmissions += 1
            links.append((node_id, parent))
            sizes.append(size_bits)
            deliveries.append((parent, node_id, payload))
        if links:
            copies = network.send_batch(
                links, sizes, protocol=protocol, require_edge=False
            )
            # Only transmissions the radio actually delivered reach (and
            # thereby activate) the parent; duplicated deliveries (a
            # duplicating radio) overwrite, so delivery is idempotent.
            parents = active_by_depth[depth - 1]
            for (parent, sender, payload), count in zip(deliveries, copies):
                if count <= 0:
                    continue
                parents.add(parent)  # a tree parent is one level shallower
                inbox = received.get(parent)
                if inbox is None:
                    received[parent] = {sender: payload}
                else:
                    inbox[sender] = payload
        ledger.advance_round()
    return EpochStats(
        rounds=deepest + 1,
        activated=activated,
        transmissions=transmissions,
        suppressions=suppressions,
    )


def _epoch_convergecast_per_edge(
    network: SensorNetwork,
    dirty: set[int],
    decide: DecideFn,
    protocol: str,
) -> EpochStats:
    tree = network.tree
    deepest = max(tree.depth[node] for node in dirty)
    received: dict[int, dict[int, Any]] = {}
    counters = {"activated": 0, "transmissions": 0, "suppressions": 0}
    current = {"round": 0}

    def handler(
        net: SensorNetwork, node_id: int, inbox: list[object]
    ) -> dict[int, tuple[object, int]]:
        for sender, payload in inbox:  # duplicated deliveries overwrite: idempotent
            received.setdefault(node_id, {})[sender] = payload
        depth = tree.depth.get(node_id)
        if depth is None:  # crashed or cut off: not spanned by the repaired tree
            return {}
        if depth > deepest or deepest - depth != current["round"]:
            return {}
        updates = received.pop(node_id, {})
        if node_id not in dirty and not updates:
            return {}
        counters["activated"] += 1
        decision = decide(node_id, updates)
        parent = tree.parent[node_id]
        if parent is None:
            return {}
        if decision is None:
            counters["suppressions"] += 1
            return {}
        payload, size_bits = decision
        counters["transmissions"] += 1
        return {parent: ((node_id, payload), size_bits)}

    def advance(net: SensorNetwork, round_index: int) -> bool:
        current["round"] = round_index + 1
        return False

    engine = RoundEngine(network, protocol_name=protocol)
    result = engine.run(handler, max_rounds=deepest + 1, stop_condition=advance)
    return EpochStats(
        rounds=result.rounds_executed,
        activated=counters["activated"],
        transmissions=counters["transmissions"],
        suppressions=counters["suppressions"],
    )
