"""Vectorized / sharded execution: representation and ledger equivalence.

The million-node core adds two more execution paths on top of batched and
per-edge: ``"vectorized"`` (whole-array level sweeps over the numpy-backed
:class:`~repro.network.FlatTree`) and ``"sharded"`` (the same sweeps fanned
out over subtree shards in worker processes).  Their contract is the one the
batched core already honours against the per-edge reference: *everything the
paper measures is identical* — per-node bits, totals, messages, rounds,
per-protocol breakdowns, answers — for the same seeds, under every radio,
through arbitrary fault scripts.

These tests build twin networks (identical graphs, items, trees, identically
seeded radios), run the reference :class:`ContinuousQueryEngine` on one and
:class:`VectorStreamEngine` on the other, and compare full ledger snapshots
field by field.  Also here: unit tests for the varint kernels against the
scalar ``repro._util.bits`` they mirror, the :class:`ArrayLedger` fast path,
``FlatTree.from_arrays``, the rewire cache-invalidation regression, and the
loud-fallback behaviour when numpy is absent.
"""

import random
import warnings

import pytest

from repro._util import bits as scalar_bits
from repro._util.fastpath import HAVE_NUMPY, FallbackWarning
from repro.network.radio import DuplicatingRadio, LossyRadio, ReliableRadio
from repro.network.simulator import SensorNetwork
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import CountQuery, MedianQuery

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized paths require the 'fast' extra (numpy)"
)

if HAVE_NUMPY:
    import numpy as np

RADIOS = {
    "reliable": lambda seed: ReliableRadio(),
    "lossy": lambda seed: LossyRadio(loss_rate=0.35, seed=seed),
    "duplicating": lambda seed: DuplicatingRadio(duplicate_rate=0.3, seed=seed),
}
TOPOLOGIES = ["grid", "line", "star", "random_geometric", "random_tree"]
DOMAIN = 1 << 10


def assert_ledgers_identical(left_net, right_net):
    left = left_net.ledger.snapshot()
    right = right_net.ledger.snapshot()
    assert left.per_node_bits == right.per_node_bits
    assert left.total_bits == right.total_bits
    assert left.max_node_bits == right.max_node_bits
    assert left.messages == right.messages
    assert left.rounds == right.rounds
    assert left.per_protocol_bits == right.per_protocol_bits


def make_network(execution, topology, radio_name, seed, num_nodes=36):
    rng = random.Random(seed * 7919 + 13)
    items = [rng.randrange(1, 400) for _ in range(num_nodes)]
    return SensorNetwork.from_items(
        items,
        topology=topology,
        seed=seed,
        radio=RADIOS[radio_name](seed),
        execution=execution,
    )


def drive_engines(networks, engines, epochs, seed, fault_script=None):
    """Run identical update streams (and optional faults) over twin engines."""
    from repro.faults import FaultEngine

    faults = [
        FaultEngine(network, script=fault_script(network)) if fault_script else None
        for network in networks
    ]
    rng_template = random.Random(seed + 101)
    per_epoch_updates = []
    node_ids = networks[0].node_ids()
    for _ in range(epochs):
        updates = {}
        for _ in range(max(4, len(node_ids) // 6)):
            node = rng_template.choice(node_ids)
            updates[node] = [
                rng_template.randrange(DOMAIN)
                for _ in range(rng_template.randrange(5))
            ]
        per_epoch_updates.append(updates)
    records = []
    for engine, fault_engine in zip(engines, faults):
        rows = []
        for epoch, updates in enumerate(per_epoch_updates):
            if fault_engine is not None:
                report = fault_engine.step(epoch)
                if report.election is not None:
                    engine.apply_root_change(report.election)
                engine.apply_repair(report.repair)
            record = engine.advance_epoch(dict(updates))
            rows.append((record.answers, record.bits, record.transmissions))
        records.append(rows)
        if hasattr(engine, "close"):
            engine.close()
    return records


# --------------------------------------------------------------------------- #
# Kernel arithmetic: array varints == scalar varints
# --------------------------------------------------------------------------- #
@needs_numpy
class TestVarintKernels:
    def test_varint_bits_matches_scalar(self):
        from repro.streaming.vector_kernels import varint_bits_array

        values = list(range(0, 200)) + [
            (1 << k) + d for k in range(8, 52) for d in (-1, 0, 1)
        ]
        array = np.asarray(values, dtype=np.int64)
        expected = [scalar_bits.varint_bits(v) for v in values]
        assert varint_bits_array(array).tolist() == expected

    def test_signed_varint_bits_matches_scalar(self):
        from repro.streaming.vector_kernels import signed_varint_bits_array

        values = [0, 1, -1, 2, -2, 63, -64, 64, -65]
        values += [s * ((1 << k) + d) for k in range(8, 50) for d in (-1, 0, 1) for s in (1, -1)]
        array = np.asarray(values, dtype=np.int64)
        expected = [scalar_bits.signed_varint_bits(v) for v in values]
        assert signed_varint_bits_array(array).tolist() == expected

    def test_random_values_match_scalar(self):
        from repro.streaming.vector_kernels import (
            signed_varint_bits_array,
            varint_bits_array,
        )

        rng = np.random.default_rng(5)
        magnitudes = rng.integers(0, 1 << 52, size=2000)
        assert varint_bits_array(magnitudes).tolist() == [
            scalar_bits.varint_bits(int(v)) for v in magnitudes
        ]
        signed = magnitudes * np.where(rng.random(2000) < 0.5, -1, 1)
        assert signed_varint_bits_array(signed).tolist() == [
            scalar_bits.signed_varint_bits(int(v)) for v in signed
        ]

    def test_exactness_guard_trips_beyond_2_to_53(self):
        from repro.exceptions import ConfigurationError
        from repro.streaming.vector_kernels import varint_bits_array

        with pytest.raises(ConfigurationError):
            varint_bits_array(np.asarray([1 << 53], dtype=np.int64))


# --------------------------------------------------------------------------- #
# ArrayLedger: the vectorized charge path is the ledger, not a shadow of it
# --------------------------------------------------------------------------- #
@needs_numpy
class TestArrayLedger:
    def test_charge_array_matches_scalar_charges(self):
        from repro.network.accounting import ArrayLedger, CommunicationLedger

        rng = random.Random(3)
        senders = [rng.randrange(50) for _ in range(300)]
        receivers = [rng.randrange(50) for _ in range(300)]
        sizes = [rng.randrange(1, 40) for _ in range(300)]

        reference = CommunicationLedger()
        for s, r, b in zip(senders, receivers, sizes):
            reference.charge(s, r, b, protocol="p")
        reference.advance_round(4)

        array_ledger = ArrayLedger(50)
        array_ledger.charge_array(
            np.asarray(senders), np.asarray(receivers), np.asarray(sizes), protocol="p"
        )
        array_ledger.advance_round(4)

        left, right = reference.snapshot(), array_ledger.snapshot()
        assert left.per_node_bits == right.per_node_bits
        assert left.total_bits == right.total_bits
        assert left.max_node_bits == right.max_node_bits
        assert left.messages == right.messages
        assert left.rounds == right.rounds
        assert left.per_protocol_bits == right.per_protocol_bits

    def test_merge_is_order_independent(self):
        from repro.network.accounting import CommunicationLedger

        pieces = []
        for shard in range(3):
            ledger = CommunicationLedger()
            for k in range(10):
                ledger.charge(shard * 10 + k, shard, 5 + k, protocol=f"q{shard % 2}")
            pieces.append(ledger)
        forward, backward = CommunicationLedger(), CommunicationLedger()
        for piece in pieces:
            forward.merge(piece)
        for piece in reversed(pieces):
            backward.merge(piece)
        assert forward.snapshot().per_node_bits == backward.snapshot().per_node_bits
        assert (
            forward.snapshot().per_protocol_bits
            == backward.snapshot().per_protocol_bits
        )


# --------------------------------------------------------------------------- #
# FlatTree: from_arrays and the rewire cache-invalidation regression
# --------------------------------------------------------------------------- #
@needs_numpy
class TestFlatTreeArrays:
    def test_from_arrays_matches_from_spanning_tree(self):
        from repro.network.flat_tree import FlatTree

        network = make_network("batched", "grid", "reliable", 0)
        parents = np.full(network.num_nodes, -1, dtype=np.int64)
        for node, parent in network.tree.parent.items():
            parents[node] = -1 if parent is None else parent
        rebuilt = FlatTree.from_arrays(parents)
        assert rebuilt.to_lists() == network.flat_tree.to_lists()

    def test_from_arrays_rejects_cycles(self):
        from repro.exceptions import ConfigurationError
        from repro.network.flat_tree import FlatTree

        with pytest.raises(ConfigurationError):
            FlatTree.from_arrays([-1, 2, 1])

    def test_rewire_result_has_fresh_link_caches(self):
        """Regression: stale up/down-link caches after a repair rewire.

        ``up_links``/``down_links`` are lazy per-instance caches; ``rewire``
        returns a *new* FlatTree so the caches must start unset and reflect
        the patched structure, even when the caches of the source tree were
        already materialised (forcing them first is the regression trigger).
        """
        from repro.network.flat_tree import FlatTree

        flat = FlatTree.from_arrays([-1, 0, 0, 1, 1, 2])
        stale_up = flat.up_links
        stale_down = flat.down_links
        patched = flat.rewire(removed=[5], reparented={4: 2}, depths={4: 2})
        # Build the expectation directly: node 5 gone, node 4 under node 2.
        expected = FlatTree.from_arrays([-1, 0, 0, 1, 2])
        assert patched.to_lists() == expected.to_lists()
        assert patched.up_links == expected.up_links
        assert patched.down_links == expected.down_links
        assert patched.up_links != stale_up
        assert patched.down_links != stale_down
        # The source instance's caches are untouched (rewire is pure).
        assert flat.up_links == stale_up
        assert flat.down_links == stale_down


# --------------------------------------------------------------------------- #
# Representation equivalence: vectorized / sharded vs the batched reference
# --------------------------------------------------------------------------- #
@needs_numpy
class TestStreamingEquivalence:
    def _twin_run(self, execution, topology, radio_name, seed, fault_script=None,
                  epochs=5, num_nodes=36, epsilon=0.1, **engine_kwargs):
        from repro.streaming.vector_engine import VectorStreamEngine

        reference_net = make_network("batched", topology, radio_name, seed, num_nodes)
        vector_net = make_network(execution, topology, radio_name, seed, num_nodes)
        engines = [
            ContinuousQueryEngine(reference_net, epsilon=epsilon),
            VectorStreamEngine(vector_net, epsilon=epsilon, **engine_kwargs),
        ]
        for engine in engines:
            engine.register("count", CountQuery())
        records = drive_engines(
            [reference_net, vector_net], engines, epochs, seed, fault_script
        )
        assert records[0] == records[1]
        assert_ledgers_identical(reference_net, vector_net)
        return reference_net, vector_net

    @pytest.mark.parametrize("radio_name", sorted(RADIOS))
    @pytest.mark.parametrize("topology", ["grid", "line", "random_geometric"])
    def test_vectorized_ledger_identical(self, topology, radio_name):
        self._twin_run("vectorized", topology, radio_name, seed=1)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vectorized_under_faults(self, seed):
        from repro.workloads.faults import crash_storm_script, link_storm_script

        def script(network):
            return crash_storm_script(
                network.node_ids(), epoch=1, fraction=0.2, seed=seed, rejoin_epoch=3
            ).merge(
                link_storm_script(
                    network.graph, epoch=1, fraction=0.1, seed=seed, restore_epoch=3
                )
            )

        self._twin_run("vectorized", "grid", "reliable", seed, fault_script=script)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_vectorized_survives_root_failover(self, seed):
        from repro.faults import FaultScript, RootCrash
        from repro.workloads.faults import churn_script

        def script(network):
            return (
                FaultScript()
                .add(2, RootCrash())
                .merge(
                    churn_script(
                        network.node_ids(), epochs=5, churn_rate=0.08, seed=seed
                    )
                )
            )

        self._twin_run("vectorized", "grid", "lossy", seed, fault_script=script)

    def test_sharded_inline_ledger_identical(self):
        self._twin_run("sharded", "grid", "reliable", seed=2, shard_processes=0)

    def test_sharded_fork_ledger_identical(self):
        self._twin_run("sharded", "grid", "reliable", seed=3, shard_processes=2)

    def test_sharded_under_faults(self):
        from repro.workloads.faults import crash_storm_script

        def script(network):
            return crash_storm_script(
                network.node_ids(), epoch=1, fraction=0.25, seed=5, rejoin_epoch=3
            )

        self._twin_run(
            "sharded", "grid", "reliable", seed=5,
            fault_script=script, shard_processes=0,
        )

    def test_sharded_rejects_lossy_radios(self):
        """Sharded workers charge private ledgers with no RNG — loud refusal."""
        from repro.exceptions import ConfigurationError
        from repro.streaming.vector_engine import VectorStreamEngine

        network = make_network("sharded", "grid", "lossy", 0)
        engine = VectorStreamEngine(network, epsilon=0.1, shard_processes=0)
        engine.register("count", CountQuery())
        with pytest.raises(ConfigurationError):
            engine.advance_epoch({1: [3, 4]})

    def test_vectorized_rejects_non_count_queries(self):
        from repro.exceptions import ConfigurationError
        from repro.streaming.vector_engine import VectorStreamEngine

        network = make_network("vectorized", "grid", "reliable", 0)
        engine = VectorStreamEngine(network, epsilon=0.1)
        with pytest.raises(ConfigurationError):
            engine.register("median", MedianQuery(universe_size=DOMAIN))

    def test_engine_for_dispatches_on_execution_mode(self):
        from repro.streaming.vector_engine import VectorStreamEngine, engine_for

        assert isinstance(
            engine_for(make_network("vectorized", "grid", "reliable", 0)),
            VectorStreamEngine,
        )
        reference = engine_for(make_network("batched", "grid", "reliable", 0))
        assert type(reference) is ContinuousQueryEngine

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("radio_name", sorted(RADIOS))
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_randomized_storms_are_ledger_identical(self, topology, radio_name, seed):
        """The full sweep: every topology × radio × a compound fault script."""
        from repro.workloads.faults import (
            churn_script,
            crash_storm_script,
            link_storm_script,
        )

        rng = random.Random(seed * 6151 + 3)
        num_nodes = rng.choice([25, 36, 49, 64])

        def script(network):
            return crash_storm_script(
                network.node_ids(), epoch=1, fraction=0.2, seed=seed, rejoin_epoch=3
            ).merge(
                link_storm_script(
                    network.graph, epoch=1, fraction=0.1, seed=seed, restore_epoch=4
                )
            ).merge(
                churn_script(
                    network.node_ids(), epochs=6, churn_rate=0.1, seed=seed
                )
            )

        self._twin_run(
            "vectorized", topology, radio_name, seed,
            fault_script=script, epochs=6, num_nodes=num_nodes,
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sharded_storms_at_scale(self, seed):
        from repro.workloads.faults import crash_storm_script, churn_script

        def script(network):
            return crash_storm_script(
                network.node_ids(), epoch=1, fraction=0.15, seed=seed, rejoin_epoch=3
            ).merge(
                churn_script(network.node_ids(), epochs=6, churn_rate=0.05, seed=seed)
            )

        self._twin_run(
            "sharded", "random_geometric", "reliable", seed,
            fault_script=script, epochs=6, num_nodes=100, shard_processes=2,
        )


# --------------------------------------------------------------------------- #
# VectorField: the standalone million-node surface
# --------------------------------------------------------------------------- #
@needs_numpy
class TestVectorField:
    def test_exact_count_and_churn(self):
        from repro.network import VectorField

        field = VectorField.balanced(500, branching=4)
        field.register_count_query("count")
        counts = np.arange(500, dtype=np.int64) % 9
        field.advance_epoch(changed_positions=np.arange(500), new_counts=counts)
        assert field.answers["count"] == int(counts.sum())
        record = field.advance_epoch(
            changed_positions=np.asarray([7, 8]), new_counts=np.asarray([100, 0])
        )
        counts[7], counts[8] = 100, 0
        assert record["answers"]["count"] == int(counts.sum())

    def test_quiet_epoch_costs_nothing(self):
        from repro.network import VectorField

        field = VectorField.balanced(200, branching=3, epsilon=0.0)
        field.register_count_query("count", announce=False)
        field.advance_epoch(
            changed_positions=np.arange(200),
            new_counts=np.ones(200, dtype=np.int64),
        )
        record = field.advance_epoch()
        assert record["bits"] == record["heartbeat_bits"]
        assert record["transmissions"] == 0

    def test_crash_detaches_subtree_from_answer(self):
        from repro.network import VectorField

        field = VectorField.balanced(85, branching=4, epsilon=0.0)
        field.register_count_query("count", announce=False)
        field.advance_epoch(
            changed_positions=np.arange(85),
            new_counts=np.ones(85, dtype=np.int64),
        )
        assert field.answers["count"] == 85
        field.crash([1])  # kills position 1: itself and its whole subtree
        detached = int((~field.attached).sum())
        field.advance_epoch(
            changed_positions=np.arange(85),
            new_counts=np.full(85, 2, dtype=np.int64),
        )
        assert detached == 0  # attach mask recomputed inside advance_epoch
        alive_attached = int(field.attached.sum())
        assert field.answers["count"] == 2 * alive_attached

    def test_epsilon_suppression_bounds_error(self):
        from repro.network import VectorField

        field = VectorField.balanced(300, branching=5, epsilon=0.5)
        field.register_count_query("count", announce=False)
        rng = np.random.default_rng(11)
        truth = rng.integers(0, 20, 300)
        field.advance_epoch(changed_positions=np.arange(300), new_counts=truth)
        exact = int(truth.sum())
        assert field.answers["count"] == exact  # first epoch is exact
        suppressed = 0
        for _ in range(5):
            changed = rng.choice(300, 30, replace=False)
            truth = truth.copy()
            truth[changed] = np.maximum(
                0, truth[changed] + rng.integers(-1, 2, 30)
            )
            record = field.advance_epoch(
                changed_positions=changed, new_counts=truth[changed]
            )
            suppressed += record["suppressions"]
            # ε-slack per hop, ≤ one slack per node on the root path:
            assert abs(field.answers["count"] - int(truth.sum())) <= (
                field.epsilon * max(field.answers["count"], int(truth.sum()))
            )
        assert suppressed > 0


# --------------------------------------------------------------------------- #
# Fallback: no numpy must be loud, not slow-and-silent
# --------------------------------------------------------------------------- #
class TestFallback:
    def test_engine_for_warns_once_without_numpy(self, monkeypatch):
        from repro._util import fastpath
        from repro.streaming import vector_engine
        from repro.streaming.vector_engine import engine_for

        monkeypatch.setattr(vector_engine, "np", None)
        monkeypatch.setattr(fastpath, "_warned", set())
        network = SensorNetwork.from_items(
            [1] * 9, topology="grid", execution="vectorized"
        )
        with pytest.warns(FallbackWarning, match="vectorized streaming"):
            engine = engine_for(network)
        assert type(engine) is ContinuousQueryEngine
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call: silent
            engine_for(network)

    def test_require_numpy_raises_configuration_error(self, monkeypatch):
        from repro._util import fastpath
        from repro.exceptions import ConfigurationError

        monkeypatch.setattr(fastpath, "np", None)
        with pytest.raises(ConfigurationError, match="fast"):
            fastpath.require_numpy("test feature")
