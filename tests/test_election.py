"""Root fail-over: charged election, re-rooting, recovery, and equivalence.

The election is the last piece of the fault pipeline to be charged, and it
crosses every layer — the alive-mask and root identity on the network, the
seeded repair, the streaming layer's cache migration, and the per-epoch
accounting — so this suite tests each layer's contract plus the randomized
per-edge vs batched equivalence that every charged protocol in the
repository must satisfy.
"""

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultEngine,
    FaultScript,
    HeartbeatDetector,
    NodeCrash,
    RootCrash,
    RootElection,
    TreeRepair,
    run_faulty_stream,
)
from repro.network.radio import DuplicatingRadio, LossyRadio, ReliableRadio
from repro.network.simulator import SensorNetwork
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import CountQuery
from repro.workloads.faults import (
    churn_script,
    crash_storm_script,
    link_storm_script,
    root_failover_script,
)

RADIOS = {
    "reliable": lambda seed: ReliableRadio(),
    "lossy": lambda seed: LossyRadio(loss_rate=0.35, seed=seed),
    "duplicating": lambda seed: DuplicatingRadio(duplicate_rate=0.3, seed=seed),
}


def fresh_network(num_nodes=16, topology="grid", execution="batched", **kwargs):
    network = SensorNetwork.from_items(
        [7] * num_nodes, topology=topology, execution=execution, **kwargs
    )
    return network


def assert_ledgers_identical(batched, per_edge):
    left = batched.ledger.snapshot()
    right = per_edge.ledger.snapshot()
    assert left.per_node_bits == right.per_node_bits
    assert left.total_bits == right.total_bits
    assert left.messages == right.messages
    assert left.rounds == right.rounds
    assert left.per_protocol_bits == right.per_protocol_bits


class StaticStream:
    """A stream that assigns once and then never changes anything."""

    def __init__(self, num_nodes):
        self.num_nodes = num_nodes

    def initial(self):
        return {node: [node + 1] for node in range(self.num_nodes)}

    def step(self, epoch):
        return {}


# --------------------------------------------------------------------------- #
# The network-level contract: root identity and the kill guard
# --------------------------------------------------------------------------- #
class TestRootIdentity:
    def test_kill_root_still_guarded_by_default(self):
        network = fresh_network(9)
        with pytest.raises(ConfigurationError):
            network.kill_node(network.root_id)

    def test_allow_root_opts_in(self):
        network = fresh_network(9)
        network.kill_node(network.root_id, allow_root=True)
        assert not network.is_alive(0)
        assert network.node(0).items == []

    def test_set_root_moves_the_flags(self):
        network = fresh_network(9)
        network.set_root(5)
        assert network.root_id == 5
        assert network.node(5).is_root
        assert not network.node(0).is_root
        assert network.root is network.node(5)

    def test_set_root_rejects_dead_and_unknown_nodes(self):
        network = fresh_network(9)
        network.kill_node(4)
        with pytest.raises(ConfigurationError):
            network.set_root(4)
        with pytest.raises(ConfigurationError):
            network.set_root(99)


# --------------------------------------------------------------------------- #
# The election protocol itself
# --------------------------------------------------------------------------- #
class TestRootElection:
    def test_requires_a_dead_root(self):
        network = fresh_network(9)
        with pytest.raises(ConfigurationError):
            RootElection().elect(network)

    def test_requires_a_survivor(self):
        network = fresh_network(1, topology="line")
        network.kill_node(0, allow_root=True)
        with pytest.raises(ConfigurationError):
            RootElection().elect(network)

    def test_highest_surviving_id_wins_and_is_charged(self):
        network = fresh_network(16)
        network.kill_node(0, allow_root=True)
        result = RootElection().elect(network)
        assert result.old_root == 0
        assert result.new_root == 15
        assert network.root_id == 15
        assert network.node(15).is_root
        assert result.participants == 15
        assert result.election_bits > 0
        assert result.election_messages > 0
        snapshot = network.ledger.snapshot()
        assert snapshot.per_protocol_bits["faults:election"] == result.election_bits
        # The reversed path runs from the winner to its fragment's old top,
        # and the flips mirror it edge by edge.
        assert result.reversed_path[0] == 15
        assert len(result.flips) == len(result.reversed_path) - 1
        assert 15 in result.winner_fragment

    def test_partitioned_survivors_take_no_part(self):
        # Killing node 4 of a 9-node line (with root 0 dead too) cuts
        # {1, 2, 3} off from the winner's side {5, 6, 7, 8}.
        network = fresh_network(9, topology="line")
        network.kill_node(0, allow_root=True)
        network.kill_node(4)
        result = RootElection().elect(network)
        assert result.new_root == 8
        assert result.participants == 4
        assert set(result.winner_fragment) == {5, 6, 7, 8}

    def test_election_leaves_the_tree_to_the_repair(self):
        network = fresh_network(16)
        old_parent = dict(network.tree.parent)
        network.kill_node(0, allow_root=True)
        RootElection().elect(network)
        assert network.tree.parent == old_parent  # untouched by design


# --------------------------------------------------------------------------- #
# Repair integration: the dead-root path defers to the election
# --------------------------------------------------------------------------- #
class TestRepairFailover:
    def test_dead_root_without_election_is_an_error(self):
        network = fresh_network(16)
        network.kill_node(0, allow_root=True)
        with pytest.raises(ConfigurationError, match="election"):
            TreeRepair().repair(network)

    @pytest.mark.parametrize("execution", ["batched", "per-edge"])
    def test_seeded_repair_respans_the_survivors(self, execution):
        network = fresh_network(36, execution=execution)
        network.kill_node(0, allow_root=True)
        repair = TreeRepair(election=RootElection())
        result = repair.repair(network)
        assert result.election is not None
        assert result.election.new_root == 35
        assert network.root_id == 35
        assert 0 in result.removed
        tree = network.tree
        assert set(tree.parent) == set(network.alive_node_ids())
        tree.check_invariants()
        tree.validate(network.graph, covering=set(tree.parent))
        # The repair's own bill excludes the election's.
        snapshot = network.ledger.snapshot()
        assert result.control_bits == snapshot.per_protocol_bits.get(
            "faults:repair", 0
        )

    def test_rebuild_strategy_still_elects_first(self):
        network = fresh_network(36)
        network.kill_node(0, allow_root=True)
        result = TreeRepair(strategy="rebuild", election=RootElection()).repair(
            network
        )
        assert result.rebuilt
        assert result.election is not None
        assert network.tree.root == network.root_id == 35
        network.tree.validate(network.graph, covering=set(network.tree.parent))


# --------------------------------------------------------------------------- #
# Engine integration: the scripted RootCrash event
# --------------------------------------------------------------------------- #
class TestRootCrashEvent:
    def test_failover_happens_in_the_crash_epoch(self):
        network = fresh_network(25)
        script = FaultScript().add(1, RootCrash())
        faults = FaultEngine(network, script=script)
        quiet = faults.step(0)
        assert quiet.election is None
        report = faults.step(1)
        assert report.crashed == (0,)
        assert report.election is not None
        assert report.election.new_root == 24
        assert network.root_id == 24
        network.tree.validate(network.graph, covering=set(network.tree.parent))

    def test_second_blow_hits_the_new_root(self):
        network = fresh_network(25)
        script = FaultScript().add(1, RootCrash()).add(3, RootCrash())
        faults = FaultEngine(network, script=script)
        for epoch in range(4):
            faults.step(epoch)
        # 24 won the first election, died in the second, 23 succeeded it.
        assert network.root_id == 23
        assert not network.is_alive(24)
        network.tree.validate(network.graph, covering=set(network.tree.parent))

    def test_node_crash_on_the_current_root_fails_over(self):
        """A crash is a crash: hitting whoever is root triggers an election.

        Scripts are written against node ids, and after a fail-over any id
        can be the root — so NodeCrash on the current root behaves exactly
        like RootCrash (applied immediately, even under a charged detector:
        the root's silence at the epoch tick is self-announcing).
        """
        network = fresh_network(9)
        faults = FaultEngine(
            network,
            script=FaultScript().add(0, NodeCrash(0)),
            detector=HeartbeatDetector(period=4),
        )
        report = faults.step(0)
        assert report.election is not None
        assert network.root_id == 8
        assert not network.is_alive(0)

    def test_stochastic_crashes_spare_the_current_root(self):
        network = fresh_network(25)
        script = FaultScript().add(1, RootCrash())
        faults = FaultEngine(network, script=script, crash_rate=0.4, seed=3)
        for epoch in range(5):
            faults.step(epoch)
        assert network.is_alive(network.root_id)

    def test_failover_with_charged_detector_reveals_zombies(self):
        network = fresh_network(25)
        script = FaultScript().add(1, NodeCrash(7)).add(2, RootCrash())
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=4)
        )
        faults.step(0)
        report = faults.step(1)  # 7 dies silently: no sweep until epoch 4
        assert report.detected == ()
        assert 7 in faults.undetected_dead
        report = faults.step(2)
        # The root's death is self-announcing, the election runs now, and
        # the repair pass doubles as a liveness probe that unmasks node 7.
        assert report.election is not None
        assert 7 in report.detected
        assert report.detection_latencies == (1,)
        assert not network.is_alive(7)
        assert network.root_id == 24
        # No sweep was due this epoch (period 4): the probe revealed the
        # zombie at the repair's already-charged cost, not the heartbeat's.
        assert report.detection_bits == 0
        network.tree.validate(network.graph, covering=set(network.tree.parent))


# --------------------------------------------------------------------------- #
# Streaming recovery: cache migration along the reversed root path
# --------------------------------------------------------------------------- #
class TestStreamRecovery:
    def _run(self, num_nodes=36, crash_epoch=2, epochs=6, execution="batched"):
        network = SensorNetwork.from_items(
            [0] * num_nodes, topology="grid", seed=0, execution=execution
        )
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.0)
        engine.register("count", CountQuery())
        script = root_failover_script(
            network.node_ids(), crash_epoch=crash_epoch
        )
        faults = FaultEngine(network, script=script)
        trace = run_faulty_stream(
            engine, StaticStream(num_nodes), faults, epochs=epochs
        )
        return network, engine, trace

    def test_decomposition_holds_every_epoch(self):
        _, _, trace = self._run()
        for record in trace:
            assert record.total_bits == (
                record.repair_bits
                + record.query_bits
                + record.detection_bits
                + record.election_bits
            )
        assert trace.election_count == 1
        assert trace.total_election_bits > 0

    def test_answers_move_to_the_new_root_exactly(self):
        network, engine, trace = self._run()
        crash = trace[2]
        assert crash.new_root == 35
        assert crash.answers["count"] == 35.0  # the dead root's reading is gone
        assert crash.errors["count"] == 0.0
        assert engine.answers()["count"] == 35.0
        # The old root's per-query state died with it.
        assert 0 not in engine._queries["count"].nodes
        assert network.root_id == 35

    def test_migration_beats_cold_resync(self):
        """After the fail-over epoch a static field goes silent again."""
        _, _, trace = self._run(epochs=6, crash_epoch=2)
        assert trace[2].election_bits > 0
        for record in trace.records[3:]:
            assert record.total_bits == 0, record
        # ...and the fail-over epoch itself resynchronised far fewer nodes
        # than the field holds (only repaired paths retransmit).
        assert 0 < trace[2].dirty_nodes < 36

    @pytest.mark.parametrize("execution", ["batched", "per-edge"])
    def test_apply_root_change_is_idempotent(self, execution):
        network, engine, trace = self._run(execution=execution)
        election_like = trace[2]
        assert election_like.new_root is not None
        # Re-applying the same handover (e.g. a driver replaying a report)
        # must not corrupt the caches: the next epoch still costs nothing.
        faults_free = engine.advance_epoch({})
        assert faults_free.bits == 0


# --------------------------------------------------------------------------- #
# Cross-path equivalence: elections are bit-for-bit twins
# --------------------------------------------------------------------------- #
def _failover_script(network, seed):
    """Root crash on top of churn, crashes and link storms."""
    return (
        crash_storm_script(
            network.node_ids(), epoch=0, fraction=0.2, seed=seed, rejoin_epoch=3
        )
        .merge(FaultScript().add(1, RootCrash()))
        .merge(
            link_storm_script(
                network.graph, epoch=0, fraction=0.1, seed=seed, restore_epoch=3
            )
        )
        .merge(
            churn_script(
                network.node_ids(),
                epochs=4,
                churn_rate=0.1,
                start_epoch=1,
                seed=seed,
            )
        )
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("radio_name", sorted(RADIOS))
@pytest.mark.parametrize("topology", ["grid", "random_geometric"])
def test_election_paths_are_ledger_identical(topology, radio_name, seed):
    """Fail-over under churn: identical elections, trees and ledgers."""
    networks = []
    reports = []
    for mode in ("batched", "per-edge"):
        network = SensorNetwork.from_items(
            [3] * 36,
            topology=topology,
            seed=seed,
            radio=RADIOS[radio_name](seed),
            execution=mode,
        )
        script = _failover_script(network, seed)
        faults = FaultEngine(network, script=script)
        reports.append([faults.step(epoch) for epoch in range(5)])
        networks.append(network)
    batched, per_edge = networks
    assert [r.repair for r in reports[0]] == [r.repair for r in reports[1]]
    assert [r.election for r in reports[0]] == [r.election for r in reports[1]]
    assert batched.root_id == per_edge.root_id
    assert batched.tree.parent == per_edge.tree.parent
    assert batched.tree.depth == per_edge.tree.depth
    batched.tree.check_invariants()
    assert_ledgers_identical(batched, per_edge)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("radio_name", sorted(RADIOS))
@pytest.mark.parametrize(
    "topology", ["grid", "line", "star", "random_geometric", "random_tree"]
)
def test_randomized_election_equivalence(topology, radio_name, seed):
    """Randomized sizes and compound scripts across every topology family.

    The fail-over exercises the seeded repair (shared materialisation, two
    charging paths), so everything observable must match: the election
    results, full ledger snapshots including per-node bits under lossy
    retries, the re-rooted trees in every representation, and the flat
    views the batched traversals consume afterwards.
    """
    rng = random.Random(seed * 9176 + 5)
    num_nodes = rng.choice([25, 36, 49, 64])
    items = [rng.randrange(1, 500) for _ in range(num_nodes)]
    networks = []
    reports = []
    for mode in ("batched", "per-edge"):
        network = SensorNetwork.from_items(
            items,
            topology=topology,
            seed=seed,
            radio=RADIOS[radio_name](seed),
            execution=mode,
        )
        script = _failover_script(network, seed).merge(
            FaultScript().add(4, RootCrash())
        )
        faults = FaultEngine(network, script=script)
        reports.append([faults.step(epoch).repair for epoch in range(6)])
        networks.append(network)
    batched, per_edge = networks
    assert reports[0] == reports[1]
    assert batched.root_id == per_edge.root_id
    assert batched.tree.parent == per_edge.tree.parent
    assert batched.tree.children == per_edge.tree.children
    assert batched.tree.depth == per_edge.tree.depth
    batched.tree.check_invariants()
    flat_b, flat_p = batched.flat_tree, per_edge.flat_tree
    # Structural arrays are representation-dependent (int64 buffers under
    # numpy); compare the canonical list view plus the id-level link caches.
    assert flat_b.to_lists() == flat_p.to_lists()
    for slot in ("up_links", "down_links"):
        assert getattr(flat_b, slot) == getattr(flat_p, slot), slot
    assert_ledgers_identical(batched, per_edge)
    if hasattr(batched.radio, "_rng"):
        assert batched.radio._rng.getstate() == per_edge.radio._rng.getstate()


@pytest.mark.parametrize("seed", [0, 1])
def test_failover_streaming_stack_is_ledger_identical(seed):
    """The full resilient stack with a mid-stream root crash, on both paths."""
    from repro.workloads.streams import DriftStream

    nets = []
    traces = []
    for mode in ("batched", "per-edge"):
        network = SensorNetwork.from_items(
            [0] * 36,
            topology="grid",
            seed=seed,
            radio=LossyRadio(loss_rate=0.25, seed=seed),
            execution=mode,
        )
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.0)
        engine.register("count", CountQuery())
        script = crash_storm_script(
            network.node_ids(), epoch=1, fraction=0.15, seed=seed, rejoin_epoch=4
        ).merge(FaultScript().add(2, RootCrash()))
        faults = FaultEngine(network, script=script)
        traces.append(
            run_faulty_stream(
                engine,
                DriftStream(36, max_value=512, seed=seed),
                faults,
                epochs=6,
            )
        )
        nets.append(network)
    assert [record.answers for record in traces[0]] == [
        record.answers for record in traces[1]
    ]
    assert [record.total_bits for record in traces[0]] == [
        record.total_bits for record in traces[1]
    ]
    assert [record.election_bits for record in traces[0]] == [
        record.election_bits for record in traces[1]
    ]
    assert nets[0].root_id == nets[1].root_id
    assert_ledgers_identical(*nets)
    assert nets[0].radio._rng.getstate() == nets[1].radio._rng.getstate()
