"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration problems from protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class TopologyError(ConfigurationError):
    """Raised when a requested topology cannot be built (e.g. disconnected)."""


class DuplicateAxisValueError(ConfigurationError, ValueError):
    """Raised when a sweep axis repeats a value (the seed-reuse footgun).

    A repeated axis value would collapse two intended cells into one cache
    key — ``seeds=(0, 1, 1)`` silently runs two cells where the author
    budgeted three, and every downstream average is computed over fewer
    independent samples than reported.  Also a :class:`ValueError`, so
    generic callers that validate argument values catch it naturally.
    """


class EmptyNetworkError(ReproError):
    """Raised when a query is issued against a network holding no items."""


class ProtocolError(ReproError):
    """Raised when a protocol is invoked in an invalid state."""


class PredicateError(ProtocolError):
    """Raised when a predicate cannot be encoded or evaluated locally."""


class DeliveryError(ProtocolError):
    """Raised when the radio model permanently fails to deliver a message."""


class DeadNodeError(ProtocolError):
    """Raised when a transmission involves a node that has crashed.

    Protocols never trigger this in normal operation — the self-healing tree
    spans only alive, root-connected nodes — so it firing means a traversal
    used stale topology state, which must fail loudly rather than charge
    phantom traffic to a dead radio.
    """


class BudgetExceededError(ReproError):
    """Raised when a protocol exceeds an explicitly configured bit budget."""
