"""Vectorized and sharded execution of the continuous-query engine.

:class:`VectorStreamEngine` is a drop-in :class:`ContinuousQueryEngine`
for *count-valued* standing queries (COUNT / COUNTP): same constructor,
same ``register`` / ``advance_epoch`` / ``apply_repair`` /
``apply_root_change`` surface, same trace records — but the per-(node,
query) dict state is replaced by contiguous numpy columns aligned to the
network's :class:`~repro.network.FlatTree`, and the per-epoch sweep runs as
whole-array level passes (:mod:`repro.streaming.vector_kernels`) instead of
per-node ``decide`` callbacks.

Equivalence contract (enforced by the randomized suite in
``tests/test_vectorized.py``): for any topology, radio model, fault script
and update stream, the ledger snapshot and the per-epoch answers are
bit-for-bit identical to the batched and per-edge reference paths.  The
ingredients:

* transmissions still go through :meth:`SensorNetwork.send_batch`, one call
  per tree level, in ascending node-id order within the level — so radio
  randomness is consumed in exactly the reference order and lossy-radio
  retries charge identically;
* the suppression / delta arithmetic is the count-summary specialization of
  the engine's ``decide`` rule, computed with exact vectorized varint
  widths;
* repairs re-synchronize the columns with the same eviction rules the
  reference applies to its dicts (:meth:`apply_repair`,
  :meth:`apply_root_change`).

When ``network.execution == "sharded"`` the sweep fans out over subtree
shards (:mod:`repro.network.sharding`): each worker process runs the same
kernel over its shard slice against a private ledger, and the parent folds
the results back with **one** ledger merge per query per epoch — spans
``shard.sweep`` and ``shard.merge`` record the fan-out in the telemetry
phase breakdown.  Sharded execution requires perfect links
(:class:`~repro.network.radio.ReliableRadio`): a seeded lossy radio is a
single RNG stream, which cannot be split across processes and stay
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.fastpath import np, require_numpy
from repro.exceptions import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.radio import ReliableRadio
from repro.network.simulator import SensorNetwork
from repro.protocols.broadcast import broadcast
from repro.protocols.epoch_convergecast import EpochStats
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import REGISTRATION_BITS, StandingQuery
from repro.streaming.summaries import CountSummary
from repro.streaming.vector_kernels import SweepState, sweep_levels


@dataclass
class _VectorQueryState:
    """Per-query engine state: sweep columns plus the reference bookkeeping.

    Field names ``query`` / ``initialized`` / ``scale`` match the reference
    ``_QueryState`` so the inherited slack, answer-bound and introspection
    helpers work unchanged.
    """

    query: StandingQuery
    state: SweepState
    tracked: "np.ndarray"
    initialized: bool = False
    scale: float = 0.0


@dataclass
class _EvictionLog:
    """Cache values of rows dropped by a re-alignment, keyed by node id.

    The reference engine stores a child's cached summary *in the parent's
    dict*, so it survives the child's removal until ``child_losses`` evicts
    it.  The vectorized engine stores it in the child's row; when a repair
    drops that row before the eviction runs, the value is parked here.
    """

    by_query: dict[str, dict[int, int]] = field(default_factory=dict)


class VectorStreamEngine(ContinuousQueryEngine):
    """Numpy-columnar continuous-query engine for count-valued queries."""

    def __init__(
        self,
        network: SensorNetwork,
        epsilon: float = 0.1,
        energy_model: EnergyModel | None = None,
        *,
        shards: int = 4,
        shard_processes: int | None = None,
    ) -> None:
        require_numpy("VectorStreamEngine")
        super().__init__(network, epsilon, energy_model)
        self._flat = None
        self._pos_table = None
        self._dropped = _EvictionLog()
        self._shards = shards
        self._shard_processes = shard_processes
        self._shard_runner = None
        self._realign()

    # ------------------------------------------------------------------ #
    # Alignment with the (possibly repaired) flat tree
    # ------------------------------------------------------------------ #
    def _realign(self) -> None:
        """Re-key every query's columns to the network's current flat tree.

        A pure id-join: surviving nodes carry their rows, nodes that left
        the tree are dropped (their delivered-cache values parked in the
        eviction log), nodes new to the tree get fresh *untracked* rows for
        :meth:`apply_repair` to activate.  No-op while the flat tree object
        is unchanged, so steady-state epochs never pay for it.
        """
        flat = self.network.flat_tree
        if flat is self._flat:
            return
        ids = flat.ids_array
        if ids.size and int(ids.min()) < 0:
            raise ConfigurationError(
                "the vectorized engine requires non-negative node ids"
            )
        max_id = int(ids.max()) if ids.size else 0
        table = np.full(max_id + 1, -1, dtype=np.int64)
        table[ids] = np.arange(flat.num_nodes, dtype=np.int64)

        if self._flat is not None and self._queries:
            old_table = self._pos_table
            old_ids = self._flat.ids_array
            within = ids < old_table.size
            old_pos = np.full(flat.num_nodes, -1, dtype=np.int64)
            old_pos[within] = old_table[ids[within]]
            carried = old_pos >= 0
            carried_from = old_pos[carried]
            surviving = np.zeros(self._flat.num_nodes, dtype=bool)
            surviving[carried_from] = True
            dropped_pos = np.flatnonzero(~surviving)
            for name, state in self._queries.items():
                old = state.state
                if dropped_pos.size:
                    parked = self._dropped.by_query.setdefault(name, {})
                    cached = dropped_pos[old.has_delivered[dropped_pos]]
                    for position in cached.tolist():
                        parked[int(old_ids[position])] = int(
                            old.last_delivered[position]
                        )
                fresh = SweepState.zeros(flat.num_nodes)
                for column in SweepState.COLUMNS:
                    getattr(fresh, column)[carried] = getattr(old, column)[
                        carried_from
                    ]
                tracked = np.zeros(flat.num_nodes, dtype=bool)
                tracked[carried] = state.tracked[carried_from]
                state.state = fresh
                state.tracked = tracked
        self._flat = flat
        self._pos_table = table
        self._shard_runner = None  # shard plans are per-tree

    def _pos_of(self, node_id: int) -> int:
        if 0 <= node_id < self._pos_table.size:
            return int(self._pos_table[node_id])
        return -1

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, query: StandingQuery, announce: bool = True) -> None:
        if name in self._queries:
            raise ConfigurationError(f"query {name!r} is already registered")
        try:
            probe = query.local_summary([])
        except Exception:  # pragma: no cover - exotic custom queries
            probe = None
        if not isinstance(probe, CountSummary):
            raise ConfigurationError(
                f"{type(query).__name__} is not count-valued; the vectorized "
                "engine supports COUNT / COUNTP — register it on "
                "ContinuousQueryEngine instead"
            )
        self._realign()
        num = self._flat.num_nodes
        self._queries[name] = _VectorQueryState(
            query=query,
            state=SweepState.zeros(num),
            tracked=np.ones(num, dtype=bool),
        )
        if announce:
            broadcast(
                self.network,
                {"register": name, "kind": query.kind},
                REGISTRATION_BITS,
                protocol=f"{self.protocol_prefix}:{name}:register",
            )

    # ------------------------------------------------------------------ #
    # Fault recovery
    # ------------------------------------------------------------------ #
    def apply_root_change(self, election) -> None:
        if election is None:
            return
        self._realign()
        new_root = int(election.new_root)
        path = tuple(int(member) for member in election.reversed_path)
        dirty: set[int] = set()
        for name, state in self._queries.items():
            columns = state.state
            parked = self._dropped.by_query.get(name, {})
            previous: int | None = None
            for member in path:
                position = self._pos_of(member)
                if position < 0:
                    previous = member
                    continue
                state.tracked[position] = True
                if previous is not None:
                    self._evict_child_cache(columns, parked, position, previous)
                columns.transmitted[position] = 0
                columns.has_transmitted[position] = False
                dirty.add(member)
                previous = member
            # The deepest path member's old parent was the dead root: its
            # cache died with it, so no one holds a copy any more.
            if path:
                last = self._pos_of(path[-1])
                if last >= 0:
                    columns.last_delivered[last] = 0
                    columns.has_delivered[last] = False
            root_position = self._pos_of(new_root)
            if root_position >= 0:
                state.tracked[root_position] = True
        dirty.add(new_root)
        self._pending_dirty |= dirty
        self._record_root_change_evictions(path)

    def apply_repair(self, result) -> None:
        if result is None or not getattr(result, "changed_anything", True):
            return
        self._realign()
        tree_nodes = self.network.tree.parent
        num = self._flat.num_nodes
        if result.rebuilt:
            for state in self._queries.values():
                state.state = SweepState.zeros(num)
                state.tracked = np.ones(num, dtype=bool)
                state.initialized = False
            self._dropped.by_query.clear()
            self._pending_dirty = set(tree_nodes)
            self._record_evictions(result)
            return
        dirty: set[int] = set()
        ids = self._flat.node_ids
        for name, state in self._queries.items():
            columns = state.state
            parked = self._dropped.by_query.get(name, {})
            for parent_id, child_id in result.child_losses:
                parent_pos = self._pos_of(int(parent_id))
                if parent_pos < 0 or not state.tracked[parent_pos]:
                    continue
                self._evict_child_cache(columns, parked, parent_pos, int(child_id))
                dirty.add(int(parent_id))
            for node_id in result.parent_changed:
                position = self._pos_of(int(node_id))
                if position < 0:
                    continue
                state.tracked[position] = True
                columns.transmitted[position] = 0
                columns.has_transmitted[position] = False
                # A reparented node's old cache holder either evicted the
                # entry above (child_losses) or left the tree with it; its
                # next delivery must be cached whole by the new parent.
                columns.last_delivered[position] = 0
                columns.has_delivered[position] = False
                dirty.add(int(node_id))
            # Nodes re-entering the tree after an earlier removal: fresh
            # rows (realign left them untracked zeros) plus a full resync.
            fresh = np.flatnonzero(~state.tracked)
            if fresh.size:
                state.tracked[fresh] = True
                for position in fresh.tolist():
                    dirty.add(int(ids[position]))
        self._pending_dirty |= {node for node in dirty if node in tree_nodes}
        self._record_evictions(result)

    def _evict_child_cache(
        self, columns: SweepState, parked: dict[int, int], parent_pos: int, child_id: int
    ) -> None:
        """Drop the parent's cached copy of ``child_id``'s last delivery."""
        child_pos = self._pos_of(child_id)
        if child_pos >= 0 and columns.has_delivered[child_pos]:
            columns.child_sum[parent_pos] -= columns.last_delivered[child_pos]
            columns.last_delivered[child_pos] = 0
            columns.has_delivered[child_pos] = False
        elif child_id in parked:
            columns.child_sum[parent_pos] -= parked.pop(child_id)

    # ------------------------------------------------------------------ #
    # Epoch internals (the inherited advance_epoch drives these)
    # ------------------------------------------------------------------ #
    def _refresh_local_summaries(self, state, updates) -> set[int]:
        self._realign()
        columns = state.state
        query = state.query
        network = self.network
        if state.initialized:
            candidates = [int(node_id) for node_id in updates]
        else:
            candidates = [
                int(node_id)
                for node_id in self._flat.ids_array[state.tracked].tolist()
            ]
            state.initialized = True
        dirty: set[int] = set()
        for node_id in candidates:
            position = self._pos_of(node_id)
            if position < 0 or not state.tracked[position]:
                continue
            new_local = query.local_summary(network.node(node_id).items).count
            if not columns.has_local[position] or int(
                columns.local[position]
            ) != int(new_local):
                columns.local[position] = new_local
                columns.has_local[position] = True
                dirty.add(node_id)
        return dirty

    def _run_query_epoch(self, name: str, state, dirty: set[int]) -> EpochStats:
        if not dirty:
            return EpochStats(rounds=0, activated=0, transmissions=0, suppressions=0)
        flat = self._flat
        columns = state.state
        positions = self._pos_table[
            np.fromiter((int(node) for node in dirty), dtype=np.int64, count=len(dirty))
        ]
        # Pending-dirty nodes created by a repair have no local summary yet;
        # compute it lazily from their items, as the reference decide() does.
        missing = positions[~columns.has_local[positions]]
        node_ids = flat.node_ids
        for position in missing.tolist():
            node_id = node_ids[position]
            columns.local[position] = state.query.local_summary(
                self.network.node(node_id).items
            ).count
            columns.has_local[position] = True

        active = np.zeros(flat.num_nodes, dtype=bool)
        active[positions] = True
        deepest = int(flat.depth[positions].max())
        slack = self._slack(state)
        protocol = f"{self.protocol_prefix}:{name}"
        if self.network.execution == "sharded":
            stats = self._run_sharded(
                columns, active, deepest, slack, protocol
            )
        else:
            stats = self._run_inprocess(
                columns, active, deepest, slack, protocol
            )
        telemetry = self.network.telemetry
        if telemetry.enabled:
            telemetry.count(
                "sweep.epochs", 1, protocol=protocol, path=self.network.execution
            )
            telemetry.count("sweep.rounds", stats.rounds, protocol=protocol)
            telemetry.count("sweep.activated", stats.activated, protocol=protocol)
            telemetry.count(
                "sweep.transmissions", stats.transmissions, protocol=protocol
            )
            telemetry.count(
                "sweep.suppressions", stats.suppressions, protocol=protocol
            )
        return stats

    def _run_inprocess(
        self, columns: SweepState, active, deepest: int, slack: float, protocol: str
    ) -> EpochStats:
        flat = self._flat
        node_ids = flat.node_ids
        network = self.network

        def charge(tx_pos, tx_par, sizes):
            links = [
                (node_ids[sender], node_ids[receiver])
                for sender, receiver in zip(tx_pos.tolist(), tx_par.tolist())
            ]
            copies = network.send_batch(
                links, sizes.tolist(), protocol=protocol, require_edge=False
            )
            delivered = np.asarray(copies, dtype=np.int64) > 0
            return None if bool(delivered.all()) else delivered

        result = sweep_levels(
            parent=flat.parent,
            level_spans=[flat.level_spans[depth] for depth in range(deepest, -1, -1)],
            state=columns,
            active=active,
            slack=slack,
            charge=charge,
            advance_round=network.ledger.advance_round,
        )
        return EpochStats(
            rounds=deepest + 1,
            activated=result.activated,
            transmissions=result.transmissions,
            suppressions=result.suppressions,
        )

    # ------------------------------------------------------------------ #
    # Sharded execution
    # ------------------------------------------------------------------ #
    def _ensure_shard_runner(self):
        if self._shard_runner is None:
            from repro.network.sharding import ShardRunner, build_shard_plan

            plan = build_shard_plan(self._flat, self._shards)
            if plan is not None:
                self._shard_runner = ShardRunner(
                    plan, processes=self._shard_processes
                )
        return self._shard_runner

    def _run_sharded(
        self, columns: SweepState, active, deepest: int, slack: float, protocol: str
    ) -> EpochStats:
        network = self.network
        if type(network.radio) is not ReliableRadio:
            raise ConfigurationError(
                "sharded execution requires ReliableRadio: a seeded lossy "
                "radio is one RNG stream and cannot be split across workers"
            )
        if network.ledger.per_node_budget_bits is not None:
            raise ConfigurationError(
                "sharded execution does not support per-node bit budgets"
            )
        runner = self._ensure_shard_runner()
        if runner is None:  # degenerate tree: nothing below the root
            return self._run_inprocess(columns, active, deepest, slack, protocol)

        telemetry = network.telemetry
        with telemetry.span("shard.sweep", shards=len(runner.plan.shards)) as span:
            results = runner.sweep(
                columns, active, deepest=deepest, slack=slack, protocol=protocol
            )
            if telemetry.enabled:
                # Per-worker breakdown, keyed by shard id, so attribution
                # can be sliced per shard instead of one opaque fan-out.
                span.annotate(
                    dispatched=len(results),
                    shard_nodes={
                        str(shard.index): int(shard.positions.size)
                        for shard, _ in results
                    },
                    shard_bits={
                        str(shard.index): int(outcome.ledger.total_bits)
                        for shard, outcome in results
                    },
                )
        activated = transmissions = suppressions = 0
        external_delta = 0
        external_count = 0
        combined = None
        for shard, outcome in results:
            columns.scatter(shard.positions, outcome.state)
            active[shard.positions] = outcome.active
            activated += outcome.result.activated
            transmissions += outcome.result.transmissions
            suppressions += outcome.result.suppressions
            external_delta += outcome.result.external_delta
            external_count += outcome.result.external_count
            if combined is None:
                combined = outcome.ledger
            else:
                combined.merge(outcome.ledger)
        with telemetry.span("shard.merge") as span:
            if combined is not None:
                network.ledger.merge(combined)
                if telemetry.enabled:
                    span.annotate(
                        bits=combined.total_bits,
                        messages=combined.total_messages,
                        shards=len(results),
                    )
        # The root's own turn: deliveries from shard tops landed as one
        # summed delta; the root merges and never transmits.
        if external_count:
            columns.child_sum[0] += external_delta
            active[0] = True
        if active[0]:
            activated += 1
            columns.subtree_val[0] = columns.local[0] + columns.child_sum[0]
            columns.has_subtree[0] = True
        network.ledger.advance_round(deepest + 1)
        return EpochStats(
            rounds=deepest + 1,
            activated=activated,
            transmissions=transmissions,
            suppressions=suppressions,
        )

    def close(self) -> None:
        """Shut down the shard worker pool, if one was started."""
        if self._shard_runner is not None:
            self._shard_runner.close()
            self._shard_runner = None

    # ------------------------------------------------------------------ #
    # Answers
    # ------------------------------------------------------------------ #
    def root_summary(self, name: str) -> CountSummary | None:
        """The root's merged count summary (the reference accessor's twin)."""
        try:
            state = self._queries[name]
        except KeyError:
            raise ConfigurationError(f"unknown query {name!r}") from None
        columns = state.state
        root_position = self._pos_of(self.network.root_id)
        if root_position < 0 or not columns.has_subtree[root_position]:
            return None
        return CountSummary(int(columns.subtree_val[root_position]))

    def _read_answer(self, name: str, state) -> None:
        columns = state.state
        root_position = self._pos_of(self.network.root_id)
        if root_position < 0 or not columns.has_subtree[root_position]:
            return
        summary = CountSummary(int(columns.subtree_val[root_position]))
        self._answers[name] = state.query.answer(summary)
        state.scale = max(state.scale, state.query.scale(summary))


def engine_for(
    network: SensorNetwork,
    epsilon: float = 0.1,
    energy_model: EnergyModel | None = None,
    **kwargs,
) -> ContinuousQueryEngine:
    """The engine implementation matching ``network.execution``.

    ``"vectorized"`` and ``"sharded"`` networks get a
    :class:`VectorStreamEngine`; everything else (and any environment
    without numpy, after a one-time fallback warning) gets the reference
    :class:`ContinuousQueryEngine`.
    """
    if network.execution in ("vectorized", "sharded"):
        if np is None:
            from repro._util.fastpath import warn_fallback

            warn_fallback("vectorized streaming execution")
        else:
            return VectorStreamEngine(network, epsilon, energy_model, **kwargs)
    return ContinuousQueryEngine(network, epsilon, energy_model)
