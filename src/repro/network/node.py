"""Sensor node state.

A node holds a multiset of non-negative integer *input items* (Section 2.1 of
the paper).  Most experiments use exactly one item per node, but the model —
and Theorem 5.1's reduction — allows several, so items are stored as a list.

Nodes also carry a small ``scratch`` dictionary used by protocols for the
per-node state that the paper charges against *space complexity* (e.g. the
active/passive flag and scaled values of Algorithm ``APX_MEDIAN2``).  The
scratch space never leaks into the communication accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro._util.validation import require_non_negative
from repro.exceptions import ConfigurationError


@dataclass
class SensorNode:
    """A single sensor holding zero or more integer items."""

    node_id: int
    items: list[int] = field(default_factory=list)
    is_root: bool = False
    scratch: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_non_negative(self.node_id, "node_id")
        validated: list[int] = []
        for item in self.items:
            validated.append(require_non_negative(item, "item"))
        self.items = validated

    # ------------------------------------------------------------------ #
    # Item management
    # ------------------------------------------------------------------ #
    def add_item(self, value: int) -> None:
        """Append one input item to this node's local multiset."""
        self.items.append(require_non_negative(value, "value"))

    def add_items(self, values: Iterable[int]) -> None:
        """Append several input items."""
        for value in values:
            self.add_item(value)

    def clear_items(self) -> None:
        """Remove all input items (used when re-seeding a reused network)."""
        self.items.clear()

    @property
    def item_count(self) -> int:
        """Number of items held locally, counting multiplicities."""
        return len(self.items)

    def single_item(self) -> int:
        """Return the node's item when it holds exactly one, else raise.

        The single-item case is the paper's default (Section 2.1); protocols
        that assume it call this accessor so a violated assumption fails loudly
        instead of silently dropping data.
        """
        if len(self.items) != 1:
            raise ConfigurationError(
                f"node {self.node_id} holds {len(self.items)} items; "
                "expected exactly one"
            )
        return self.items[0]

    # ------------------------------------------------------------------ #
    # Local (zero-communication) computation helpers
    # ------------------------------------------------------------------ #
    def count_matching(self, predicate) -> int:
        """Count local items satisfying a locally-computable predicate."""
        return sum(1 for item in self.items if predicate(item))

    def local_min(self) -> int | None:
        """Smallest local item, or ``None`` when the node holds no items."""
        return min(self.items) if self.items else None

    def local_max(self) -> int | None:
        """Largest local item, or ``None`` when the node holds no items."""
        return max(self.items) if self.items else None

    def reset_scratch(self) -> None:
        """Drop all per-protocol scratch state."""
        self.scratch.clear()
