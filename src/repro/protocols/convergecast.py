"""Convergecast: leaves-to-root aggregation over the spanning tree.

The TAG idea (and the paper's Fact 2.1) is that a node does not forward raw
data; it combines its children's partial aggregates with its own local value
and sends a single partial aggregate to its parent.  The generic traversal
below is parameterised by

* ``local_value`` — the node's own contribution (computed locally, free),
* ``combine`` — the aggregation operator (must be associative and commutative
  for the result to be independent of child ordering),
* ``size_bits`` — the wire size of a partial aggregate, either a constant or
  a callable evaluated on the value actually sent (so adaptive encodings are
  charged faithfully).
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.network.simulator import SensorNetwork

T = TypeVar("T")


def convergecast(
    network: SensorNetwork,
    local_value: Callable[..., T],
    combine: Callable[[T, T], T],
    size_bits: int | Callable[[T], int],
    protocol: str = "convergecast",
) -> T:
    """Aggregate ``local_value`` over all nodes, returning the root's total.

    ``local_value`` receives the :class:`~repro.network.SensorNode`; the
    traversal visits nodes bottom-up so every child has produced its partial
    aggregate before its parent combines it.  The number of synchronous rounds
    consumed equals the tree height.
    """
    tree = network.tree
    partial: dict[int, T] = {}
    for node_id in tree.nodes_bottom_up():
        node = network.node(node_id)
        value = local_value(node)
        for child in tree.children[node_id]:
            value = combine(value, partial.pop(child))
        partial[node_id] = value
        parent = tree.parent[node_id]
        if parent is not None:
            bits = size_bits(value) if callable(size_bits) else size_bits
            network.send(node_id, parent, value, bits, protocol=protocol)
    network.ledger.advance_round(tree.height)
    return partial[network.root_id]
