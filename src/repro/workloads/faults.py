"""Fault-script workloads: reusable failure scenarios for the fault engine.

Each builder returns a deterministic :class:`~repro.faults.FaultScript` —
the failure-side counterpart of the value streams in
:mod:`repro.workloads.streams`:

* :func:`crash_storm_script` — a fraction of the field dies at once
  (battery batch failure, a software fault rolling out), optionally
  recovering later;
* :func:`regional_outage_script` — a correlated geographic outage: every
  node within a hop-radius of a centre crashes together (flood, fire,
  jammer), optionally recovering later;
* :func:`churn_script` — background membership churn: every epoch each
  node independently toggles offline/online, the event-stream analogue of
  :class:`~repro.workloads.ChurnStream`;
* :func:`root_failover_script` — the query node itself dies (the E13
  fail-over scenario), optionally riding on background churn;
* :func:`link_storm_script` — a fraction of links (not nodes) fail,
  optionally recovering later.

All builders are deterministic in their ``seed`` and pin the root online —
except the scripted :class:`~repro.faults.RootCrash` of
:func:`root_failover_script`, which exists to kill it.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from repro._util.randomness import make_rng
from repro._util.validation import (
    require_non_negative,
    require_positive,
    require_probability,
)
from repro.exceptions import ConfigurationError
from repro.faults.events import (
    FaultScript,
    LinkDrop,
    LinkRestore,
    NodeCrash,
    NodeRejoin,
    RegionalOutage,
    RootCrash,
    expand_regional_outage,
)

FAULT_SCENARIOS = ("crash_storm", "regional_outage", "churn", "link_storm")
"""Scenario names understood by the E12 experiment harness."""


def crash_storm_script(
    node_ids: Sequence[int],
    epoch: int,
    fraction: float = 0.1,
    seed: int | None = 0,
    rejoin_epoch: int | None = None,
    rejoin_value_max: int = 1 << 16,
    root: int = 0,
) -> FaultScript:
    """Crash a random ``fraction`` of the non-root nodes at ``epoch``.

    With ``rejoin_epoch`` set, every casualty comes back then, each with one
    fresh uniform reading — a storm the field survives twice (losing the
    nodes, then re-absorbing them).
    """
    require_non_negative(epoch, "epoch")
    require_probability(fraction, "fraction")
    if rejoin_epoch is not None and rejoin_epoch <= epoch:
        raise ConfigurationError(
            f"rejoin_epoch {rejoin_epoch} must come after the storm at {epoch}"
        )
    rng = make_rng(seed)
    candidates = sorted(node_id for node_id in node_ids if node_id != root)
    count = round(fraction * len(candidates))
    if fraction > 0:  # a requested storm hits at least one node
        count = max(1, count)
    count = min(len(candidates), count)
    victims = sorted(rng.sample(candidates, count))
    script = FaultScript()
    script.add(epoch, *(NodeCrash(node) for node in victims))
    if rejoin_epoch is not None:
        script.add(
            rejoin_epoch,
            *(
                NodeRejoin(node, items=(rng.randint(0, rejoin_value_max),))
                for node in victims
            ),
        )
    return script


def regional_outage_script(
    graph: nx.Graph,
    epoch: int,
    radius: int,
    center: int | None = None,
    seed: int | None = 0,
    rejoin_epoch: int | None = None,
    rejoin_value_max: int = 1 << 16,
    root: int = 0,
) -> FaultScript:
    """Crash every node within ``radius`` hops of ``center`` at ``epoch``.

    ``center`` defaults to a seeded random non-root node.  The script
    carries a single :class:`~repro.faults.RegionalOutage` event (the
    engine expands it against the *current* graph); the rejoin schedule is
    precomputed from the given graph, which matches unless links also drop
    inside the blast radius before the outage fires.
    """
    require_non_negative(epoch, "epoch")
    require_non_negative(radius, "radius")
    rng = make_rng(seed)
    nodes = sorted(graph.nodes())
    if center is None:
        candidates = [node for node in nodes if node != root]
        if not candidates:
            raise ConfigurationError("graph has no non-root outage candidates")
        center = candidates[rng.randrange(len(candidates))]
    if center not in graph:
        raise ConfigurationError(f"outage center {center} is not a graph node")
    script = FaultScript()
    script.add(epoch, RegionalOutage(center=center, radius=radius))
    if rejoin_epoch is not None:
        if rejoin_epoch <= epoch:
            raise ConfigurationError(
                f"rejoin_epoch {rejoin_epoch} must come after the outage at {epoch}"
            )
        victims = expand_regional_outage(
            graph, RegionalOutage(center=center, radius=radius), protect=(root,)
        )
        script.add(
            rejoin_epoch,
            *(
                NodeRejoin(
                    crash.node_id, items=(rng.randint(0, rejoin_value_max),)
                )
                for crash in victims
            ),
        )
    return script


def churn_script(
    node_ids: Sequence[int],
    epochs: int,
    churn_rate: float = 0.05,
    start_epoch: int = 1,
    seed: int | None = 0,
    rejoin_value_max: int = 1 << 16,
    root: int = 0,
) -> FaultScript:
    """Background churn: each epoch every node toggles with ``churn_rate``.

    An online node crashes; an offline node rejoins with one fresh uniform
    reading.  This is the event-explicit twin of
    :class:`~repro.workloads.ChurnStream` (which models the same process as
    silent item-list changes); drive the value side with any other stream.
    """
    require_positive(epochs, "epochs")
    require_non_negative(start_epoch, "start_epoch")
    require_probability(churn_rate, "churn_rate")
    rng = make_rng(seed)
    online = {node_id: True for node_id in sorted(node_ids)}
    script = FaultScript()
    for epoch in range(start_epoch, start_epoch + epochs):
        for node_id in sorted(online):
            if node_id == root or rng.random() >= churn_rate:
                continue
            if online[node_id]:
                online[node_id] = False
                script.add(epoch, NodeCrash(node_id))
            else:
                online[node_id] = True
                script.add(
                    epoch,
                    NodeRejoin(
                        node_id, items=(rng.randint(0, rejoin_value_max),)
                    ),
                )
    return script


def storm_under_churn_script(
    node_ids: Sequence[int],
    epochs: int,
    storm_epoch: int,
    storm_fraction: float = 0.1,
    rejoin_epoch: int | None = None,
    churn_rate: float = 0.002,
    seed: int | None = 0,
    rejoin_value_max: int = 1 << 16,
    root: int = 0,
) -> FaultScript:
    """A mass crash riding on realistic background churn.

    The sustained-churn regime is where per-fault-epoch repair cost matters:
    every epoch a small fraction of the field flaps, so the repair pass runs
    constantly on small damage, and then a ``storm_fraction`` crash (with
    optional recovery at ``rejoin_epoch``) lands on top.  This is the
    scenario the wall-clock fault benchmarks race the two repair
    implementations on.
    """
    storm = crash_storm_script(
        node_ids,
        epoch=storm_epoch,
        fraction=storm_fraction,
        seed=seed,
        rejoin_epoch=rejoin_epoch,
        rejoin_value_max=rejoin_value_max,
        root=root,
    )
    churn = churn_script(
        node_ids,
        epochs=max(1, epochs - 1),
        churn_rate=churn_rate,
        start_epoch=1,
        seed=seed,
        rejoin_value_max=rejoin_value_max,
        root=root,
    )
    return storm.merge(churn)


def root_failover_script(
    node_ids: Sequence[int],
    crash_epoch: int,
    epochs: int | None = None,
    churn_rate: float = 0.0,
    seed: int | None = 0,
    rejoin_value_max: int = 1 << 16,
    root: int = 0,
) -> FaultScript:
    """The query node dies at ``crash_epoch`` — the E13 fail-over scenario.

    Schedules a single :class:`~repro.faults.RootCrash` (the event targets
    whoever is root when it fires, so it composes with earlier fail-overs).
    With ``churn_rate`` positive, background membership churn from
    :func:`churn_script` rides underneath for ``epochs`` epochs, so the
    handover is exercised on a field that is already flapping; the original
    ``root`` is pinned online by the churn half as usual — only the scripted
    root crash may kill a query node.
    """
    require_non_negative(crash_epoch, "crash_epoch")
    script = FaultScript()
    script.add(crash_epoch, RootCrash())
    if churn_rate > 0.0:
        if epochs is None:
            raise ConfigurationError(
                "root_failover_script needs epochs when churn_rate is set"
            )
        script = script.merge(
            churn_script(
                node_ids,
                epochs=max(1, epochs - 1),
                churn_rate=churn_rate,
                start_epoch=1,
                seed=seed,
                rejoin_value_max=rejoin_value_max,
                root=root,
            )
        )
    return script


def link_storm_script(
    graph: nx.Graph,
    epoch: int,
    fraction: float = 0.1,
    seed: int | None = 0,
    restore_epoch: int | None = None,
) -> FaultScript:
    """Drop a random ``fraction`` of the graph's links at ``epoch``."""
    require_non_negative(epoch, "epoch")
    require_probability(fraction, "fraction")
    rng = make_rng(seed)
    edges = sorted(tuple(sorted(edge)) for edge in graph.edges())
    if not edges:
        raise ConfigurationError("graph has no edges to drop")
    count = round(fraction * len(edges))
    if fraction > 0:  # a requested storm drops at least one link
        count = max(1, count)
    count = min(len(edges), count)
    victims = sorted(rng.sample(edges, count))
    script = FaultScript()
    script.add(epoch, *(LinkDrop(u, v) for u, v in victims))
    if restore_epoch is not None:
        if restore_epoch <= epoch:
            raise ConfigurationError(
                f"restore_epoch {restore_epoch} must come after the storm at {epoch}"
            )
        script.add(restore_epoch, *(LinkRestore(u, v) for u, v in victims))
    return script
