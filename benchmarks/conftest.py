"""Shared helpers for the benchmark harness.

Every benchmark runs its experiment exactly once per pytest-benchmark round
(``rounds=1, iterations=1``): the quantity of interest is the *communication*
measured inside the simulation, not the wall-clock time of the simulator, so
repeated timing adds nothing.  Results that reproduce the paper's claims are
attached to ``benchmark.extra_info`` (visible in ``--benchmark-verbose`` /
JSON output) and printed as plain-text tables (visible with ``-s``).
"""

from __future__ import annotations

import json
import os

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def bench_once():
    """Fixture wrapper around :func:`run_once` for terser benchmark bodies."""
    return run_once


def emit_bench_json(
    name: str,
    *,
    n: int,
    wall_clock_s: float,
    bits: int,
    metrics: dict[str, dict[str, float]] | None = None,
    phases: dict[str, dict[str, float]] | None = None,
    anomaly: dict | None = None,
) -> str:
    """Write (or merge into) ``BENCH_<name>.json`` for the CI perf gate.

    Every benchmark records its headline numbers — problem size, wall-clock
    of the measured sweep, simulated bits — plus named ``metrics`` of the
    form ``{"savings": {"value": 15.3, "floor": 5.0}}``.  The CI ``bench``
    matrix uploads these files as artifacts and the ``bench-report`` step
    (``benchmarks/report.py``) fails the build when any metric regresses
    below its floor, so the performance trajectory is tracked run over run.

    ``phases`` optionally attaches the telemetry phase breakdown — per
    pipeline phase, its wall-clock and communication bits (the shape
    :func:`phases_from_tracer` produces from a
    :class:`repro.telemetry.SpanTracer`) — which ``benchmarks/report.py``
    schema-checks and renders alongside the metric floors.  ``anomaly``
    optionally attaches the :func:`repro.telemetry.verdict` of the run's
    diagnosis (flagged epochs, how many had attributable cause chains),
    schema-checked the same way.

    Multiple tests in one benchmark file share a file: metrics accumulate
    across the calls of the *current* pytest session (never from a stale
    file on disk — a rerun that measures fewer metrics must not inherit
    last run's passing numbers), and the scalar headline fields are taken
    from the latest caller.  The output directory defaults to the working
    directory; CI points ``REPRO_BENCH_JSON_DIR`` at the artifact staging
    area.
    """
    report = _SESSION_REPORTS.setdefault(name, {"name": name, "metrics": {}})
    report["n"] = n
    report["wall_clock_s"] = round(wall_clock_s, 4)
    report["bits"] = bits
    report["metrics"].update(metrics or {})
    if phases:
        report.setdefault("phases", {}).update(phases)
    if anomaly is not None:
        report["anomaly"] = anomaly
    out_dir = os.environ.get("REPRO_BENCH_JSON_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def phases_from_tracer(tracer) -> dict[str, dict[str, float]]:
    """The ``phases`` section of a bench report, from a tracer's spans.

    Delegates to :func:`repro.telemetry.phases_payload` — the same fold the
    sweep harness (`repro.sweeps`) applies to every cell, so bench reports
    and sweep reports stay schema-compatible.
    """
    from repro.telemetry import phases_payload

    return phases_payload(tracer)


def emit_telemetry_jsonl(name: str, tracer) -> str:
    """Write ``TELEMETRY_<name>.jsonl`` next to the bench JSON artifacts.

    The full span + metrics trace of an instrumented benchmark run, in the
    JSONL format ``scripts/telemetry_report.py`` renders; CI uploads these
    alongside the ``BENCH_*.json`` files and smoke-renders one.
    """
    out_dir = os.environ.get("REPRO_BENCH_JSON_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"TELEMETRY_{name}.jsonl")
    tracer.write_jsonl(path)
    return path


#: Per-process accumulator backing :func:`emit_bench_json`.
_SESSION_REPORTS: dict[str, dict] = {}
