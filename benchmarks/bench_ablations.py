"""E9 — ablations of the design choices DESIGN.md calls out.

* REP_COUNTP repetition cap: the paper's constants (ceil(2q), ceil(32q)) are
  what the union bound needs; the ablation shows how accuracy and cost move as
  the practical cap grows toward them.
* Spanning-tree degree bound: the remark after Fact 2.1 — without a
  bounded-degree tree a hub node absorbs its neighbours' traffic.
* Counting-sketch choice: LogLog (the paper's reference [3]) versus
  HyperLogLog as the α-counting black box of Theorem 4.5.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import (
    run_degree_bound_ablation,
    run_repetition_ablation,
)
from repro.analysis.report import format_table
from repro.core.apx_median import ApproximateMedianProtocol
from repro.core.definitions import is_approximate_order_statistic
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology
from repro.workloads.generators import generate_workload


def test_repetition_cap_ablation(benchmark):
    summaries = run_once(
        benchmark,
        run_repetition_ablation,
        144,
        caps=(1, 2, 4, 8),
        trials=10,
        num_registers=64,
    )
    rows = [
        [
            cap,
            s.success_rate,
            round(s.mean_rank_error, 3),
            int(s.mean_max_node_bits),
        ]
        for cap, s in zip((1, 2, 4, 8), summaries)
    ]
    print()
    print(format_table(
        ["repetition cap", "success rate", "mean rank err", "mean max bits/node"],
        rows,
        title="E9a  REP_COUNTP repetition-cap ablation (N = 144)",
    ))
    # Cost grows with the cap; accuracy does not get worse.
    assert summaries[-1].mean_max_node_bits > 2 * summaries[0].mean_max_node_bits
    assert summaries[-1].mean_rank_error <= summaries[0].mean_rank_error + 0.05
    benchmark.extra_info["success_rates"] = [s.success_rate for s in summaries]


def test_degree_bound_ablation(benchmark):
    records = run_once(
        benchmark,
        run_degree_bound_ablation,
        256,
        degree_bounds=(None, 2, 3, 8),
        topology="single_hop",
    )
    rows = [
        [
            record.protocol,
            record.extra["tree_degree"],
            record.extra["tree_height"],
            record.max_node_bits,
        ]
        for record in records
    ]
    print()
    print(format_table(
        ["configuration", "tree degree", "tree height", "max bits/node"],
        rows,
        title="E9b  spanning-tree degree bound (single-hop clique, N = 256)",
    ))
    unbounded = records[0]
    bounded = [r for r in records if r.extra["degree_bound"] == 3][0]
    benchmark.extra_info["unbounded_bits"] = unbounded.max_node_bits
    benchmark.extra_info["degree3_bits"] = bounded.max_node_bits
    # The remark after Fact 2.1: the bounded-degree tree shields the hub.
    assert bounded.max_node_bits < unbounded.max_node_bits / 4


def test_counting_sketch_choice(benchmark):
    items = generate_workload("uniform", 225, max_value=50_000, seed=9)
    network = SensorNetwork.from_items(items, topology=grid_topology(15))

    def sweep():
        results = []
        for sketch in ("loglog", "hyperloglog"):
            successes = 0
            bits = []
            trials = 8
            for trial in range(trials):
                network.reset_ledger()
                outcome_result = ApproximateMedianProtocol(
                    epsilon=0.2, num_registers=64, sketch=sketch, seed=300 + trial
                ).run(network)
                outcome = outcome_result.value
                if is_approximate_order_statistic(
                    items, len(items) / 2, outcome.value,
                    alpha=max(0.5, outcome.alpha_guarantee), beta=0.05,
                ):
                    successes += 1
                bits.append(outcome_result.max_node_bits)
            results.append((sketch, successes / trials, sum(bits) / len(bits)))
        return results

    results = run_once(benchmark, sweep)
    print()
    print(format_table(
        ["counting sketch", "success rate", "mean max bits/node"],
        [list(row) for row in results],
        title="E9c  α-counting black box: LogLog vs HyperLogLog (N = 225)",
    ))
    for sketch, success_rate, _ in results:
        benchmark.extra_info[f"{sketch}_success_rate"] = success_rate
        assert success_rate >= 0.6
