"""Property-based tests (hypothesis) for the core invariants.

These cover the properties the paper's proofs rest on:

* the deterministic median/order-statistic protocol is *always* exact,
  regardless of the input multiset or topology (Theorem 3.2 / Lemma 3.1);
* the rank-function / order-statistic definitions are mutually consistent;
* sketch merging is commutative, associative-in-effect and duplicate
  insensitive (what makes tree aggregation correct);
* the ledger's arithmetic is conserved (sent bits equal received bits).
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.definitions import (
    is_approximate_order_statistic,
    is_order_statistic,
    rank,
    reference_median,
    reference_order_statistic,
)
from repro.core.median import DeterministicMedianProtocol
from repro.core.order_statistics import DeterministicOrderStatisticProtocol
from repro.distinct.exact import ExactDistinctCountProtocol
from repro.network.accounting import CommunicationLedger
from repro.network.simulator import SensorNetwork
from repro.network.spanning_tree import bounded_degree_tree
from repro.network.topology import line_topology, random_geometric_topology
from repro.protocols.aggregates import CountProtocol, MaxProtocol, MinProtocol, SumProtocol
from repro.protocols.countp import CountPredicateProtocol
from repro.protocols.predicates import LessThanPredicate
from repro.sketches.gk_summary import GKSummary
from repro.sketches.loglog import LogLogSketch
from repro.sketches.qdigest import QDigest

_slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

item_lists = st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=60)


def _rank_interval_error(values: list[int], answer: int, target_rank: float) -> float:
    """Distance from ``target_rank`` to the rank interval occupied by ``answer``.

    An answer value ``y`` "covers" every rank in ``[ℓ(y), ℓ(y + 1)]`` (ties sit
    at the same value), so the quantile error of ``y`` is the distance from the
    target rank to that interval, normalised by the multiset size.
    """
    low = rank(values, answer)
    high = rank(values, answer + 1)
    distance = max(0.0, low - target_rank, target_rank - high)
    return distance / len(values)


def _line_network(items: list[int]) -> SensorNetwork:
    return SensorNetwork.from_items(items, topology=line_topology(len(items)))


class TestDefinitionProperties:
    @given(items=item_lists)
    @_slow
    def test_reference_median_satisfies_definition(self, items):
        assert is_order_statistic(items, len(items) / 2.0, reference_median(items))

    @given(items=item_lists, k_fraction=st.floats(min_value=0.01, max_value=1.0))
    @_slow
    def test_reference_order_statistic_satisfies_definition(self, items, k_fraction):
        k = max(1e-9, k_fraction * len(items))
        value = reference_order_statistic(items, k)
        assert is_order_statistic(items, k, value)

    @given(items=item_lists, threshold=st.integers(min_value=-10, max_value=5010))
    @_slow
    def test_rank_is_monotone(self, items, threshold):
        assert rank(items, threshold) <= rank(items, threshold + 1)
        assert 0 <= rank(items, threshold) <= len(items)

    @given(
        items=item_lists,
        alpha=st.floats(min_value=0.0, max_value=0.9),
        beta=st.floats(min_value=0.0, max_value=0.5),
    )
    @_slow
    def test_exact_median_is_approximate_median_for_any_slack(self, items, alpha, beta):
        median = reference_median(items)
        assert is_approximate_order_statistic(
            items, len(items) / 2.0, median, alpha=alpha, beta=beta
        )


class TestProtocolExactness:
    @given(items=item_lists)
    @_slow
    def test_median_protocol_always_exact(self, items):
        network = _line_network(items)
        result = DeterministicMedianProtocol().run(network)
        assert result.value.median == reference_median(items)

    @given(items=item_lists, data=st.data())
    @_slow
    def test_order_statistic_protocol_always_exact(self, items, data):
        k = data.draw(st.integers(min_value=1, max_value=len(items)))
        network = _line_network(items)
        result = DeterministicOrderStatisticProtocol(k=k).run(network)
        assert result.value.value == reference_order_statistic(items, k)

    @given(items=item_lists)
    @_slow
    def test_primitive_aggregates_match_python(self, items):
        network = _line_network(items)
        assert MinProtocol().run(network).value == min(items)
        assert MaxProtocol().run(network).value == max(items)
        assert CountProtocol().run(network).value == len(items)
        assert SumProtocol().run(network).value == sum(items)

    @given(items=item_lists, threshold=st.integers(min_value=0, max_value=5001))
    @_slow
    def test_countp_matches_rank(self, items, threshold):
        network = _line_network(items)
        protocol = CountPredicateProtocol(LessThanPredicate(threshold=threshold))
        assert protocol.run(network).value == rank(items, threshold)

    @given(items=item_lists)
    @_slow
    def test_exact_distinct_count(self, items):
        network = _line_network(items)
        assert ExactDistinctCountProtocol().run(network).value == len(set(items))


class TestSketchProperties:
    @given(
        left=st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
        right=st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
    )
    @_slow
    def test_loglog_merge_commutative_and_idempotent(self, left, right):
        a = LogLogSketch(num_registers=32, salt=9)
        b = LogLogSketch(num_registers=32, salt=9)
        for value in left:
            a.add_item(value)
        for value in right:
            b.add_item(value)
        assert a.merge(b).registers == b.merge(a).registers
        assert a.merge(a).registers == a.registers

    @given(values=st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
    @_slow
    def test_loglog_duplicate_insensitive(self, values):
        once = LogLogSketch(num_registers=32, salt=5)
        twice = LogLogSketch(num_registers=32, salt=5)
        for value in values:
            once.add_item(value)
            twice.add_item(value)
            twice.add_item(value)
        assert once.registers == twice.registers

    @given(
        values=st.lists(st.integers(min_value=0, max_value=1023), min_size=1, max_size=200),
        quantile=st.floats(min_value=0.05, max_value=0.95),
    )
    @_slow
    def test_qdigest_quantile_rank_error_bounded(self, values, quantile):
        digest = QDigest.from_values(values, universe_size=1024, compression=64)
        answer = digest.quantile(quantile)
        error = _rank_interval_error(values, answer, quantile * len(values))
        # Allow one item of slack: with tiny multisets rank granularity is 1/n.
        assert error <= 0.35 + 1.0 / len(values)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=300)
    )
    @_slow
    def test_gk_median_rank_error_bounded(self, values):
        summary = GKSummary.from_values(values, epsilon=0.1)
        answer = summary.median()
        error = _rank_interval_error(values, answer, len(values) / 2)
        # Allow one item of slack: with tiny multisets rank granularity is 1/n.
        assert error <= 0.3 + 1.0 / len(values)

    @given(
        left=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=150),
        right=st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=150),
    )
    @_slow
    def test_gk_merge_count_conserved(self, left, right):
        merged = GKSummary.from_values(left, 0.1).merge(GKSummary.from_values(right, 0.1))
        assert merged.count == len(left) + len(right)
        total_weight = sum(t.g for t in merged.tuples)
        assert total_weight == len(left) + len(right)


class TestInfrastructureProperties:
    @given(
        charges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=0, max_value=512),
            ),
            max_size=60,
        )
    )
    @_slow
    def test_ledger_conservation(self, charges):
        ledger = CommunicationLedger()
        for sender, receiver, bits in charges:
            if sender == receiver:
                continue
            ledger.charge(sender, receiver, bits)
        total_sent = sum(ledger.traffic(node).bits_sent for node in ledger.nodes())
        total_received = sum(ledger.traffic(node).bits_received for node in ledger.nodes())
        assert total_sent == total_received == ledger.total_bits

    @given(
        num_nodes=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=1000),
        max_degree=st.integers(min_value=2, max_value=5),
    )
    @_slow
    def test_bounded_degree_tree_is_always_valid(self, num_nodes, seed, max_degree):
        graph = random_geometric_topology(num_nodes, seed=seed)
        tree = bounded_degree_tree(graph, root=0, max_degree=max_degree)
        tree.validate(graph)
        assert tree.height <= num_nodes
