"""Sensor-network simulation substrate.

This package provides everything the paper's protocols presuppose about the
underlying system (Section 2.1 of the paper): a set of nodes, one of which is
the *root*, each holding a multiset of integer items; a communication
mechanism over which the root can initiate protocols; and an accounting layer
that measures the *individual* communication complexity — the maximum number
of bits transmitted plus received by any single node.
"""

from repro.network.accounting import (
    ArrayLedger,
    CommunicationLedger,
    LedgerMark,
    LedgerSnapshot,
    NodeTraffic,
)
from repro.network.energy import EnergyModel, EnergyReport
from repro.network.flat_tree import FlatTree
from repro.network.message import Message
from repro.network.node import SensorNode
from repro.network.radio import (
    DuplicatingRadio,
    LossyRadio,
    RadioModel,
    ReliableRadio,
)
from repro.network.scheduler import RoundEngine
from repro.network.simulator import EXECUTION_MODES, SensorNetwork
from repro.network.spanning_tree import (
    SpanningTree,
    bfs_tree,
    bounded_degree_tree,
    tree_from_parents,
)
from repro.network.vector_field import VectorField
from repro.network.topology import (
    balanced_tree_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    ring_topology,
    single_hop_topology,
    star_topology,
)

__all__ = [
    "ArrayLedger",
    "CommunicationLedger",
    "LedgerMark",
    "LedgerSnapshot",
    "NodeTraffic",
    "EnergyModel",
    "EnergyReport",
    "FlatTree",
    "Message",
    "SensorNode",
    "RadioModel",
    "ReliableRadio",
    "LossyRadio",
    "DuplicatingRadio",
    "RoundEngine",
    "EXECUTION_MODES",
    "SensorNetwork",
    "VectorField",
    "SpanningTree",
    "bfs_tree",
    "bounded_degree_tree",
    "tree_from_parents",
    "balanced_tree_topology",
    "grid_topology",
    "line_topology",
    "random_geometric_topology",
    "ring_topology",
    "single_hop_topology",
    "star_topology",
]
