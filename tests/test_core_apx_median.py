"""Tests for the approximate median / order statistics of Fig. 2 (Theorems 4.5/4.6)."""

import pytest

from repro.core.apx_median import (
    ApproximateMedianProtocol,
    ApproximateOrderStatisticProtocol,
)
from repro.core.definitions import (
    is_approximate_order_statistic,
    reference_median,
)
from repro.core.median import DeterministicMedianProtocol
from repro.core.rep_count import RepetitionPolicy
from repro.exceptions import ConfigurationError, EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology
from repro.workloads.generators import generate_workload


def _network(workload="uniform", n=144, side=12, max_value=50_000, seed=1):
    items = generate_workload(workload, n, max_value=max_value, seed=seed)
    return SensorNetwork.from_items(items, topology=grid_topology(side)), items


class TestConfiguration:
    def test_epsilon_bounds(self):
        with pytest.raises(ConfigurationError):
            ApproximateMedianProtocol(epsilon=0.0)
        with pytest.raises(Exception):
            ApproximateMedianProtocol(epsilon=1.5)

    def test_exactly_one_target(self):
        with pytest.raises(ConfigurationError):
            ApproximateOrderStatisticProtocol(quantile=0.5, k=10)
        with pytest.raises(ConfigurationError):
            ApproximateOrderStatisticProtocol(quantile=None, k=None)

    def test_invalid_quantile(self):
        with pytest.raises(ConfigurationError):
            ApproximateOrderStatisticProtocol(quantile=0.0)

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            ApproximateOrderStatisticProtocol(quantile=None, k=-3)

    def test_sigma_reflects_register_count(self):
        assert (
            ApproximateMedianProtocol(num_registers=256).sigma
            < ApproximateMedianProtocol(num_registers=16).sigma
        )


class TestAccuracy:
    def test_output_is_alpha_beta_median_with_good_sketch(self):
        network, items = _network(seed=2)
        protocol = ApproximateMedianProtocol(epsilon=0.2, num_registers=256, seed=5)
        outcome = protocol.run(network).value
        assert is_approximate_order_statistic(
            items,
            len(items) / 2.0,
            outcome.value,
            alpha=outcome.alpha_guarantee,
            beta=0.05,
        )

    def test_success_rate_across_trials(self):
        network, items = _network(seed=3)
        successes = 0
        trials = 10
        for trial in range(trials):
            protocol = ApproximateMedianProtocol(
                epsilon=0.2, num_registers=256, seed=100 + trial
            )
            outcome = protocol.run(network).value
            if is_approximate_order_statistic(
                items, len(items) / 2.0, outcome.value,
                alpha=outcome.alpha_guarantee, beta=0.05,
            ):
                successes += 1
        assert successes >= 8  # target is >= (1 - epsilon) = 0.8 of trials

    def test_value_is_near_true_median_in_value_terms(self):
        network, items = _network(workload="uniform", seed=4)
        protocol = ApproximateMedianProtocol(epsilon=0.2, num_registers=256, seed=9)
        outcome = protocol.run(network).value
        true_median = reference_median(items)
        assert abs(outcome.value - true_median) / max(items) < 0.25

    def test_all_equal_input(self):
        items = [77] * 64
        network = SensorNetwork.from_items(items, topology=grid_topology(8))
        outcome = ApproximateMedianProtocol(num_registers=64, seed=1).run(network).value
        assert outcome.value == 77

    def test_two_value_input(self):
        items = [10] * 50 + [1000] * 14
        network = SensorNetwork.from_items(items, topology=grid_topology(8))
        outcome = ApproximateMedianProtocol(num_registers=256, seed=2).run(network).value
        # Median is 10; allow the beta slack of the guarantee (value error).
        assert outcome.value <= 1000
        assert is_approximate_order_statistic(
            items, 32.0, outcome.value, alpha=outcome.alpha_guarantee, beta=0.05
        )

    def test_order_statistic_quantile_target(self):
        network, items = _network(seed=5)
        protocol = ApproximateOrderStatisticProtocol(
            epsilon=0.2, quantile=0.25, num_registers=256, seed=11
        )
        outcome = protocol.run(network).value
        assert is_approximate_order_statistic(
            items, 0.25 * len(items), outcome.value,
            alpha=max(0.3, outcome.alpha_guarantee), beta=0.1,
        )

    def test_order_statistic_absolute_k_target(self):
        network, items = _network(seed=6)
        protocol = ApproximateOrderStatisticProtocol(
            epsilon=0.2, quantile=None, k=30, num_registers=256, seed=13
        )
        outcome = protocol.run(network).value
        assert is_approximate_order_statistic(
            items, 30, outcome.value,
            alpha=max(0.4, outcome.alpha_guarantee), beta=0.1,
        )

    def test_empty_network_rejected(self):
        network = SensorNetwork.from_items([1], topology=line_topology(1))
        network.clear_items()
        with pytest.raises(EmptyNetworkError):
            ApproximateMedianProtocol().run(network)


class TestOutcomeMetadata:
    def test_outcome_fields(self):
        network, items = _network(seed=7)
        outcome = ApproximateMedianProtocol(
            epsilon=0.25, num_registers=64, seed=3
        ).run(network).value
        assert outcome.epsilon == 0.25
        assert outcome.sigma == pytest.approx(1.30 / 8.0)
        assert outcome.alpha_guarantee == pytest.approx(3 * outcome.sigma)
        assert outcome.minimum <= outcome.value or outcome.halted_early
        assert outcome.probes >= 1
        assert outcome.n_estimate > 0

    def test_probe_count_bounded_by_log_spread(self):
        network, items = _network(seed=8)
        outcome = ApproximateMedianProtocol(num_registers=64, seed=4).run(network).value
        spread = outcome.maximum - outcome.minimum
        assert outcome.iterations <= spread.bit_length() + 1


class TestComplexity:
    def test_paper_policy_uses_more_communication_than_practical(self):
        network, _ = _network(n=36, side=6, seed=9)
        practical = ApproximateMedianProtocol(
            epsilon=0.5, num_registers=16, seed=1,
            repetition_policy=RepetitionPolicy.practical(cap=2),
        ).run(network)
        network.reset_ledger()
        heavier = ApproximateMedianProtocol(
            epsilon=0.5, num_registers=16, seed=1,
            repetition_policy=RepetitionPolicy.practical(cap=8),
        ).run(network)
        assert heavier.max_node_bits > practical.max_node_bits

    def test_per_node_bits_essentially_flat_in_n(self):
        costs = []
        for side in (6, 12, 18):
            items = generate_workload("uniform", side * side, max_value=1 << 16, seed=10)
            network = SensorNetwork.from_items(items, topology=grid_topology(side))
            result = ApproximateMedianProtocol(
                epsilon=0.25, num_registers=16, seed=2,
                repetition_policy=RepetitionPolicy.practical(cap=2),
            ).run(network)
            costs.append(result.max_node_bits)
        # Item count grows 9x while the domain stays fixed; the cost should
        # stay within a small constant factor (it depends on log X̄ and m only).
        assert max(costs) <= 1.6 * min(costs)

    def test_early_halt_saves_probes(self):
        # With a huge tolerance band the very first probe already lands inside
        # the acceptance region, so the algorithm halts early.
        network, _ = _network(seed=11)
        outcome = ApproximateMedianProtocol(
            epsilon=0.5, num_registers=4, seed=5
        ).run(network).value
        assert outcome.halted_early or outcome.probes <= outcome.iterations + 1


class TestAgainstDeterministic:
    def test_approximate_never_leaves_value_range(self):
        for seed in range(5):
            network, items = _network(seed=20 + seed)
            outcome = ApproximateMedianProtocol(
                num_registers=64, seed=seed
            ).run(network).value
            assert min(items) <= outcome.value <= max(items) or outcome.halted_early

    def test_agrees_with_deterministic_on_wide_spread_input(self):
        items = [i * 1000 for i in range(64)]
        network = SensorNetwork.from_items(items, topology=grid_topology(8))
        exact = DeterministicMedianProtocol().run(network).value.median
        network.reset_ledger()
        approx = ApproximateMedianProtocol(num_registers=256, seed=6).run(network).value
        assert abs(approx.value - exact) / max(items) < 0.25
