"""Tests for the argument-validation helpers."""

import pytest

from repro._util.validation import (
    require_integer,
    require_non_negative,
    require_positive,
    require_probability,
)
from repro.exceptions import ConfigurationError


class TestRequireInteger:
    def test_accepts_int(self):
        assert require_integer(7, "x") == 7

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_integer(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            require_integer(1.5, "x")

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            require_integer("3", "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ConfigurationError, match="widget"):
            require_integer(None, "widget")


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1, -100])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError):
            require_positive(value, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-1, "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 0])
    def test_accepts_valid(self, value):
        assert require_probability(value, "p") == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2, -5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            require_probability(value, "p")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            require_probability(True, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            require_probability("0.5", "p")
