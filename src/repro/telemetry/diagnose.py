"""Causal diagnosis of telemetry traces: *why* did epoch 37 cost so much?

The diagnosis engine closes the loop the flight recorder and the
attribution sink open: it ingests one TELEMETRY JSONL trace (spans +
``"event"`` lines + ``"attribution"`` lines, as written by
:meth:`~repro.telemetry.SpanTracer.write_jsonl`), builds per-epoch series
(bits, answer error, detection latency), flags anomalous epochs with a
**rolling median / MAD** detector — robust to the fault-heavy regimes
where means and variances are useless — and for each flagged epoch walks
the recorded ``cause_event_id`` chain backwards to a root cause, naming
the top per-node hotspot along the way::

    epoch 6: bits 18432 (baseline 512.0, 35.9x MAD)
      RootCrash at e6 -> election 35->34 -> adoption of 12 nodes
      top hotspot: node 34 (61% of epoch node-bits)

The same detector doubles as the CI trajectory gate: ``scripts/diagnose.py
--strict`` fails when a flagged epoch has *no* attributable cause chain
(a cost spike nothing in the flight ring explains), and
:func:`verdict` summarises the run for ``BENCH_*.json`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Event kinds ordered from most to least *explanatory*: when several
#: events share a flagged epoch, the chain is anchored at the highest-
#: priority one (a rebuild fallback explains a spike better than the
#: suppression flip it caused).
KIND_PRIORITY = (
    "repair.rebuild",
    "election",
    "repair.adoption",
    "cache.evict",
    "delta.burst",
    "detect.miss",
    "suppression.flip",
    "fault.injected",
)

_KIND_RANK = {kind: rank for rank, kind in enumerate(KIND_PRIORITY)}


def _median(ordered: list[float]) -> float:
    size = len(ordered)
    mid = size // 2
    if size % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class Anomaly:
    """One flagged epoch of one metric series, with its causal chain."""

    epoch: int
    metric: str
    value: float
    #: Trailing-window median the value was compared against.
    baseline: float
    #: Robust z-score: ``|value - baseline| / max(MAD, floor)``.
    deviation: float
    #: Causal chain, root cause first, as raw event dicts.
    chain: list[dict] = field(default_factory=list)
    #: ``(node, bits, share)`` of the epoch's hottest node, if attributed.
    hotspot: tuple[int, int, float] | None = None

    @property
    def attributed(self) -> bool:
        """Whether a cause chain was found for this anomaly."""
        return bool(self.chain)

    @property
    def root_cause(self) -> dict | None:
        """The chain's first event — ideally a ``fault.injected``."""
        return self.chain[0] if self.chain else None

    def render(self) -> str:
        """The human "why" line(s) for this anomaly."""
        head = (
            f"epoch {self.epoch}: {self.metric} {self.value:g} "
            f"(baseline {self.baseline:g}, {self.deviation:.1f}x MAD)"
        )
        if not self.chain:
            return head + "\n  no attributable cause chain in the flight ring"
        lines = [head, "  " + " -> ".join(_describe(e) for e in self.chain)]
        if self.hotspot is not None:
            node, bits, share = self.hotspot
            lines.append(
                f"  top hotspot: node {node} ({bits} bits, "
                f"{share:.0%} of epoch node-bits)"
            )
        return "\n".join(lines)


def _describe(event: dict) -> str:
    """One phrase per event for the chain arrow line."""
    kind = event.get("kind", "?")
    node = event.get("node")
    epoch = event.get("epoch")
    attrs = event.get("attributes", {})
    at = f" at e{epoch}" if epoch is not None else ""
    if kind == "fault.injected":
        fault = attrs.get("fault", "fault")
        where = f"(node {node})" if node is not None else ""
        if "radius" in attrs:
            where = f"(center {node}, radius {attrs['radius']})"
        if "count" in attrs:
            where = f"({attrs['count']} nodes)"
        return f"{fault}{where}{at}"
    if kind == "detect.miss":
        latency = attrs.get("latency")
        tail = f" after {latency} epoch(s)" if latency is not None else ""
        return f"heartbeat miss on node {node}{tail}{at}"
    if kind == "repair.adoption":
        size = attrs.get("unit_size")
        tail = f" of {size} node(s)" if size is not None else ""
        return f"adoption{tail} via node {node}{at}"
    if kind == "repair.rebuild":
        size = attrs.get("component_size")
        tail = f" over {size} node(s)" if size is not None else ""
        return f"rebuild fallback{tail}{at}"
    if kind == "election":
        old = attrs.get("old_root")
        return f"election {old}->{node}{at}"
    if kind == "cache.evict":
        count = attrs.get("count", 1)
        site = attrs.get("site", "")
        tail = f" [{site}]" if site else ""
        return f"{count} cache eviction(s){tail}{at}"
    if kind == "delta.burst":
        return f"delta burst{at}"
    if kind == "suppression.flip":
        direction = attrs.get("direction", "flipped")
        return f"suppression {direction}{at}"
    return f"{kind}{at}"


def rolling_mad_anomalies(
    series: dict[int, float],
    *,
    window: int = 5,
    threshold: float = 4.0,
    min_history: int = 3,
) -> list[tuple[int, float, float, float]]:
    """Flag points far above their trailing median, in MAD units.

    For each epoch (ascending), the baseline is the median of up to
    ``window`` *preceding* values and the scale is their median absolute
    deviation.  The effective MAD is floored at ``max(1.0,
    0.05 * |baseline|, 0.05 * max(recent))`` — the trailing-max term keeps
    a periodic low/high series (heartbeat sweeps every other epoch) from
    flagging its every high phase once a real spike sits in the window.
    Returns ``(epoch, value, baseline, deviation)`` for points with
    ``deviation > threshold``, needing at least ``min_history`` prior
    points.  Only *upward* excursions flag: cheap epochs are good news,
    not anomalies.
    """
    flagged = []
    epochs = sorted(series)
    history: list[float] = []
    for epoch in epochs:
        value = series[epoch]
        if len(history) >= min_history:
            recent = sorted(history[-window:])
            baseline = _median(recent)
            mad = _median(sorted(abs(v - baseline) for v in recent))
            scale = max(mad, 1.0, 0.05 * abs(baseline), 0.05 * recent[-1])
            deviation = (value - baseline) / scale
            if deviation > threshold:
                flagged.append((epoch, value, baseline, deviation))
        history.append(value)
    return flagged


def build_series(records: Iterable[dict]) -> dict[str, dict[int, float]]:
    """Per-epoch metric series out of raw trace records.

    ``bits`` sums ``epoch`` spans per their ``epoch`` attribute (summing
    tolerates traces holding several runs over the same epoch numbers);
    ``detect.latency`` takes the worst heartbeat-miss latency per epoch.
    Unknown record types pass through untouched.
    """
    bits: dict[int, float] = {}
    latency: dict[int, float] = {}
    for record in records:
        rtype = record.get("type")
        if rtype == "span" and record.get("name") == "epoch":
            epoch = record.get("attributes", {}).get("epoch")
            if epoch is not None:
                epoch = int(epoch)
                bits[epoch] = bits.get(epoch, 0.0) + float(record.get("bits", 0))
        elif rtype == "event" and record.get("kind") == "detect.miss":
            epoch = record.get("epoch")
            value = record.get("attributes", {}).get("latency")
            if epoch is not None and value is not None:
                epoch = int(epoch)
                latency[epoch] = max(latency.get(epoch, 0.0), float(value))
    series: dict[str, dict[int, float]] = {}
    if bits:
        series["bits"] = bits
    if latency:
        series["detect.latency"] = latency
    return series


def _chain_for_epoch(
    epoch: int,
    events_by_epoch: dict[int, list[dict]],
    events_by_id: dict[int, dict],
    *,
    horizon: int,
) -> list[dict]:
    """Pick the epoch's most explanatory event and walk its causes back.

    Looks at the flagged epoch first, then up to ``horizon`` epochs back
    (a spike often pays for a fault injected earlier — detection latency
    is a real cost in this pipeline).  Returns the chain root-first, or
    ``[]`` when nothing in the ring explains the epoch.
    """
    terminal = None
    for lookback in range(horizon + 1):
        candidates = events_by_epoch.get(epoch - lookback)
        if candidates:
            terminal = min(
                candidates,
                key=lambda e: _KIND_RANK.get(e.get("kind"), len(KIND_PRIORITY)),
            )
            break
    if terminal is None:
        return []
    chain = [terminal]
    seen = {terminal.get("event_id")}
    cause_id = terminal.get("cause_event_id")
    while cause_id is not None and cause_id not in seen:
        cause = events_by_id.get(cause_id)
        if cause is None:
            break
        chain.append(cause)
        seen.add(cause_id)
        cause_id = cause.get("cause_event_id")
    chain.reverse()
    return chain


@dataclass
class Diagnosis:
    """The full result: anomalies (with chains), series, raw records."""

    anomalies: list[Anomaly]
    series: dict[str, dict[int, float]]
    events: list[dict]
    attribution: list[dict]

    @property
    def unattributed(self) -> list[Anomaly]:
        """Flagged epochs with no cause chain — the strict-gate failures."""
        return [a for a in self.anomalies if not a.attributed]

    def worst(self) -> Anomaly | None:
        """The most deviant anomaly, or ``None`` on a clean run."""
        if not self.anomalies:
            return None
        return max(self.anomalies, key=lambda a: a.deviation)

    def render(self) -> str:
        """The complete "why" report."""
        if not self.anomalies:
            return "no anomalous epochs: every metric stayed within MAD bounds"
        blocks = [anomaly.render() for anomaly in self.anomalies]
        summary = (
            f"{len(self.anomalies)} anomalous epoch-metric(s), "
            f"{len(self.unattributed)} unattributed"
        )
        return "\n".join([summary, ""] + blocks)


def _hotspot_from_attribution(
    epoch: int, attribution_by_epoch: dict[int, dict]
) -> tuple[int, int, float] | None:
    record = attribution_by_epoch.get(epoch)
    if record is None:
        return None
    hotspots = record.get("hotspots") or []
    if not hotspots:
        return None
    node, bits = hotspots[0]
    node_bits = record.get("node_bits") or 0
    share = bits / node_bits if node_bits else 0.0
    return int(node), int(bits), share


def diagnose(
    records: Iterable[dict],
    *,
    window: int = 5,
    threshold: float = 4.0,
    horizon: int = 3,
) -> Diagnosis:
    """Run the full pipeline: series → MAD detector → causal chains.

    ``records`` is an iterable of parsed trace dicts (from
    :func:`~repro.telemetry.read_jsonl` or
    :meth:`~repro.telemetry.SpanTracer.iter_dicts`).
    """
    records = list(records)
    events = [r for r in records if r.get("type") == "event"]
    attribution = [r for r in records if r.get("type") == "attribution"]
    series = build_series(records)

    events_by_epoch: dict[int, list[dict]] = {}
    events_by_id: dict[int, dict] = {}
    for event in events:
        if event.get("epoch") is not None:
            events_by_epoch.setdefault(int(event["epoch"]), []).append(event)
        if event.get("event_id") is not None:
            events_by_id[int(event["event_id"])] = event
    attribution_by_epoch = {
        int(r["epoch"]): r for r in attribution if r.get("epoch") is not None
    }

    anomalies = []
    for metric, points in series.items():
        for epoch, value, baseline, deviation in rolling_mad_anomalies(
            points, window=window, threshold=threshold
        ):
            anomalies.append(
                Anomaly(
                    epoch=epoch,
                    metric=metric,
                    value=value,
                    baseline=baseline,
                    deviation=deviation,
                    chain=_chain_for_epoch(
                        epoch, events_by_epoch, events_by_id, horizon=horizon
                    ),
                    hotspot=_hotspot_from_attribution(
                        epoch, attribution_by_epoch
                    ),
                )
            )
    anomalies.sort(key=lambda a: (a.epoch, a.metric))
    return Diagnosis(
        anomalies=anomalies,
        series=series,
        events=events,
        attribution=attribution,
    )


def verdict(diagnosis: Diagnosis) -> dict[str, Any]:
    """The anomaly-detector summary a ``BENCH_*.json`` report embeds."""
    root_kinds: dict[str, int] = {}
    for anomaly in diagnosis.anomalies:
        root = anomaly.root_cause
        if root is not None:
            kind = root.get("kind", "?")
            root_kinds[kind] = root_kinds.get(kind, 0) + 1
    return {
        "anomalous_epochs": sorted({a.epoch for a in diagnosis.anomalies}),
        "anomalies": len(diagnosis.anomalies),
        "attributed": sum(1 for a in diagnosis.anomalies if a.attributed),
        "unattributed": len(diagnosis.unattributed),
        "root_cause_kinds": root_kinds,
    }
