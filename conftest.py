"""Pytest path setup.

Makes the ``src`` layout importable when the package has not been installed
(e.g. on a machine without network access for ``pip install -e .``).  When the
package *is* installed this is a harmless no-op because the installed copy
shadows nothing — both point at the same source tree.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(_ROOT, "src")
for _path in (_SRC, _ROOT):
    if _path not in sys.path:
        sys.path.insert(0, _path)
