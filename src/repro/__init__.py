"""repro — reproduction of Patt-Shamir's sensor-network aggregate queries.

This package reproduces, as a runnable Python library, the protocols and
claims of:

    Boaz Patt-Shamir, "A note on efficient aggregate queries in sensor
    networks", PODC 2004 (preliminary version); Theoretical Computer Science
    370 (2007) 254-264 (full version).

Quick start::

    from repro import SensorNetwork, DeterministicMedianProtocol

    readings = [17, 4, 23, 8, 15, 42, 16, 9, 30]
    network = SensorNetwork.from_items(readings, topology="grid")
    result = DeterministicMedianProtocol().run(network)
    print(result.value.median, result.max_node_bits)

For continuous monitoring — the same aggregates maintained every epoch over
drifting readings — use the streaming engine::

    from repro import ContinuousQueryEngine, MedianQuery, CountQuery, run_stream
    from repro.workloads import DriftStream

    stream = DriftStream(num_nodes=100, seed=0)
    network = SensorNetwork.from_items([0] * 100, topology="grid")
    engine = ContinuousQueryEngine(network, epsilon=0.1)
    engine.register("median", MedianQuery(universe_size=1 << 16))
    engine.register("count", CountQuery())
    trace = run_stream(engine, stream, epochs=50)
    print(engine.answers(), trace.total_bits)

Protocols execute over a pluggable two-path core: the default *batched* path
plans whole tree levels and charges them to the ledger in bulk (scaling the
simulator to 100k-node fields), while the *per-edge* reference path sends one
edge at a time.  Both are bit-for-bit ledger-equivalent; select with
``SensorNetwork(..., execution="per-edge")`` when you want the reference
behaviour, e.g. for wall-clock comparisons (see
``benchmarks/bench_scale.py``).

Deployments also lose nodes and links: the fault-tolerance engine in
:mod:`repro.faults` injects crashes, rejoins, link drops and regional
outages, heals the spanning tree incrementally (orphaned subtrees re-attach
through local adoption instead of a full rebuild) and re-synchronises only
the summaries along repaired paths — see
:func:`~repro.faults.run_faulty_stream` and ``benchmarks/bench_faults.py``
for the measured repair-vs-rebuild savings.  Even the query root may die:
a :class:`~repro.faults.RootCrash` triggers a charged
:class:`~repro.faults.RootElection` (highest surviving id over the alive
component), the tree re-roots at the winner and the caches migrate along
the reversed root path — ``docs/FAULTS.md`` walks the whole pipeline.

Many clients can share one network: the tenancy layer in
:mod:`repro.tenancy` deduplicates overlapping standing queries into a
shared summary plan (:class:`~repro.tenancy.MultiTenantEngine`), with
gold / standard / best-effort admission tiers under a bits budget and a
per-tenant ledger split whose columns sum exactly to the shared plan's
charged bits — ``docs/MULTITENANT.md`` has the planner model and
``benchmarks/bench_multitenant.py`` the measured ≥5x dedup savings.

Every phase of that pipeline is observable: install a
:class:`~repro.telemetry.SpanTracer` (``network.telemetry = SpanTracer()``
or ``run_faulty_stream(..., telemetry=SpanTracer())``) and each epoch emits
nested, timed spans carrying their exact ledger deltas, alongside a
:class:`~repro.telemetry.MetricsRegistry` of counters/gauges/histograms
with Prometheus-text and markdown exporters — ``docs/TELEMETRY.md`` has the
span taxonomy and the metric catalogue.  When no tracer is installed the
instrumentation is free: the default recorder is a shared no-op.

The top-level namespace re-exports the pieces most users need: the network
simulator with its batched tree primitives, the deterministic and approximate
median protocols, the primitive aggregation protocols, the continuous-query
streaming engine and the verification helpers.  Substrates (sketches,
baselines, workloads, the experiment harness) live in their own subpackages.
"""

from repro.core import (
    ApproximateMedianProtocol,
    ApproximateOrderStatisticProtocol,
    DeterministicMedianProtocol,
    DeterministicOrderStatisticProtocol,
    PolyloglogMedianProtocol,
    RepetitionPolicy,
    is_approximate_order_statistic,
    is_median,
    is_order_statistic,
    rank,
    reference_median,
    reference_order_statistic,
)
from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    EmptyNetworkError,
    ProtocolError,
    ReproError,
    TopologyError,
)
from repro.faults import (
    ElectionResult,
    FaultEngine,
    FaultScript,
    FaultTrace,
    HeartbeatDetector,
    LinkDrop,
    LinkRestore,
    NodeCrash,
    NodeRejoin,
    RegionalOutage,
    RepairResult,
    RootCrash,
    RootElection,
    TreeRepair,
    run_faulty_stream,
)
from repro.network import (
    EXECUTION_MODES,
    CommunicationLedger,
    EnergyModel,
    FlatTree,
    LedgerMark,
    SensorNetwork,
)
from repro.protocols import (
    ApproxCountProtocol,
    AverageProtocol,
    CountPredicateProtocol,
    CountProtocol,
    LessThanPredicate,
    MaxProtocol,
    MinProtocol,
    SumProtocol,
    broadcast,
    convergecast,
    epoch_convergecast,
)
from repro.streaming import (
    ContinuousQueryEngine,
    CountQuery,
    DistinctCountQuery,
    EpochRecord,
    MedianQuery,
    PredicateCountQuery,
    QuantileQuery,
    RecomputeEngine,
    StreamingTrace,
    run_stream,
)
from repro.telemetry import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Span,
    SpanTracer,
    TelemetryRecorder,
)
from repro.tenancy import (
    AdmissionDecision,
    MultiTenantEngine,
    QueryPlanner,
    TenantLedgerSplit,
)

__version__ = "1.10.0"

__all__ = [
    "ApproximateMedianProtocol",
    "ApproximateOrderStatisticProtocol",
    "DeterministicMedianProtocol",
    "DeterministicOrderStatisticProtocol",
    "PolyloglogMedianProtocol",
    "RepetitionPolicy",
    "is_approximate_order_statistic",
    "is_median",
    "is_order_statistic",
    "rank",
    "reference_median",
    "reference_order_statistic",
    "BudgetExceededError",
    "ConfigurationError",
    "EmptyNetworkError",
    "ProtocolError",
    "ReproError",
    "TopologyError",
    "CommunicationLedger",
    "EnergyModel",
    "EXECUTION_MODES",
    "FlatTree",
    "LedgerMark",
    "SensorNetwork",
    "broadcast",
    "convergecast",
    "epoch_convergecast",
    "ApproxCountProtocol",
    "AverageProtocol",
    "CountPredicateProtocol",
    "CountProtocol",
    "LessThanPredicate",
    "MaxProtocol",
    "MinProtocol",
    "SumProtocol",
    "FaultEngine",
    "HeartbeatDetector",
    "ElectionResult",
    "RootCrash",
    "RootElection",
    "FaultScript",
    "FaultTrace",
    "NodeCrash",
    "NodeRejoin",
    "LinkDrop",
    "LinkRestore",
    "RegionalOutage",
    "RepairResult",
    "TreeRepair",
    "run_faulty_stream",
    "ContinuousQueryEngine",
    "RecomputeEngine",
    "run_stream",
    "CountQuery",
    "PredicateCountQuery",
    "QuantileQuery",
    "MedianQuery",
    "DistinctCountQuery",
    "EpochRecord",
    "StreamingTrace",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "SpanTracer",
    "TelemetryRecorder",
    "AdmissionDecision",
    "MultiTenantEngine",
    "QueryPlanner",
    "TenantLedgerSplit",
    "__version__",
]
