"""q-digest quantile sketch.

The q-digest (Shrivastava et al., SenSys 2004) is the other standard
sensor-network quantile summary of the paper's era: a set of dyadic ranges
over the value domain ``[0, 2^k)`` with counts, compressed so that at most
``O(k / compression)`` ranges survive.  Summaries merge by adding counts of
identical ranges and recompressing, which makes them convenient for in-network
aggregation; the rank error after aggregation is ``O(log(max value) / k)`` of
the total count.

It is used by :mod:`repro.baselines.qdigest_median` as a second
summary-shipping baseline alongside Greenwald–Khanna.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro._util.bits import fixed_width_bits
from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError


@dataclass
class QDigest:
    """A q-digest over the integer domain ``[0, universe_size)``.

    Nodes of the implicit binary tree over the domain are identified by the
    usual heap numbering: node 1 covers the whole domain, node ``2i`` and
    ``2i + 1`` cover the two halves of node ``i``'s range.  ``counts`` maps
    node id to the count stored there.
    """

    universe_size: int
    compression: int = 64
    counts: dict[int, int] = field(default_factory=dict)
    total: int = 0

    def __post_init__(self) -> None:
        require_positive(self.universe_size, "universe_size")
        require_positive(self.compression, "compression")
        # Round the universe up to a power of two so the dyadic tree is full.
        self._levels = max(1, math.ceil(math.log2(self.universe_size)))
        self._padded_universe = 1 << self._levels

    # ------------------------------------------------------------------ #
    # Tree-node helpers
    # ------------------------------------------------------------------ #
    def _leaf_id(self, value: int) -> int:
        if not 0 <= value < self.universe_size:
            raise ConfigurationError(
                f"value {value} outside universe [0, {self.universe_size})"
            )
        return self._padded_universe + value

    def _node_range(self, node_id: int) -> tuple[int, int]:
        """Closed-open value range [lo, hi) covered by a tree node."""
        level = node_id.bit_length() - 1
        span = self._padded_universe >> level
        offset = (node_id - (1 << level)) * span
        return offset, offset + span

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(
        cls, values: Iterable[int], universe_size: int, compression: int = 64
    ) -> "QDigest":
        digest = cls(universe_size=universe_size, compression=compression)
        for value in values:
            digest.add(value)
        digest.compress()
        return digest

    def add(self, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``value``."""
        require_positive(count, "count")
        leaf = self._leaf_id(value)
        self.counts[leaf] = self.counts.get(leaf, 0) + count
        self.total += count

    def compress(self) -> None:
        """Push small counts upward so at most O(compression · log U) nodes remain."""
        if self.total == 0:
            return
        threshold = self.total / self.compression
        for level in range(self._levels, 0, -1):
            start = 1 << level
            end = 1 << (level + 1)
            for node_id in [n for n in list(self.counts) if start <= n < end]:
                count = self.counts.get(node_id, 0)
                sibling = node_id ^ 1
                parent = node_id >> 1
                sibling_count = self.counts.get(sibling, 0)
                parent_count = self.counts.get(parent, 0)
                if count + sibling_count + parent_count < threshold:
                    merged = count + sibling_count + parent_count
                    self.counts.pop(node_id, None)
                    self.counts.pop(sibling, None)
                    if merged:
                        self.counts[parent] = merged
                    else:
                        self.counts.pop(parent, None)

    # ------------------------------------------------------------------ #
    # Combination and queries
    # ------------------------------------------------------------------ #
    def merge(self, other: "QDigest") -> "QDigest":
        """Add counts node-wise and recompress."""
        if other.universe_size != self.universe_size:
            raise ConfigurationError("cannot merge digests over different universes")
        merged = QDigest(
            universe_size=self.universe_size,
            compression=max(self.compression, other.compression),
        )
        merged.counts = dict(self.counts)
        for node_id, count in other.counts.items():
            merged.counts[node_id] = merged.counts.get(node_id, 0) + count
        merged.total = self.total + other.total
        merged.compress()
        return merged

    def quantile(self, fraction: float) -> int:
        """Return a value whose rank approximates ``fraction * total``."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
        if self.total == 0:
            raise ConfigurationError("cannot query an empty digest")
        target = fraction * self.total
        # Sort stored nodes by the upper end of their range (post-order style),
        # accumulate counts and report the node whose range crosses the target.
        ordered = sorted(
            self.counts.items(), key=lambda item: (self._node_range(item[0])[1], item[0])
        )
        cumulative = 0
        for node_id, count in ordered:
            cumulative += count
            if cumulative >= target:
                low, high = self._node_range(node_id)
                return min(high - 1, self.universe_size - 1)
        last_low, last_high = self._node_range(ordered[-1][0])
        return min(last_high - 1, self.universe_size - 1)

    def median(self) -> int:
        return self.quantile(0.5)

    # ------------------------------------------------------------------ #
    # Delta encoding (streaming)
    # ------------------------------------------------------------------ #
    def count_distance(self, other: "QDigest") -> int:
        """L1 distance between the stored counts of two digests.

        Summing ``|c_self(v) − c_other(v)|`` over the union of stored dyadic
        nodes upper-bounds how much any rank estimate can move when one digest
        is substituted for the other, which is exactly the quantity the
        streaming engine's ε-suppression rule must bound.
        """
        if other.universe_size != self.universe_size:
            raise ConfigurationError(
                "cannot compare digests over different universes"
            )
        keys = set(self.counts) | set(other.counts)
        return sum(
            abs(self.counts.get(key, 0) - other.counts.get(key, 0)) for key in keys
        )

    def changed_entries(self, other: "QDigest") -> int:
        """Number of dyadic nodes whose stored count differs from ``other``'s."""
        if other.universe_size != self.universe_size:
            raise ConfigurationError(
                "cannot compare digests over different universes"
            )
        keys = set(self.counts) | set(other.counts)
        return sum(
            1 for key in keys if self.counts.get(key, 0) != other.counts.get(key, 0)
        )

    def delta_bits(self, previous: "QDigest") -> int:
        """Bits to transmit this digest to a receiver holding ``previous``.

        Only the (node id, new count) pairs that changed are shipped, plus one
        count-sized field carrying the new total; unchanged entries are free.
        This is what makes per-epoch retransmission proportional to *change*
        rather than summary size.
        """
        node_id_bits = fixed_width_bits(2 * self._padded_universe)
        count_bits = fixed_width_bits(max(self.total, previous.total, 1))
        return self.changed_entries(previous) * (node_id_bits + count_bits) + count_bits

    @property
    def size(self) -> int:
        """Number of stored (range, count) pairs."""
        return len(self.counts)

    def serialized_bits(self) -> int:
        """Bits to transmit: each entry is a node id plus a count."""
        node_id_bits = fixed_width_bits(2 * self._padded_universe)
        count_bits = fixed_width_bits(max(self.total, 1))
        return self.size * (node_id_bits + count_bits) + count_bits
