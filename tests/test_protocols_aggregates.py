"""Tests for broadcast, convergecast and the TAG-style aggregates (Fact 2.1)."""

import math

import pytest

from repro.exceptions import EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology, single_hop_topology
from repro.protocols.aggregates import (
    AverageProtocol,
    CountProtocol,
    MaxProtocol,
    MinProtocol,
    SumProtocol,
)
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.workloads.generators import uniform_values


class TestBroadcast:
    def test_reaches_every_node(self, small_network):
        delivered = broadcast(small_network, {"q": 1}, 16)
        assert set(delivered) == set(small_network.node_ids())

    def test_every_tree_edge_charged_once(self, small_network):
        broadcast(small_network, "x", 10)
        assert small_network.ledger.total_bits == 10 * (small_network.num_nodes - 1)

    def test_leaf_cost_is_receive_only(self, line_network):
        broadcast(line_network, "x", 10)
        last = line_network.num_nodes - 1
        assert line_network.ledger.traffic(last).bits_sent == 0
        assert line_network.ledger.traffic(last).bits_received == 10

    def test_rounds_equal_tree_height(self, line_network):
        broadcast(line_network, "x", 10)
        assert line_network.ledger.rounds == line_network.tree.height


class TestConvergecast:
    def test_sum_aggregation(self, small_network):
        total = convergecast(
            small_network,
            lambda node: sum(node.items),
            lambda a, b: a + b,
            16,
        )
        assert total == sum(small_network.all_items())

    def test_callable_size(self, line_network):
        convergecast(
            line_network,
            lambda node: sum(node.items),
            lambda a, b: a + b,
            lambda value: 100,
        )
        assert line_network.ledger.total_bits == 100 * (line_network.num_nodes - 1)

    def test_root_sends_nothing(self, small_network):
        convergecast(small_network, lambda node: 1, lambda a, b: a + b, 8)
        assert small_network.ledger.traffic(small_network.root_id).bits_sent == 0


class TestExtremumProtocols:
    def test_min_and_max(self, small_network, small_items):
        assert MinProtocol().run(small_network).value == min(small_items)
        assert MaxProtocol().run(small_network).value == max(small_items)

    def test_with_domain_hint(self, small_network, small_items):
        result = MaxProtocol(domain_max=1000).run(small_network)
        assert result.value == max(small_items)

    def test_nodes_without_items_are_skipped(self):
        network = SensorNetwork.from_items([5, 9, 2], topology=line_topology(3))
        network.assign_items({1: []})
        assert MinProtocol().run(network).value == 2
        assert MaxProtocol().run(network).value == 5

    def test_empty_network_rejected(self):
        network = SensorNetwork.from_items([1, 2], topology=line_topology(2))
        network.clear_items()
        with pytest.raises(EmptyNetworkError):
            MinProtocol().run(network)

    def test_custom_view(self, small_network, small_items):
        doubled = MaxProtocol(view=lambda node: [2 * item for item in node.items])
        assert doubled.run(small_network).value == 2 * max(small_items)


class TestCountSumAverage:
    def test_count(self, small_network, small_items):
        assert CountProtocol().run(small_network).value == len(small_items)

    def test_count_with_multiple_items_per_node(self):
        network = SensorNetwork.from_items([1, 2, 3], topology=line_topology(3))
        network.assign_items({0: [1, 2, 3, 4]})
        assert CountProtocol().run(network).value == 6

    def test_sum(self, small_network, small_items):
        assert SumProtocol().run(small_network).value == sum(small_items)

    def test_average(self, small_network, small_items):
        result = AverageProtocol().run(small_network)
        assert result.value == pytest.approx(sum(small_items) / len(small_items))

    def test_average_empty_rejected(self):
        network = SensorNetwork.from_items([1], topology=line_topology(1))
        network.clear_items()
        with pytest.raises(EmptyNetworkError):
            AverageProtocol().run(network)


class TestFact21Complexity:
    """Fact 2.1: primitive aggregates cost O(log N) bits per node."""

    @pytest.mark.parametrize("protocol_cls", [MinProtocol, MaxProtocol, CountProtocol, SumProtocol])
    def test_per_node_bits_logarithmic(self, protocol_cls):
        costs = {}
        for side in (6, 12):
            n = side * side
            items = uniform_values(n, max_value=n * n, seed=1)
            network = SensorNetwork.from_items(items, topology=grid_topology(side))
            result = protocol_cls().run(network)
            costs[n] = result.max_node_bits
        # Quadrupling N should grow the per-node cost far slower than 4x
        # (log(N^2) only doubles); allow a generous factor.
        assert costs[144] <= 2.5 * costs[36]

    def test_count_cost_independent_of_topology_hubs(self):
        items = uniform_values(30, max_value=1000, seed=2)
        clique = SensorNetwork.from_items(items, topology=single_hop_topology(30))
        line = SensorNetwork.from_items(items, topology=line_topology(30))
        clique_cost = CountProtocol().run(clique).max_node_bits
        line_cost = CountProtocol().run(line).max_node_bits
        # With the bounded-degree tree the clique is not much worse than the line.
        assert clique_cost <= 4 * line_cost

    def test_result_metrics_populated(self, small_network):
        result = CountProtocol().run(small_network)
        assert result.total_bits > 0
        assert result.messages > 0
        assert result.rounds > 0
        assert result.max_node_bits <= result.total_bits
