"""E11 — execution-path scaling: the batched core vs the per-edge reference.

The batched execution core exists so the simulator can run production-scale
fields: the per-edge path allocates a ``Message``, consults the graph, walks
the radio model and mutates the ledger once per edge, which caps experiments
at a few thousand nodes.  This benchmark drives the same broadcast + SUM
convergecast round trip through both paths and checks the two claims of the
refactor:

* **equivalence** — wherever both paths run, their ledgers are bit-for-bit
  identical (``ScalingRecord.ledgers_identical``);
* **speed** — the batched path is ≥ 5× faster in wall-clock at n = 10,000,
  and completes a 100k-node field (where the per-edge path is not even
  attempted).

Set ``REPRO_SCALE_SIZES`` (comma-separated node counts) to shrink the sweep —
the CI smoke job runs ``REPRO_SCALE_SIZES=256,1024``, which still asserts
ledger equivalence but skips the wall-clock assertions (timing on shared
runners is noise).
"""

from __future__ import annotations

import os

from benchmarks.conftest import (
    emit_bench_json,
    emit_telemetry_jsonl,
    phases_from_tracer,
    run_once,
)
from repro.analysis.experiments import run_scaling_study
from repro.analysis.report import format_table
from repro.telemetry import SpanTracer

_ENV_SIZES = os.environ.get("REPRO_SCALE_SIZES")
FULL_SIZES = (1_000, 10_000, 100_000)
SIZES = (
    tuple(int(size) for size in _ENV_SIZES.split(",")) if _ENV_SIZES else FULL_SIZES
)
SMOKE = _ENV_SIZES is not None
PER_EDGE_LIMIT = 20_000
SPEEDUP_TARGET = 5.0
SPEEDUP_AT = 10_000


def test_batched_backend_scales(benchmark):
    # The one-shot protocols emit no phase spans, but the tracer still
    # collects the per-size timing histograms and net.* counters.
    tracer = SpanTracer()
    records = run_once(
        benchmark,
        run_scaling_study,
        SIZES,
        per_edge_limit=PER_EDGE_LIMIT,
        repeats=3,
        seed=0,
        telemetry=tracer,
    )

    rows = [
        [
            record.num_nodes,
            record.tree_height,
            round(record.batched_seconds * 1000, 1),
            "-" if record.per_edge_seconds is None
            else round(record.per_edge_seconds * 1000, 1),
            "-" if record.speedup is None else round(record.speedup, 1),
            "-" if record.ledgers_identical is None else record.ledgers_identical,
            record.messages,
        ]
        for record in records
    ]
    print()
    print(format_table(
        [
            "N",
            "tree height",
            "batched (ms)",
            "per-edge (ms)",
            "speedup",
            "ledgers equal",
            "messages",
        ],
        rows,
        title="E11  broadcast + SUM convergecast: batched vs per-edge execution",
    ))

    for record in records:
        benchmark.extra_info[f"batched_ms_{record.num_nodes}"] = round(
            record.batched_seconds * 1000, 2
        )
        if record.speedup is not None:
            benchmark.extra_info[f"speedup_{record.num_nodes}"] = round(
                record.speedup, 2
            )

    # Equivalence: wherever both paths ran, the ledgers must be identical.
    compared = [record for record in records if record.ledgers_identical is not None]
    assert compared, "no size was small enough to run the per-edge reference"
    assert all(record.ledgers_identical for record in compared)
    # Every requested size completed under the batched backend.
    assert len(records) == len(SIZES)

    metrics = {}
    if not SMOKE:
        # Acceptance: ≥ 5× wall-clock speedup on the 10k-node convergecast...
        ten_k = [
            record
            for record in records
            if record.num_nodes >= SPEEDUP_AT and record.speedup is not None
        ]
        assert ten_k, f"sweep did not include a timed size ≥ {SPEEDUP_AT}"
        best_speedup = max(record.speedup for record in ten_k)
        assert best_speedup >= SPEEDUP_TARGET
        # ...and the 100k-node field completes on the batched path.
        assert max(record.num_nodes for record in records) >= 99_000
        metrics["traversal_speedup"] = {
            "value": round(best_speedup, 2),
            "floor": SPEEDUP_TARGET,
        }

    largest = records[-1]
    emit_bench_json(
        "scale",
        n=largest.num_nodes,
        wall_clock_s=largest.batched_seconds,
        bits=largest.total_bits,
        metrics=metrics,
        phases=phases_from_tracer(tracer) or None,
    )
    if tracer.spans:
        emit_telemetry_jsonl("scale", tracer)
