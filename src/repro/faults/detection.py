"""Charged failure detection: heartbeats, detection latency, zombie windows.

The PR 3 fault engine assumed an *oracle* failure detector: a crash was
known — for free — the epoch it happened, so the repair-vs-rebuild
comparison never paid for its failure knowledge.  Chlebus–Kowalski–Olkowski
("Deterministic Fault-Tolerant Distributed Computing in Linear Time and
Communication") makes the case that fault handling must be charged in the
same communication currency as the computation itself; the heartbeat-based
detectors of the distributed-systems literature (Aspnes's notes, Ch. 11)
are the standard way to do it.  :class:`HeartbeatDetector` implements that
model:

* every ``period`` epochs each tree node sends a tiny liveness bit to its
  parent — charged through the radio model like every other transmission,
  under the ``faults:heartbeat`` ledger key (so lossy links inflate the
  standing cost, and per-protocol snapshots separate the detection bill
  from ``faults:repair`` and ``faults:election`` exactly);
* a node that physically crashed sends nothing: its parent notices the
  missing heartbeat at the next sweep, which is when the crash becomes
  *known* — the alive-mask flips, the readings are already gone, and the
  repair runs.  Detection latency is therefore ``detection_epoch -
  crash_epoch``, between ``0`` and ``period - 1`` epochs, trading linearly
  against the heartbeat bill;
* between crash and detection the victim is a *zombie*: silent (a silent
  node is indistinguishable from a suppressed one in a delta-streaming
  engine) and stale — its readings were destroyed at the crash, but its
  cached summary contribution survives at its parent until the repair
  evicts it, so the answer error during the window is the measurable price
  of not knowing yet.

Only ordinary node crashes need the detector.  Link failures are observable
by the *sender* for free (the radio layer reports missed acks on the next
use), so the engine keeps applying them oracle-style; rejoins announce
themselves through the adoption handshake the repair already charges; and
the *root's* crash is self-announcing — its children expect the epoch tick
from it — so a :class:`~repro.faults.RootCrash` is applied immediately and
the charged response is the :class:`~repro.faults.RootElection`, not a
heartbeat.
"""

from __future__ import annotations

from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError, DeliveryError
from repro.network.simulator import SensorNetwork

#: One liveness token per tree edge per sweep: a type bit plus an epoch
#: parity bit, enough for the parent to tell "alive now" from a duplicate.
HEARTBEAT_BITS = 2


class HeartbeatDetector:
    """Periodic parent-ward heartbeats with charged bits and real latency.

    ``period`` is the sweep interval in epochs: sweeps fire at every epoch
    that is a multiple of ``period``, so ``period=1`` detects every crash
    the epoch it happens (the oracle's timing, but *paid for*), and larger
    periods trade heartbeat bits for detection latency — worst case
    ``period - 1`` epochs, ``(period - 1) / 2`` expected under crashes
    uniform in time.
    """

    def __init__(
        self,
        period: int = 1,
        heartbeat_bits: int = HEARTBEAT_BITS,
        protocol: str = "faults:heartbeat",
    ) -> None:
        require_positive(period, "period")
        require_positive(heartbeat_bits, "heartbeat_bits")
        self.period = period
        self.heartbeat_bits = heartbeat_bits
        self.protocol = protocol

    def sweep_due(self, epoch: int) -> bool:
        """Whether the heartbeat exchange fires at ``epoch``."""
        return epoch % self.period == 0

    def worst_case_latency(self) -> int:
        """Largest possible crash-to-detection gap, in epochs."""
        return self.period - 1

    def expected_latency(self) -> float:
        """Mean crash-to-detection gap for crashes uniform over the period."""
        return (self.period - 1) / 2

    def charge_sweep(
        self, network: SensorNetwork, silent: set[int]
    ) -> tuple[int, int]:
        """Charge one heartbeat per tree edge whose child can still speak.

        ``silent`` holds the physically-dead-but-undetected nodes: they
        transmit nothing (that silence *is* the detection signal), while
        their still-alive children keep paying heartbeats toward them until
        the repair re-parents the subtree.  Links touching a *known*-dead
        endpoint are skipped too: a node whose death is already on the
        alive-mask when the sweep fires (a :class:`~repro.faults.RootCrash`
        is applied before the sweep, since the root's silence at the epoch
        tick is self-announcing) neither sends nor is sent to.  The link
        sequence is the cached :attr:`~repro.network.FlatTree.up_links`
        (canonical bottom-up order), charged through
        :meth:`~repro.network.SensorNetwork.send_batch`, so the ledger —
        including lossy-radio retries — is identical under both execution
        modes.  Returns ``(bits, messages)`` charged.
        """
        telemetry = network.telemetry
        with telemetry.span("detect", period=self.period) as span:
            bits, messages = self._charge_sweep(network, silent)
            if telemetry.enabled:
                span.annotate(silent=len(silent))
                telemetry.count("detect.sweeps", 1)
        return bits, messages

    def _charge_sweep(
        self, network: SensorNetwork, silent: set[int]
    ) -> tuple[int, int]:
        up_links = network.flat_tree.up_links
        is_alive = network.is_alive
        if silent or network.num_alive < network.num_nodes:
            links = [
                link
                for link in up_links
                if link[0] not in silent
                and is_alive(link[0])
                and is_alive(link[1])
            ]
        else:
            links = up_links
        if not links:
            return 0, 0
        before = network.ledger.counters_snapshot()
        position = 0
        while position < len(links):
            batch = links[position:]
            try:
                network.send_batch(
                    batch,
                    [self.heartbeat_bits] * len(batch),
                    protocol=self.protocol,
                    require_edge=False,
                )
                break
            except DeliveryError as error:
                # A permanently lost heartbeat is not a fault in the sweep —
                # it is wasted traffic (the sender is probed again next
                # sweep; false-positive suspicion is not modelled).  The
                # delivered prefix was charged; skip the dead letter and
                # keep sweeping.
                position += len(getattr(error, "outcomes_before_failure", ())) + 1
        after = network.ledger.counters_snapshot()
        return (
            after.total_bits - before.total_bits,
            after.messages - before.messages,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"HeartbeatDetector(period={self.period}, "
            f"bits={self.heartbeat_bits})"
        )


def heartbeat_sweep_vectorized(
    flat,
    alive,
    ledger,
    heartbeat_bits: int = HEARTBEAT_BITS,
    protocol: str = "faults:heartbeat",
    telemetry=None,
    period: int = 1,
) -> tuple[int, int]:
    """Charge one heartbeat sweep from whole-array masks, no link list.

    The array counterpart of :meth:`HeartbeatDetector.charge_sweep` for the
    standalone :class:`~repro.network.vector_field.VectorField`: ``flat`` is
    a :class:`~repro.network.FlatTree`, ``alive`` a boolean mask over its
    canonical positions, and ``ledger`` any ledger exposing ``charge_array``
    (the :class:`~repro.network.ArrayLedger` makes it one vector add).  A
    link is charged when both endpoints are alive — a dead child is silent
    (that silence is the detection signal) and a dead parent is not probed.
    Returns ``(bits, messages)`` like the charged sweep.

    Perfect links only: the standalone field has no radio model, so this is
    the :class:`~repro.network.radio.ReliableRadio` cost exactly.
    """
    from repro._util.fastpath import require_numpy

    np = require_numpy("vectorized heartbeat sweep")
    parent = flat.parent
    mask = alive & (parent >= 0)
    mask &= np.where(parent >= 0, alive[np.maximum(parent, 0)], False)
    count = int(mask.sum())

    def _charge() -> None:
        if count:
            senders = flat.ids_array[mask]
            receivers = flat.ids_array[parent[mask]]
            sizes = np.full(count, heartbeat_bits, dtype=np.int64)
            ledger.charge_array(senders, receivers, sizes, protocol=protocol)

    if telemetry is not None and telemetry.enabled:
        with telemetry.span("detect", period=period) as span:
            _charge()
            span.annotate(silent=int(flat.num_nodes - int(alive.sum())))
            telemetry.count("detect.sweeps", 1)
    else:
        _charge()
    return count * heartbeat_bits, count


def detector_from_config(config) -> "HeartbeatDetector | None":
    """Normalise detector configuration: ``None``, a period, or an instance.

    The analysis entry points accept ``detector_period`` as a plain integer
    for sweep convenience; this helper keeps the coercion in one place.
    """
    if config is None:
        return None
    if isinstance(config, HeartbeatDetector):
        return config
    if isinstance(config, int) and not isinstance(config, bool):
        return HeartbeatDetector(period=config)
    raise ConfigurationError(
        f"detector must be None, an int period or a HeartbeatDetector, "
        f"got {config!r}"
    )
