"""Tests for the analysis layer: metrics, theory envelopes, reports, experiment runners."""

import math

import pytest

from repro.analysis.experiments import (
    build_network,
    default_domain,
    run_apx_median_trials,
    run_baseline_comparison,
    run_count_distinct_sweep,
    run_degree_bound_ablation,
    run_exact_median_sweep,
    run_order_statistic_sweep,
    run_primitive_aggregates_sweep,
    run_repetition_ablation,
)
from repro.analysis.metrics import (
    fit_against_model,
    fit_growth_exponent,
    median_accuracy,
)
from repro.analysis.report import format_table
from repro.analysis.theory import (
    apx_median_bits_envelope,
    approx_distinct_bits_envelope,
    exact_distinct_bits_envelope,
    exact_median_bits_envelope,
    naive_median_bits_envelope,
    polyloglog_median_bits_envelope,
    predicted_crossover,
)
from repro.exceptions import ConfigurationError


class TestMetrics:
    def test_median_accuracy_exact(self):
        items = [1, 2, 3, 4, 5]
        accuracy = median_accuracy(items, 3)
        assert accuracy.exact
        assert accuracy.value_error == 0.0

    def test_median_accuracy_off_by_value(self):
        items = [0, 100, 200, 300, 400]
        accuracy = median_accuracy(items, 220)
        assert not accuracy.exact
        assert accuracy.value_error == pytest.approx(20 / 400)

    def test_median_accuracy_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            median_accuracy([], 1)

    def test_fit_growth_exponent_linear(self):
        sizes = [10, 20, 40, 80]
        costs = [5 * size for size in sizes]
        exponent, constant = fit_growth_exponent(sizes, costs)
        assert exponent == pytest.approx(1.0, abs=0.01)
        assert constant == pytest.approx(5.0, rel=0.05)

    def test_fit_growth_exponent_polylog_is_flat(self):
        sizes = [2 ** k for k in range(5, 13)]
        costs = [math.log2(size) ** 2 for size in sizes]
        exponent, _ = fit_growth_exponent(sizes, costs)
        assert exponent < 0.5

    def test_fit_growth_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_growth_exponent([10], [100])

    def test_fit_against_model_flat_ratio(self):
        sizes = [100, 1000, 10_000]
        costs = [7 * math.log2(size) ** 2 for size in sizes]
        constant, spread = fit_against_model(
            sizes, costs, lambda n: math.log2(n) ** 2
        )
        assert constant == pytest.approx(7.0, rel=0.01)
        assert spread == pytest.approx(1.0, rel=0.01)

    def test_fit_against_model_detects_wrong_model(self):
        sizes = [100, 1000, 10_000]
        costs = [size * 3 for size in sizes]
        _, spread = fit_against_model(sizes, costs, lambda n: math.log2(n) ** 2)
        assert spread > 10


class TestTheoryEnvelopes:
    def test_exact_median_is_polylog(self):
        assert exact_median_bits_envelope(1 << 20, 1 << 40) == pytest.approx(20 * 40)

    def test_polyloglog_grows_slower_than_exact(self):
        small_n, large_n = 2 ** 10, 2 ** 60
        exact_growth = exact_median_bits_envelope(large_n, large_n ** 2) / \
            exact_median_bits_envelope(small_n, small_n ** 2)
        approx_growth = polyloglog_median_bits_envelope(large_n) / \
            polyloglog_median_bits_envelope(small_n)
        assert approx_growth < exact_growth / 4

    def test_naive_is_linear(self):
        assert naive_median_bits_envelope(2000, 4_000_000) == pytest.approx(
            2 * naive_median_bits_envelope(1000, 4_000_000)
        )

    def test_distinct_envelopes(self):
        assert exact_distinct_bits_envelope(500) == 500
        assert approx_distinct_bits_envelope(1 << 20, num_registers=64) < 500

    def test_apx_median_envelope_scales_with_registers(self):
        assert apx_median_bits_envelope(1000, num_registers=256) > apx_median_bits_envelope(
            1000, num_registers=16
        )

    def test_envelopes_reject_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            exact_median_bits_envelope(0)

    def test_predicted_crossover_exists_for_small_constants(self):
        crossover = predicted_crossover(
            exact_constant=1.0, approx_constant=0.01, num_registers=16
        )
        assert crossover is not None and crossover > 1

    def test_predicted_crossover_none_when_approx_too_expensive(self):
        crossover = predicted_crossover(
            exact_constant=1.0, approx_constant=1e9, num_registers=256, max_exponent=50
        )
        assert crossover is None


class TestReport:
    def test_basic_table(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["beta", 12345.678]],
            title="Demo",
        )
        assert "Demo" in text
        assert "alpha" in text
        assert "1.23e+04" in text or "12345" in text

    def test_boolean_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["x", "y"]])
        header, underline, row = text.splitlines()
        assert len(underline) >= len(header.rstrip())


class TestExperimentRunners:
    def test_default_domain_is_polynomial(self):
        assert default_domain(100) == 10_000

    def test_build_network_shapes(self):
        network, items, domain = build_network(36, workload="uniform", topology="grid")
        assert network.num_nodes == 36
        assert len(items) == 36
        assert domain == 36 * 36

    def test_primitive_sweep_records(self):
        records = run_primitive_aggregates_sweep([16], topology="line")
        assert {record.protocol for record in records} == {"MIN", "MAX", "COUNT", "SUM", "AVG"}
        assert all(record.max_node_bits > 0 for record in records)

    def test_exact_median_sweep_is_exact(self):
        records = run_exact_median_sweep([25, 49], workloads=("uniform", "zipf"))
        assert all(record.extra["exact"] for record in records)

    def test_order_statistic_sweep(self):
        records = run_order_statistic_sweep(36, quantiles=(0.25, 0.5, 0.75))
        assert len(records) == 3

    def test_apx_median_trials_summary(self):
        summary = run_apx_median_trials(49, trials=3, num_registers=64)
        assert 0.0 <= summary.success_rate <= 1.0
        assert summary.trials == 3

    def test_count_distinct_sweep_contrast(self):
        records = run_count_distinct_sweep([64])
        exact = next(r for r in records if "exact" in r.protocol)
        approx = next(r for r in records if "loglog" in r.protocol)
        assert exact.answer == 64
        assert exact.max_node_bits > approx.max_node_bits

    def test_baseline_comparison_contains_all_contenders(self):
        records = run_baseline_comparison([36], include_gossip=False, apx_registers=16)
        names = {record.protocol for record in records}
        assert "MEDIAN (Fig.1)" in names
        assert "naive ship-all" in names
        assert len(names) == 7

    def test_repetition_ablation_costs_increase_with_cap(self):
        summaries = run_repetition_ablation(36, caps=(1, 4), trials=2, num_registers=16)
        assert summaries[1].mean_max_node_bits > summaries[0].mean_max_node_bits

    def test_degree_bound_ablation_reports_tree_stats(self):
        records = run_degree_bound_ablation(20, degree_bounds=(None, 3), topology="single_hop")
        unbounded, bounded = records
        assert unbounded.extra["tree_degree"] >= bounded.extra["tree_degree"]
