"""A minimal synchronous round engine.

Tree protocols in this package are executed by walking the spanning tree
directly (the number of rounds they need is just the tree height, which the
protocols record on the ledger).  Protocols that are *not* tree-shaped — the
gossip baseline, and the robustness experiments with lossy links — need a
notion of "every node acts once per round".  :class:`RoundEngine` provides
exactly that and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro._util.validation import require_positive
from repro.exceptions import ProtocolError
from repro.network.simulator import SensorNetwork

# A node handler receives (network, node_id, inbox) and returns a mapping of
# destination node id -> (payload, size_bits) describing what to send next
# round.  Sends are executed (and charged) by the engine.
NodeHandler = Callable[
    [SensorNetwork, int, list[object]],
    Mapping[int, tuple[object, int]],
]


@dataclass
class RoundEngineResult:
    """Outcome of a round-engine execution."""

    rounds_executed: int
    converged: bool


class RoundEngine:
    """Run a per-node handler for a number of synchronous rounds."""

    def __init__(self, network: SensorNetwork, protocol_name: str = "round-engine") -> None:
        self.network = network
        self.protocol_name = protocol_name

    def run(
        self,
        handler: NodeHandler,
        max_rounds: int,
        stop_condition: Callable[[SensorNetwork, int], bool] | None = None,
    ) -> RoundEngineResult:
        """Execute up to ``max_rounds`` synchronous rounds of ``handler``.

        ``stop_condition(network, round_index)`` is evaluated after each round;
        returning ``True`` ends the run early (convergence).
        """
        require_positive(max_rounds, "max_rounds")
        inboxes: dict[int, list[object]] = {
            node_id: [] for node_id in self.network.node_ids()
        }
        for round_index in range(max_rounds):
            outgoing: list[tuple[int, int, object, int]] = []
            for node_id in self.network.node_ids():
                sends = handler(self.network, node_id, inboxes[node_id])
                inboxes[node_id] = []
                for destination, (payload, size_bits) in sends.items():
                    if destination == node_id:
                        raise ProtocolError(
                            f"node {node_id} attempted to message itself"
                        )
                    outgoing.append((node_id, destination, payload, size_bits))
            for sender, receiver, payload, size_bits in outgoing:
                message = self.network.send(
                    sender,
                    receiver,
                    payload,
                    size_bits,
                    protocol=self.protocol_name,
                )
                copies = message.metadata.get("copies_delivered", 1)
                for _ in range(copies):
                    inboxes[receiver].append(payload)
            self.network.ledger.advance_round()
            if stop_condition is not None and stop_condition(self.network, round_index):
                return RoundEngineResult(rounds_executed=round_index + 1, converged=True)
        return RoundEngineResult(rounds_executed=max_rounds, converged=False)
