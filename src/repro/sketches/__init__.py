"""Sketching data structures.

These are the pure (single-machine) data structures that the distributed
protocols serialise and merge up the spanning tree:

* :mod:`repro.sketches.loglog` — the Durand–Flajolet LogLog counter behind the
  paper's Fact 2.2 (α-counting with ``O(m log log N)`` bits).
* :mod:`repro.sketches.hyperloglog` — the harmonic-mean refinement, provided
  for comparison experiments.
* :mod:`repro.sketches.flajolet_martin` — the PCSA bitmap sketch, the earlier
  alternative cited alongside [1, 3] in the paper.
* :mod:`repro.sketches.geometric` — the bare "max of geometric samples"
  estimator that the paper uses to explain approximate counting.
* :mod:`repro.sketches.gk_summary` / :mod:`repro.sketches.qdigest` — quantile
  summaries used by the Greenwald–Khanna and q-digest baselines (Section 1,
  "concurrent results by others").
* :mod:`repro.sketches.sampling` — mergeable uniform sampling (the Nath et al.
  synopsis-diffusion baseline).
* :mod:`repro.sketches.ams` — the Alon–Matias–Szegedy frequency-moment sketch,
  cited as reference [1].
"""

from repro.sketches.ams import AmsF2Sketch
from repro.sketches.flajolet_martin import FlajoletMartinSketch
from repro.sketches.geometric import GeometricMaxEstimator, geometric_rank
from repro.sketches.gk_summary import GKSummary
from repro.sketches.hashing import hash64, hash_to_unit
from repro.sketches.hyperloglog import HyperLogLogSketch
from repro.sketches.loglog import LogLogSketch
from repro.sketches.qdigest import QDigest
from repro.sketches.sampling import MergeableSample

__all__ = [
    "AmsF2Sketch",
    "FlajoletMartinSketch",
    "GeometricMaxEstimator",
    "geometric_rank",
    "GKSummary",
    "hash64",
    "hash_to_unit",
    "HyperLogLogSketch",
    "LogLogSketch",
    "QDigest",
    "MergeableSample",
]
