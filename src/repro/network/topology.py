"""Topology generators.

All generators return an undirected, connected ``networkx.Graph`` whose nodes
are the integers ``0 .. n-1``.  By convention node ``0`` is the root (the node
connected to the user entity in the TAG setting), although the simulator lets
callers pick any root.

The paper is agnostic about the communication structure — it only assumes the
primitive protocols of Fact 2.1 exist — so the experiment harness runs every
protocol over several qualitatively different topologies: the line (worst-case
diameter), the grid and random geometric graphs (typical sensor deployments),
the star (worst case for the individual complexity measure without a
degree-bounded tree), the single-hop clique (the Singh–Prasanna setting), and
balanced trees (the idealised TAG structure).
"""

from __future__ import annotations

import math

import networkx as nx

from repro._util.randomness import make_rng
from repro._util.validation import require_positive, require_probability
from repro.exceptions import TopologyError


def _relabel_consecutively(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving adjacency (sorted order)."""
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)


def _check_connected(graph: nx.Graph, description: str) -> nx.Graph:
    if graph.number_of_nodes() == 0:
        raise TopologyError(f"{description}: topology has no nodes")
    if not nx.is_connected(graph):
        raise TopologyError(f"{description}: topology is not connected")
    return graph


def line_topology(num_nodes: int) -> nx.Graph:
    """A path 0 - 1 - ... - (n-1); maximises diameter, degree at most 2."""
    require_positive(num_nodes, "num_nodes")
    return _check_connected(nx.path_graph(num_nodes), "line")


def ring_topology(num_nodes: int) -> nx.Graph:
    """A cycle; like the line but with no leaves."""
    require_positive(num_nodes, "num_nodes")
    if num_nodes < 3:
        return line_topology(num_nodes)
    return _check_connected(nx.cycle_graph(num_nodes), "ring")


def star_topology(num_nodes: int) -> nx.Graph:
    """Node 0 adjacent to every other node.

    The star is the stress case for the paper's *individual* complexity
    measure: without care the centre relays traffic for everyone, which is why
    Fact 2.1 requires a bounded-degree spanning tree.
    """
    require_positive(num_nodes, "num_nodes")
    graph = nx.star_graph(num_nodes - 1)
    return _check_connected(_relabel_consecutively(graph), "star")


def single_hop_topology(num_nodes: int) -> nx.Graph:
    """A clique: every node hears every other (the Singh–Prasanna model)."""
    require_positive(num_nodes, "num_nodes")
    return _check_connected(nx.complete_graph(num_nodes), "single-hop")


def grid_topology(rows: int, cols: int | None = None) -> nx.Graph:
    """A rows × cols 4-neighbour grid, the classic sensor-field layout."""
    require_positive(rows, "rows")
    if cols is None:
        cols = rows
    require_positive(cols, "cols")
    graph = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r in range(rows) for c in range(cols)}
    graph = nx.relabel_nodes(graph, mapping, copy=True)
    return _check_connected(graph, "grid")


def balanced_tree_topology(branching: int, height: int) -> nx.Graph:
    """A complete ``branching``-ary tree of the given height (root is node 0)."""
    require_positive(branching, "branching")
    if height < 0:
        raise TopologyError(f"height must be non-negative, got {height}")
    graph = nx.balanced_tree(branching, height)
    return _check_connected(_relabel_consecutively(graph), "balanced tree")


def random_geometric_topology(
    num_nodes: int,
    radius: float | None = None,
    seed: int | None = 0,
    max_attempts: int = 50,
) -> nx.Graph:
    """A connected random geometric graph on the unit square.

    Nodes are placed uniformly at random and connected when within ``radius``.
    When ``radius`` is omitted the critical connectivity radius
    ``sqrt(2 * ln(n) / n)`` is used.  The generator retries (growing the radius
    by 10% each attempt) until the graph is connected, so callers always get a
    usable deployment.
    """
    require_positive(num_nodes, "num_nodes")
    if num_nodes == 1:
        return nx.empty_graph(1)
    rng = make_rng(seed)
    if radius is None:
        radius = math.sqrt(2.0 * math.log(num_nodes) / num_nodes)
    if radius <= 0:
        raise TopologyError(f"radius must be positive, got {radius}")
    current_radius = radius
    for _ in range(max_attempts):
        graph = nx.random_geometric_graph(
            num_nodes, current_radius, seed=rng.getrandbits(32)
        )
        if nx.is_connected(graph):
            return graph
        current_radius *= 1.1
    raise TopologyError(
        f"could not build a connected random geometric graph with "
        f"{num_nodes} nodes after {max_attempts} attempts"
    )


def random_tree_topology(num_nodes: int, seed: int | None = 0) -> nx.Graph:
    """A uniformly random labelled tree (Prüfer sequence)."""
    require_positive(num_nodes, "num_nodes")
    if num_nodes <= 2:
        return line_topology(num_nodes)
    rng = make_rng(seed)
    prufer = [rng.randrange(num_nodes) for _ in range(num_nodes - 2)]
    graph = nx.from_prufer_sequence(prufer)
    return _check_connected(graph, "random tree")


def erdos_renyi_topology(
    num_nodes: int, edge_probability: float, seed: int | None = 0, max_attempts: int = 50
) -> nx.Graph:
    """A connected Erdős–Rényi graph (used by the gossip baselines)."""
    require_positive(num_nodes, "num_nodes")
    require_probability(edge_probability, "edge_probability")
    rng = make_rng(seed)
    probability = edge_probability
    for _ in range(max_attempts):
        graph = nx.gnp_random_graph(num_nodes, probability, seed=rng.getrandbits(32))
        if num_nodes == 1 or nx.is_connected(graph):
            return graph
        probability = min(1.0, probability * 1.2)
    raise TopologyError(
        f"could not build a connected G(n, p) graph with n={num_nodes} "
        f"after {max_attempts} attempts"
    )


TOPOLOGY_BUILDERS = {
    "line": line_topology,
    "ring": ring_topology,
    "star": star_topology,
    "single_hop": single_hop_topology,
    "grid": lambda n: grid_topology(max(1, int(round(math.sqrt(n))))),
    "random_geometric": random_geometric_topology,
    "random_tree": random_tree_topology,
}
"""Name → builder map used by the experiment harness; grid builds ~n nodes."""


def build_topology(name: str, num_nodes: int, seed: int | None = 0) -> nx.Graph:
    """Build a named topology with (approximately) ``num_nodes`` nodes."""
    if name not in TOPOLOGY_BUILDERS:
        raise TopologyError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
        )
    builder = TOPOLOGY_BUILDERS[name]
    if name in ("random_geometric", "random_tree"):
        return builder(num_nodes, seed=seed)
    return builder(num_nodes)
