"""Declarative sweep specs: axes, constraints, and matrix expansion.

A :class:`SweepSpec` names one *experiment kind* (a cell runner registered
in :mod:`repro.sweeps.cells`), a set of **axes** — each a named sequence of
values (topology, radio, execution mode, fault scenario, detector period,
workload, ``n``, ``seed``, …) — and a set of **constraints** that prune the
cartesian product.  :meth:`SweepSpec.expand` turns the spec into a run
matrix of :class:`SweepCell` entries, each carrying the merged parameter
dict and a content hash (:func:`cell_key`) that the cached executor in
:mod:`repro.sweeps.runner` uses as its cache key: editing one axis value
re-executes only the cells whose parameters actually changed.

Specs are plain data.  They can be built in code (a dataclass literal),
loaded from a dict, or loaded from a ``.toml`` / ``.json`` file via
:func:`load_spec` — the schema is documented in ``docs/SWEEPS.md``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.exceptions import ConfigurationError, DuplicateAxisValueError

#: Bump to invalidate every cached cell result (e.g. when a cell runner's
#: output schema changes in a way the parameter hash cannot see).
CACHE_VERSION = 1


def _canonical(value: Any) -> Any:
    """JSON-safe canonical form of one parameter value (for hashing)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _canonical(val) for key, val in sorted(value.items())}
    raise ConfigurationError(
        f"sweep parameter values must be JSON-safe scalars/lists/dicts, "
        f"got {type(value).__name__}: {value!r}"
    )


def cell_key(experiment: str, params: Mapping[str, Any]) -> str:
    """Content hash of one cell: experiment kind + parameters + cache epoch.

    Two cells with identical parameters share a key — and therefore a
    cached result — regardless of which spec produced them or where in the
    matrix they sit.
    """
    payload = {
        "version": CACHE_VERSION,
        "experiment": experiment,
        "params": _canonical(dict(params)),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def _value_slug(value: Any) -> str:
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value).replace("/", "-").replace(" ", "")


@dataclass(frozen=True)
class Constraint:
    """One declarative pruning rule applied to every candidate cell.

    A cell *matches* the constraint when, for every axis named in ``when``,
    the cell's value is one of the listed values (an empty ``when`` matches
    every cell).  A matching cell is then

    * dropped outright if ``drop`` is true, or
    * kept only if, for every axis named in ``require``, the cell's value
      is among the allowed values.

    The canonical example — the sharded backend refuses lossy radios::

        Constraint(when={"execution": ("sharded",)},
                   require={"radio": ("reliable",)})
    """

    when: dict[str, tuple] = field(default_factory=dict)
    require: dict[str, tuple] = field(default_factory=dict)
    drop: bool = False

    def __post_init__(self) -> None:
        if not self.drop and not self.require:
            raise ConfigurationError(
                "a constraint must either 'drop' matching cells or "
                "'require' axis values for them"
            )
        for role, mapping in (("when", self.when), ("require", self.require)):
            for axis, values in mapping.items():
                if not isinstance(values, tuple) or not values:
                    raise ConfigurationError(
                        f"constraint {role}[{axis!r}] must be a non-empty "
                        f"tuple of values, got {values!r}"
                    )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Constraint":
        unknown = set(payload) - {"when", "require", "drop"}
        if unknown:
            raise ConfigurationError(
                f"unknown constraint field(s) {sorted(unknown)}; "
                "expected 'when', 'require', 'drop'"
            )

        def as_tuples(mapping: Mapping[str, Any]) -> dict[str, tuple]:
            result = {}
            for axis, values in mapping.items():
                if isinstance(values, (list, tuple)):
                    result[axis] = tuple(values)
                else:
                    result[axis] = (values,)
            return result

        return cls(
            when=as_tuples(payload.get("when", {})),
            require=as_tuples(payload.get("require", {})),
            drop=bool(payload.get("drop", False)),
        )

    def matches(self, params: Mapping[str, Any]) -> bool:
        return all(params.get(axis) in values for axis, values in self.when.items())

    def keeps(self, params: Mapping[str, Any]) -> bool:
        """Whether a cell with these parameters survives this constraint."""
        if not self.matches(params):
            return True
        if self.drop:
            return False
        return all(
            params.get(axis) in allowed for axis, allowed in self.require.items()
        )


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved point of the run matrix."""

    spec_name: str
    experiment: str
    #: Position in the expanded (post-constraint) matrix, 0-based.
    index: int
    #: Human-readable identity: the axis values that distinguish this cell.
    cell_id: str
    #: Merged ``base`` + axis parameters handed to the cell runner.
    params: dict[str, Any]
    #: Content hash — the cache key (see :func:`cell_key`).
    key: str


@dataclass(frozen=True)
class SweepSpec:
    """A declarative scenario sweep: one experiment kind times many axes."""

    name: str
    experiment: str
    axes: dict[str, tuple] = field(default_factory=dict)
    base: dict[str, Any] = field(default_factory=dict)
    constraints: tuple = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").replace("-", "").isalnum():
            raise ConfigurationError(
                f"sweep name must be a [A-Za-z0-9_-]+ slug, got {self.name!r}"
            )
        for axis, values in self.axes.items():
            if not isinstance(values, tuple) or not values:
                raise ConfigurationError(
                    f"axis {axis!r} must be a non-empty tuple of values, "
                    f"got {values!r}"
                )
            if len(set(map(repr, values))) != len(values):
                raise DuplicateAxisValueError(
                    f"axis {axis!r} has duplicate values {values!r}: each "
                    "repeated value collapses two cells into one cache key, "
                    "so the sweep would run fewer independent cells than the "
                    "spec promises (a repeated seed silently halves the "
                    "sample count) — make every axis value unique"
                )
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise ConfigurationError(
                f"axes and base parameters overlap: {sorted(overlap)}"
            )
        for constraint in self.constraints:
            if not isinstance(constraint, Constraint):
                raise ConfigurationError(
                    f"constraints must be Constraint instances, got "
                    f"{type(constraint).__name__}"
                )

    @property
    def matrix_size(self) -> int:
        """Size of the *unconstrained* cartesian product."""
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def expand(self) -> list[SweepCell]:
        """The run matrix: constrained cartesian product, deterministic order.

        Axes iterate in sorted-name order and each axis's values in their
        declared order, so the same spec always yields the same matrix (and
        the same cell indices) regardless of dict construction history.
        """
        names = sorted(self.axes)
        cells: list[SweepCell] = []
        for combo in itertools.product(*(self.axes[name] for name in names)):
            axis_params = dict(zip(names, combo))
            params = {**self.base, **axis_params}
            if not all(c.keeps(params) for c in self.constraints):
                continue
            cell_id = (
                ",".join(f"{name}={_value_slug(axis_params[name])}" for name in names)
                or "default"
            )
            cells.append(
                SweepCell(
                    spec_name=self.name,
                    experiment=self.experiment,
                    index=len(cells),
                    cell_id=cell_id,
                    params=params,
                    key=cell_key(self.experiment, params),
                )
            )
        return cells

    def to_dict(self) -> dict:
        """JSON-safe round-trippable form (the ``load_spec`` schema)."""
        return {
            "name": self.name,
            "experiment": self.experiment,
            "axes": {axis: list(values) for axis, values in self.axes.items()},
            "base": _canonical(self.base),
            "constraints": [
                {
                    "when": {axis: list(vals) for axis, vals in c.when.items()},
                    "require": {axis: list(vals) for axis, vals in c.require.items()},
                    "drop": c.drop,
                }
                for c in self.constraints
            ],
        }


def spec_from_dict(payload: Mapping[str, Any]) -> SweepSpec:
    """Build a :class:`SweepSpec` from its dict/TOML/JSON schema."""
    unknown = set(payload) - {"name", "experiment", "axes", "base", "constraints"}
    if unknown:
        raise ConfigurationError(
            f"unknown sweep spec field(s) {sorted(unknown)}; expected "
            "'name', 'experiment', 'axes', 'base', 'constraints'"
        )
    for required in ("name", "experiment"):
        if not isinstance(payload.get(required), str):
            raise ConfigurationError(f"sweep spec needs a string {required!r} field")
    axes_in = payload.get("axes", {})
    if not isinstance(axes_in, Mapping):
        raise ConfigurationError("'axes' must be a table of axis -> value list")
    axes = {}
    for axis, values in axes_in.items():
        if not isinstance(values, (list, tuple)):
            raise ConfigurationError(
                f"axis {axis!r} must list its values, got {values!r}"
            )
        axes[axis] = tuple(values)
    constraints = tuple(
        Constraint.from_dict(entry) for entry in payload.get("constraints", ())
    )
    return SweepSpec(
        name=payload["name"],
        experiment=payload["experiment"],
        axes=axes,
        base=dict(payload.get("base", {})),
        constraints=constraints,
    )


def load_spec(source: "SweepSpec | Mapping[str, Any] | str | Path") -> SweepSpec:
    """Load a sweep spec from a spec object, dict, or ``.toml``/``.json`` file."""
    if isinstance(source, SweepSpec):
        return source
    if isinstance(source, Mapping):
        return spec_from_dict(source)
    path = Path(source)
    if not path.exists():
        raise ConfigurationError(f"sweep spec file not found: {path}")
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - Python < 3.11 only
            raise ConfigurationError(
                "TOML sweep specs need Python 3.11+ (tomllib); "
                "use the JSON schema instead"
            ) from exc
        with open(path, "rb") as handle:
            return spec_from_dict(tomllib.load(handle))
    if path.suffix == ".json":
        with open(path, encoding="utf-8") as handle:
            return spec_from_dict(json.load(handle))
    raise ConfigurationError(
        f"unsupported sweep spec format {path.suffix!r} (expected .toml or .json)"
    )


def normalize_seeds(value: "int | Sequence[int]") -> tuple:
    """Coerce a seed count or explicit seed list into a seed axis tuple."""
    if isinstance(value, int):
        return tuple(range(value))
    return tuple(value)
