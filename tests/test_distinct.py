"""Tests for COUNT DISTINCT (Section 5): exact, approximate, and the 2SD reduction."""

import pytest

from repro.distinct.approximate import ApproxDistinctCountProtocol
from repro.distinct.disjointness import (
    make_disjoint_instance,
    make_intersecting_instance,
    solve_disjointness_via_count_distinct,
)
from repro.distinct.exact import ExactDistinctCountProtocol
from repro.exceptions import ConfigurationError
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology, line_topology
from repro.workloads.generators import zipf_values


class TestExactDistinct:
    def test_counts_distinct_values(self):
        items = [1, 5, 5, 9, 1, 1, 12]
        network = SensorNetwork.from_items(items, topology=line_topology(len(items)))
        assert ExactDistinctCountProtocol().run(network).value == 4

    def test_all_equal(self):
        network = SensorNetwork.from_items([3] * 20, topology=line_topology(20))
        assert ExactDistinctCountProtocol().run(network).value == 1

    def test_all_distinct(self):
        network = SensorNetwork.from_items(list(range(30)), topology=grid_topology(6, 5))
        assert ExactDistinctCountProtocol().run(network).value == 30

    def test_zipf_duplicates(self):
        items = zipf_values(200, max_value=10_000, distinct=32, seed=1)
        network = SensorNetwork.from_items(items, topology=grid_topology(20, 10))
        assert ExactDistinctCountProtocol().run(network).value == len(set(items))

    def test_cost_grows_linearly_with_distinct_values(self):
        costs = {}
        for n in (32, 128):
            network = SensorNetwork.from_items(
                list(range(n)), topology=line_topology(n)
            )
            result = ExactDistinctCountProtocol(domain_max=4 * n).run(network)
            costs[n] = result.max_node_bits
        # Distinct count quadruples; the hottest node's traffic should grow
        # by a comparable factor (Theorem 5.1's behaviour), far beyond polylog.
        assert costs[128] >= 2.5 * costs[32]

    def test_cost_stays_small_when_duplication_is_heavy(self):
        many_duplicates = SensorNetwork.from_items([7] * 128, topology=line_topology(128))
        all_distinct = SensorNetwork.from_items(list(range(128)), topology=line_topology(128))
        dup_cost = ExactDistinctCountProtocol().run(many_duplicates).max_node_bits
        distinct_cost = ExactDistinctCountProtocol().run(all_distinct).max_node_bits
        assert dup_cost < distinct_cost / 5

    def test_bitmap_encoding_caps_cost_for_small_domain(self):
        # With a tiny declared domain the bitmap encoding bounds per-edge cost.
        items = list(range(60))
        network = SensorNetwork.from_items(items, topology=line_topology(60))
        result = ExactDistinctCountProtocol(domain_max=63).run(network)
        # Each edge carries at most a 64-bit bitmap (plus the broadcast).
        assert result.max_node_bits <= 2 * 64 + 16


class TestApproxDistinct:
    def test_estimate_accuracy(self):
        items = list(range(400))
        network = SensorNetwork.from_items(items, topology=grid_topology(20))
        outcome = ApproxDistinctCountProtocol(num_registers=256, seed=1).run(network).value
        assert abs(outcome.estimate - 400) / 400 < 0.3

    def test_duplicates_do_not_inflate_estimate(self):
        items = [11, 22, 33] * 60
        network = SensorNetwork.from_items(items, topology=grid_topology(14, 13))
        outcome = ApproxDistinctCountProtocol(num_registers=128, seed=2).run(network).value
        assert outcome.estimate < 30

    def test_cost_flat_in_distinct_count(self):
        costs = []
        for n in (64, 256):
            network = SensorNetwork.from_items(list(range(n)), topology=line_topology(n))
            result = ApproxDistinctCountProtocol(num_registers=64, seed=3).run(network)
            costs.append(result.max_node_bits)
        assert max(costs) <= 1.2 * min(costs)

    def test_cost_far_below_exact_for_large_instances(self):
        n = 256
        network = SensorNetwork.from_items(list(range(n)), topology=line_topology(n))
        exact_bits = ExactDistinctCountProtocol().run(network).max_node_bits
        network.reset_ledger()
        approx_bits = ApproxDistinctCountProtocol(num_registers=64, seed=4).run(
            network
        ).max_node_bits
        assert approx_bits < exact_bits / 4

    def test_guaranteed_factor_formula(self):
        outcome_protocol = ApproxDistinctCountProtocol(num_registers=64)
        network = SensorNetwork.from_items([1, 2, 3, 4], topology=line_topology(4))
        outcome = outcome_protocol.run(network).value
        assert outcome.guaranteed_factor == pytest.approx(3.15 / 8.0)

    def test_too_few_registers_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproxDistinctCountProtocol(num_registers=2)


class TestDisjointnessInstances:
    def test_disjoint_instance_properties(self):
        instance = make_disjoint_instance(32, seed=1)
        assert instance.disjoint
        assert instance.true_distinct_count == 64
        assert instance.num_nodes == 64

    def test_intersecting_instance_properties(self):
        instance = make_intersecting_instance(32, overlap=3, seed=2)
        assert not instance.disjoint
        assert instance.true_distinct_count == 64 - 3

    def test_overlap_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            make_intersecting_instance(8, overlap=0)
        with pytest.raises(ConfigurationError):
            make_intersecting_instance(8, overlap=9)

    def test_domain_must_fit_two_sets(self):
        with pytest.raises(ConfigurationError):
            make_disjoint_instance(32, domain_max=40)

    def test_network_embedding_is_a_line(self):
        instance = make_disjoint_instance(16, seed=3)
        network = instance.build_network()
        assert network.num_nodes == 32
        assert network.tree.height == 31
        left, right = instance.cut_edge()
        assert right == left + 1


class TestReduction:
    def test_exact_protocol_decides_disjointness_correctly(self):
        for seed in range(3):
            disjoint = make_disjoint_instance(24, seed=seed)
            overlapping = make_intersecting_instance(24, overlap=1, seed=seed)
            exact = ExactDistinctCountProtocol()
            assert solve_disjointness_via_count_distinct(disjoint, exact).correct
            assert solve_disjointness_via_count_distinct(overlapping, exact).correct

    def test_exact_protocol_moves_linear_bits_across_the_cut(self):
        small = make_disjoint_instance(16, seed=1)
        large = make_disjoint_instance(128, seed=1)
        exact = ExactDistinctCountProtocol()
        small_verdict = solve_disjointness_via_count_distinct(small, exact)
        large_verdict = solve_disjointness_via_count_distinct(large, exact)
        assert large_verdict.cut_bits >= 4 * small_verdict.cut_bits

    def test_approximate_protocol_cannot_distinguish_overlap_of_one(self):
        # The flip side of Theorem 5.1: a protocol cheap enough to avoid the
        # lower bound cannot reliably tell "disjoint" from "one shared value".
        instance = make_intersecting_instance(64, overlap=1, seed=4)
        approx = ApproxDistinctCountProtocol(num_registers=64, seed=5)
        verdict = solve_disjointness_via_count_distinct(instance, approx, tolerance=0.02)
        # Either it wrongly reports disjoint, or its count is far from exact —
        # both demonstrate it does not solve 2SD.
        assert (not verdict.correct) or (
            abs(verdict.distinct_count_reported - verdict.distinct_count_true) >= 1
        )

    def test_approximate_protocol_is_cheap_across_the_cut(self):
        instance = make_disjoint_instance(128, seed=6)
        approx = ApproxDistinctCountProtocol(num_registers=64, seed=7)
        exact = ExactDistinctCountProtocol()
        approx_verdict = solve_disjointness_via_count_distinct(instance, approx)
        exact_verdict = solve_disjointness_via_count_distinct(instance, exact)
        assert approx_verdict.cut_bits < exact_verdict.cut_bits / 4
