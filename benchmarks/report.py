"""Perf-trajectory gate: verify BENCH_*.json metrics against their floors.

Every benchmark writes a ``BENCH_<name>.json`` via
:func:`benchmarks.conftest.emit_bench_json` — problem size, wall-clock,
simulated bits, and named metrics each carrying the floor the benchmark
itself asserts.  CI uploads those files as artifacts (one per ``bench``
matrix leg) and runs this script over the collected set: it prints the
trajectory table and exits non-zero if any metric regressed below its
floor, so a savings ratio can never quietly decay.

Usage::

    python benchmarks/report.py [directory ...]

Directories are searched recursively for ``BENCH_*.json``; the default is
the current directory.
"""

from __future__ import annotations

import glob
import json
import os
import sys


def collect(paths: list[str]) -> list[dict]:
    """Load every BENCH_*.json under the given directories (recursively)."""
    reports = []
    for root in paths:
        pattern = os.path.join(root, "**", "BENCH_*.json")
        for path in sorted(glob.glob(pattern, recursive=True)):
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            payload["_path"] = path
            reports.append(payload)
    return reports


def main(argv: list[str]) -> int:
    roots = argv or ["."]
    reports = collect(roots)
    if not reports:
        print(f"no BENCH_*.json found under {roots}", file=sys.stderr)
        return 2

    failures = []
    print(f"{'bench':<12} {'n':>8} {'wall (s)':>9} {'bits':>14}  metrics")
    for report in reports:
        metrics = report.get("metrics", {})
        rendered = []
        for name, entry in sorted(metrics.items()):
            value = entry.get("value")
            floor = entry.get("floor")
            ok = floor is None or value is None or value >= floor
            status = "ok" if ok else "REGRESSED"
            rendered.append(f"{name}={value} (floor {floor}, {status})")
            if not ok:
                failures.append(
                    f"{report['name']}: {name} = {value} fell below "
                    f"its floor of {floor} ({report['_path']})"
                )
        print(
            f"{report.get('name', '?'):<12} {report.get('n', 0):>8} "
            f"{report.get('wall_clock_s', 0.0):>9} {report.get('bits', 0):>14}  "
            + ("; ".join(rendered) if rendered else "-")
        )

    if failures:
        print("\nperformance regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(reports)} benchmark report(s) within their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
