"""Polyloglog approximate median — Algorithm APX_MEDIAN2 of Fig. 4.

The key idea (Section 4.2): instead of binary-searching the *value* of the
median, search the *length* (logarithm) of the value.  Each node locally
replaces its item ``x`` by ``x̂ = floor(log2(x + 1))``, shrinking the search
domain from ``[0, X̄]`` to ``[0, O(log X̄)]``, so every probe of the
approximate order-statistic search costs only ``O(log log X̄)``-bit messages.
A single pass pins the median down to a dyadic interval
``[2^μ̂ − 1, 2^{μ̂+1} − 1)`` — constant *relative* precision.  To reach
precision β, the algorithm zooms into that interval, rescales it to the full
range ``[1, X̄]`` (Fig. 3's schematic), adjusts the target rank by the number
of discarded smaller items, and repeats for ``ceil(log2(1/β))`` stages.

Per Theorem 4.7 / Corollary 4.8 the per-node communication is
``O((log log N)³)`` bits for constant β and ε.  The length transform, the
active/passive decision and the rescaling are all node-local (the root only
broadcasts μ̂, a ``O(log log X̄)``-bit value), which the implementation mirrors
by storing the scaled value in each node's scratch state.

Implementation notes (documented deviations, none affecting the asymptotics):

* The paper's transform ``floor(log x)`` is undefined for ``x = 0``; we use
  ``floor(log2(x + 1))`` throughout, shifting the dyadic boundaries by one.
* Rescaled values are rounded down to integers so they remain valid protocol
  inputs; the rounding error is one unit of the *current* scale, which after
  ``j`` zoom-ins is at most ``2^{-j}`` of the original range — within the β
  budget the stage is already charged for.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro._util.bits import varint_bits
from repro._util.validation import require_probability
from repro.core.apx_median import ApproximateOrderStatisticProtocol
from repro.core.rep_count import RepeatedApproxCount, RepetitionPolicy
from repro.exceptions import ConfigurationError, EmptyNetworkError
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import MaxProtocol
from repro.protocols.apx_count import ApproxCountProtocol
from repro.protocols.base import MeteredRun, ProtocolResult
from repro.protocols.broadcast import broadcast
from repro.protocols.predicates import PowerThresholdPredicate

_ACTIVE_KEY = "apxm2_active"
_SCALED_KEY = "apxm2_scaled"


@dataclass(frozen=True)
class ZoomStage:
    """Diagnostics for one zoom-in iteration."""

    stage: int
    mu_hat: int
    k: float
    interval_low_scaled: int
    interval_width_scaled: int
    original_low: float
    original_scale: float
    active_estimate: float


@dataclass(frozen=True)
class PolyloglogOutcome:
    """Root-side outcome of Algorithm APX_MEDIAN2."""

    value: int
    n_estimate: float
    stages: list[ZoomStage] = field(default_factory=list)
    beta: float = 0.0
    epsilon: float = 0.0
    alpha_guarantee: float = 0.0


def _log_length(value: int) -> int:
    """The length transform x̂ = floor(log2(x + 1)) used in place of floor(log x)."""
    return int(value + 1).bit_length() - 1


class PolyloglogMedianProtocol:
    """Algorithm APX_MEDIAN2(X, β, ε): approximate median with polyloglog bits."""

    def __init__(
        self,
        beta: float = 1.0 / 16.0,
        epsilon: float = 0.25,
        num_registers: int = 256,
        repetition_policy: RepetitionPolicy | None = None,
        sketch: str = "loglog",
        domain_max: int | None = None,
        seed: int | random.Random | None = 0,
    ) -> None:
        self.beta = require_probability(beta, "beta")
        self.epsilon = require_probability(epsilon, "epsilon")
        if self.beta == 0.0 or self.epsilon == 0.0:
            raise ConfigurationError("beta and epsilon must be strictly positive")
        self.num_registers = num_registers
        self.sketch = sketch
        self.policy = (
            repetition_policy
            if repetition_policy is not None
            else RepetitionPolicy.practical()
        )
        self.domain_max = domain_max
        self._seed = seed
        self._counter = ApproxCountProtocol(
            num_registers=num_registers,
            mode="multiset",
            sketch=sketch,
            view=self._active_scaled_view,
            seed=seed,
        )
        self._rep_count = RepeatedApproxCount(
            self._counter, view=self._active_scaled_view
        )

    # ------------------------------------------------------------------ #
    # Node-local views (no communication)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _active_scaled_view(node: SensorNode) -> list[int]:
        """Scaled values of this node's items while the node is active."""
        if not node.scratch.get(_ACTIVE_KEY, False):
            return []
        return list(node.scratch.get(_SCALED_KEY, []))

    @classmethod
    def _active_length_view(cls, node: SensorNode) -> list[int]:
        """Length transform of the active scaled values (the X̂ of Fig. 4)."""
        return [_log_length(value) for value in cls._active_scaled_view(node)]

    @property
    def sigma(self) -> float:
        """Relative standard deviation of one underlying α-counting invocation."""
        return self._counter.relative_sigma

    # ------------------------------------------------------------------ #
    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute Fig. 4; the result's ``value`` is a :class:`PolyloglogOutcome`."""
        with MeteredRun(network) as metered:
            if network.total_items() == 0:
                raise EmptyNetworkError("cannot compute a median of an empty network")
            domain_max = self.domain_max
            if domain_max is None:
                # The paper assumes X̄ is known a priori; when it is not, one
                # exact MAX query (Fact 2.1, O(log N) bits) supplies it.
                domain_max = MaxProtocol().run(network).value
            domain_max = max(1, domain_max)

            # Stage 0: announce the protocol; each node initialises its scaled
            # value to its original item(s) and marks itself active.
            broadcast(
                network,
                {"query": "APX_MEDIAN2", "beta": self.beta, "epsilon": self.epsilon},
                16,
                protocol="APX_MEDIAN2",
            )
            for node in network.nodes():
                node.scratch[_ACTIVE_KEY] = bool(node.items)
                node.scratch[_SCALED_KEY] = list(node.items)

            stages_total = max(1, math.ceil(math.log2(1.0 / self.beta)))
            q0 = max(1.0, math.log2(1.0 / self.beta)) / self.epsilon
            count_repetitions = self.policy.count_repetitions(q0)

            # Line 1: approximate total count and initial target rank.
            n_estimate = self._rep_count.run(network, count_repetitions).value
            if n_estimate <= 0:
                raise EmptyNetworkError("approximate count returned zero items")
            k = n_estimate / 2.0

            # Root-side affine map: original ≈ offset + (scaled − domain_lo) · scale.
            offset = 0.0
            scale = 1.0
            domain_lo = 0.0

            stage_epsilon = min(
                0.5, self.epsilon / (2.0 * max(1.0, math.log2(1.0 / self.beta)))
            )
            stage_records: list[ZoomStage] = []

            for stage in range(1, stages_total + 1):
                # Line 3.1: approximate k-order statistic on the length domain.
                apx_os = ApproximateOrderStatisticProtocol(
                    epsilon=stage_epsilon,
                    quantile=None,
                    k=max(1.0, k),
                    num_registers=self.num_registers,
                    repetition_policy=self.policy,
                    sketch=self.sketch,
                    view=self._active_length_view,
                    domain_max=_log_length(domain_max),
                    seed=self._counter._rng,
                )
                mu_hat = max(0, int(apx_os.run(network).value.value))

                # Line 3.4 (done before deactivation so it counts over X^(j)):
                # how many currently-active items fall below the selected
                # dyadic interval.  The predicate is described by the exponent
                # alone, keeping the message polyloglog-sized.
                below_predicate = PowerThresholdPredicate(exponent=mu_hat, offset=-1)
                below_estimate = self._rep_count.run(
                    network, count_repetitions, predicate=below_predicate
                ).value

                # Selected interval in the current scaled domain (with the +1
                # shift of the length transform).
                interval_low = (1 << mu_hat) - 1
                interval_width = 1 << mu_hat

                # Line 3.1 (broadcast) + Lines 3.2/3.3: nodes learn μ̂ and
                # locally deactivate or rescale.
                broadcast(
                    network,
                    {"query": "APX_MEDIAN2_ZOOM", "mu_hat": mu_hat, "stage": stage},
                    varint_bits(mu_hat) + 4,
                    protocol="APX_MEDIAN2",
                )
                scale_num = domain_max - 1
                scale_den = max(1, interval_width - 1)
                for node in network.nodes():
                    if not node.scratch.get(_ACTIVE_KEY, False):
                        continue
                    surviving: list[int] = []
                    for value in node.scratch[_SCALED_KEY]:
                        if interval_low <= value < interval_low + interval_width:
                            if interval_width == 1:
                                surviving.append(1)
                            else:
                                rescaled = 1 + (
                                    (value - interval_low) * scale_num
                                ) // scale_den
                                surviving.append(int(rescaled))
                    if surviving:
                        node.scratch[_SCALED_KEY] = surviving
                    else:
                        node.scratch[_ACTIVE_KEY] = False
                        node.scratch[_SCALED_KEY] = []

                # Root-side affine update mirroring the node-local rescaling.
                offset = offset + (interval_low - domain_lo) * scale
                if interval_width > 1:
                    scale = scale * (interval_width - 1) / max(1, domain_max - 1)
                domain_lo = 1.0

                # Line 3.4: adjust the target rank.
                k = max(1.0, k - below_estimate)

                active_estimate = self._rep_count.run(network, 1).value
                stage_records.append(
                    ZoomStage(
                        stage=stage,
                        mu_hat=mu_hat,
                        k=k,
                        interval_low_scaled=interval_low,
                        interval_width_scaled=interval_width,
                        original_low=offset,
                        original_scale=scale,
                        active_estimate=active_estimate,
                    )
                )
                if interval_width == 1:
                    break  # The interval is a single value; no further precision to gain.
                if active_estimate <= 0:
                    # Estimation noise selected an interval that turned out to
                    # be empty; the current offset is still within the already
                    # achieved precision, so stop zooming rather than querying
                    # an empty active set.
                    break

            value = int(round(offset))
            value = max(0, min(domain_max, value))
            alpha_guarantee = 3.0 * self.sigma * max(1.0, math.log2(1.0 / self.beta))
            outcome = PolyloglogOutcome(
                value=value,
                n_estimate=n_estimate,
                stages=stage_records,
                beta=self.beta,
                epsilon=self.epsilon,
                alpha_guarantee=alpha_guarantee,
            )
        # Leave the scratch state clean for the next protocol.
        network.reset_scratch()
        return metered.result(outcome)
