"""The paper's primary contribution.

* :mod:`repro.core.definitions` — the rank function ℓ, exact and approximate
  order-statistic definitions (Definitions 2.3 and 2.4) and reference
  implementations used for verification.
* :mod:`repro.core.median` — the deterministic median algorithm of Fig. 1
  (Theorem 3.2): binary search over the value range with exact COUNTP probes.
* :mod:`repro.core.order_statistics` — the Section 3.4 generalisation to any
  k-order statistic.
* :mod:`repro.core.rep_count` — REP_COUNTP (Fig. 2's subroutine): averaging of
  repeated α-counting invocations, with the repetition policy made explicit.
* :mod:`repro.core.apx_median` — the approximate median / order-statistic
  algorithm of Fig. 2 (Theorems 4.5 and 4.6).
* :mod:`repro.core.apx_median2` — the polyloglog algorithm of Fig. 4
  (Theorem 4.7, Corollary 4.8): length reduction, zoom-in and rescaling.
"""

from repro.core.apx_median import (
    ApproximateMedianProtocol,
    ApproximateOrderStatisticProtocol,
    ApproxMedianOutcome,
)
from repro.core.apx_median2 import PolyloglogMedianProtocol, PolyloglogOutcome
from repro.core.definitions import (
    approximate_order_statistic_interval,
    is_approximate_order_statistic,
    is_median,
    is_order_statistic,
    rank,
    reference_median,
    reference_order_statistic,
)
from repro.core.median import DeterministicMedianProtocol, MedianOutcome
from repro.core.order_statistics import (
    DeterministicOrderStatisticProtocol,
    OrderStatisticOutcome,
)
from repro.core.rep_count import RepeatedApproxCount, RepetitionPolicy

__all__ = [
    "ApproximateMedianProtocol",
    "ApproximateOrderStatisticProtocol",
    "ApproxMedianOutcome",
    "PolyloglogMedianProtocol",
    "PolyloglogOutcome",
    "approximate_order_statistic_interval",
    "is_approximate_order_statistic",
    "is_median",
    "is_order_statistic",
    "rank",
    "reference_median",
    "reference_order_statistic",
    "DeterministicMedianProtocol",
    "MedianOutcome",
    "DeterministicOrderStatisticProtocol",
    "OrderStatisticOutcome",
    "RepeatedApproxCount",
    "RepetitionPolicy",
]
