"""Deterministic k-order-statistic computation (Fig. 1 + Section 3.4).

The algorithm binary-searches the value range: it first learns ``min``,
``max`` and ``N`` with the primitive protocols of Fact 2.1, then repeatedly
asks ``COUNTP(X, "< y")`` at the midpoint of the surviving interval.  After
``ceil(log(max - min)) + 1`` iterations the interval has shrunk to width one
and the order statistic is pinned down, possibly needing one final probe to
disambiguate the two neighbouring integers (Line 4.1 of Fig. 1).

Per-probe cost is ``O(log N)`` bits per node (predicate description plus one
partial count on each tree edge), and there are ``O(log N)`` probes, giving
the ``O((log N)^2)`` bound of Theorem 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError, EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import CountProtocol, MaxProtocol, MinProtocol
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.countp import CountPredicateProtocol
from repro.protocols.predicates import LessThanPredicate


@dataclass(frozen=True)
class OrderStatisticOutcome:
    """Root-side outcome of a deterministic order-statistic query."""

    value: int
    k: float
    n: int
    minimum: int
    maximum: int
    probes: int
    binary_search_iterations: int


def run_binary_search_selection(
    network: SensorNetwork,
    target_rank: Callable[[int], float],
    view: ItemView = raw_items,
    domain_max: int | None = None,
) -> ProtocolResult:
    """Shared implementation of Fig. 1, parameterised by the target rank.

    ``target_rank(n)`` maps the exact item count to the rank ``k`` that is
    searched for — ``n / 2`` for the median, a constant for a generic k-order
    statistic.  Returns a :class:`ProtocolResult` whose value is an
    :class:`OrderStatisticOutcome`.
    """
    with MeteredRun(network) as metered:
        # Line 1: primitive protocols for min, max and count.
        minimum = MinProtocol(domain_max=domain_max, view=view).run(network).value
        maximum = MaxProtocol(domain_max=domain_max, view=view).run(network).value
        n = CountProtocol(view=view).run(network).value
        if n == 0:
            raise EmptyNetworkError("cannot select from an empty input multiset")
        k = target_rank(n)
        if k <= 0 or k > n:
            raise ConfigurationError(f"target rank {k} outside (0, {n}]")

        probes = 0
        iterations = 0

        def count_below(threshold: float) -> int:
            nonlocal probes
            probes += 1
            predicate = LessThanPredicate(
                threshold=threshold,
                domain_max=domain_max if domain_max is not None else maximum,
            )
            return CountPredicateProtocol(predicate, view=view).run(network).value

        if maximum == minimum:
            # Degenerate range: every item has the same value, which is the
            # k-order statistic for every valid k.
            outcome = OrderStatisticOutcome(
                value=minimum,
                k=k,
                n=n,
                minimum=minimum,
                maximum=maximum,
                probes=probes,
                binary_search_iterations=0,
            )
            return metered.result(outcome)

        # Line 2: start in the middle of the value range, with a radius that
        # covers the whole range.
        spread = maximum - minimum
        y = (maximum + minimum) / 2.0
        z = float(1 << max(0, (spread - 1).bit_length() - 1)) if spread > 1 else 0.5

        # Line 3: binary search on the value range.
        while z > 0.5:
            iterations += 1
            if count_below(y) < k:
                y += z / 2.0
            else:
                y -= z / 2.0
            z /= 2.0

        # Line 4: resolve the final half-integer ambiguity.
        if float(y).is_integer():
            value = int(y)
        else:
            upper = int(y) + 1
            if count_below(float(upper)) < k:
                value = upper
            else:
                value = int(y)

        outcome = OrderStatisticOutcome(
            value=value,
            k=k,
            n=n,
            minimum=minimum,
            maximum=maximum,
            probes=probes,
            binary_search_iterations=iterations,
        )
    return metered.result(outcome)


class DeterministicOrderStatisticProtocol:
    """Exact k-order statistic by binary search over the value range.

    ``k`` may be given as an absolute rank (``k=25``) or as a fraction of the
    item count (``quantile=0.25``); exactly one must be supplied.
    """

    def __init__(
        self,
        k: float | None = None,
        quantile: float | None = None,
        view: ItemView = raw_items,
        domain_max: int | None = None,
    ) -> None:
        if (k is None) == (quantile is None):
            raise ConfigurationError("exactly one of k and quantile must be given")
        if quantile is not None and not 0.0 < quantile <= 1.0:
            raise ConfigurationError(f"quantile must lie in (0, 1], got {quantile}")
        if k is not None and k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.k = k
        self.quantile = quantile
        self._view = view
        self._domain_max = domain_max

    def run(self, network: SensorNetwork) -> ProtocolResult:
        def target(n: int) -> float:
            if self.k is not None:
                return float(self.k)
            return self.quantile * n

        return run_binary_search_selection(
            network, target, view=self._view, domain_max=self._domain_max
        )
