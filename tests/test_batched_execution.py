"""Unit tests for the batched execution core.

Covers the flat-tree representation, batch charging and ledger marks, the
radio batch filter, and the batched send primitives on the simulator.  The
cross-path ledger equivalence property is in
``tests/test_execution_equivalence.py``.
"""

import pytest

from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    TopologyError,
)
from repro.network.accounting import CommunicationLedger
from repro.network.flat_tree import FlatTree
from repro.network.radio import (
    DELIVERED_ONCE,
    DeliveryOutcome,
    LossyRadio,
    RadioModel,
    ReliableRadio,
)
from repro.network.simulator import EXECUTION_MODES, SensorNetwork
from repro.network.topology import (
    grid_topology,
    line_topology,
    random_geometric_topology,
    star_topology,
)
from repro.protocols.base import MeteredRun


def build_network(num_nodes=25, topology="grid", **kwargs):
    return SensorNetwork.from_items(
        list(range(num_nodes)), topology=topology, **kwargs
    )


class TestFlatTree:
    @pytest.fixture(
        params=[
            grid_topology(5, 5),
            line_topology(12),
            star_topology(9),
            random_geometric_topology(30, seed=7),
        ],
        ids=["grid", "line", "star", "geometric"],
    )
    def network(self, request):
        items = list(range(request.param.number_of_nodes()))
        return SensorNetwork.from_items(items, topology=request.param)

    def test_matches_spanning_tree_structure(self, network):
        tree = network.tree
        flat = network.flat_tree
        assert flat.num_nodes == tree.num_nodes
        assert flat.height == tree.height
        assert flat.root_id == tree.root
        assert flat.node_ids[0] == tree.root
        for position, node_id in enumerate(flat.node_ids):
            assert flat.depth[position] == tree.depth[node_id]
            parent = tree.parent[node_id]
            if parent is None:
                assert flat.parent[position] == -1
                assert flat.parent_id(node_id) is None
            else:
                assert flat.node_ids[flat.parent[position]] == parent
                assert flat.parent_id(node_id) == parent
            children = [
                flat.node_ids[child] for child in flat.children_of(position)
            ]
            assert children == tree.children[node_id]

    def test_traversal_orders_match_spanning_tree(self, network):
        tree = network.tree
        flat = network.flat_tree
        assert list(flat.nodes_bottom_up()) == tree.nodes_bottom_up()
        assert flat.nodes_top_down() == tree.nodes_top_down()

    def test_level_spans_partition_canonical_order(self, network):
        flat = network.flat_tree
        covered = []
        for depth, (start, end) in enumerate(flat.level_spans):
            assert start <= end
            for position in range(start, end):
                assert flat.depth[position] == depth
            covered.extend(range(start, end))
        assert covered == list(range(flat.num_nodes))

    def test_up_links_are_bottom_up_child_parent_edges(self, network):
        tree = network.tree
        flat = network.flat_tree
        expected = [
            (node_id, tree.parent[node_id])
            for node_id in tree.nodes_bottom_up()
            if tree.parent[node_id] is not None
        ]
        assert flat.up_links == expected

    def test_down_links_are_top_down_fanout_edges(self, network):
        tree = network.tree
        flat = network.flat_tree
        expected = [
            (node_id, child)
            for node_id in tree.nodes_top_down()
            for child in tree.children[node_id]
        ]
        assert flat.down_links == expected

    def test_cache_invalidated_by_rebuild(self):
        network = build_network(20, topology="single_hop")
        first = network.flat_tree
        assert network.flat_tree is first  # cached
        network.rebuild_tree(degree_bound=None)
        rebuilt = network.flat_tree
        assert rebuilt is not first
        assert list(rebuilt.nodes_bottom_up()) == network.tree.nodes_bottom_up()

    def test_from_spanning_tree_alias(self):
        network = build_network(9)
        flat = FlatTree.from_spanning_tree(network.tree)
        assert flat.node_ids == network.flat_tree.node_ids


class TestChargeBatch:
    def test_matches_sequential_charges(self):
        batched = CommunicationLedger()
        sequential = CommunicationLedger()
        links = [(0, 1), (1, 2), (0, 1), (2, 3)]
        sizes = [8, 16, 24, 32]
        copies = [1, 2, 1, 3]
        batched.charge_batch(links, sizes, copies, protocol="P")
        for (sender, receiver), size, count in zip(links, sizes, copies):
            for _ in range(count):
                sequential.charge(sender, receiver, size, protocol="P")
        assert batched.snapshot() == sequential.snapshot()

    def test_copies_none_means_once_each(self):
        ledger = CommunicationLedger()
        ledger.charge_batch([(0, 1), (1, 0)], [10, 20])
        assert ledger.total_bits == 30
        assert ledger.total_messages == 2
        assert ledger.node_bits(0) == 30
        assert ledger.node_bits(1) == 30

    def test_zero_copies_skipped(self):
        ledger = CommunicationLedger()
        ledger.charge_batch([(0, 1), (1, 2)], [10, 10], [0, 1])
        assert ledger.total_bits == 10
        assert ledger.total_messages == 1
        assert ledger.node_bits(0) == 0

    def test_negative_size_rejected(self):
        ledger = CommunicationLedger()
        with pytest.raises(Exception):
            ledger.charge_batch([(0, 1)], [-1])

    def test_budget_enforced_in_batch(self):
        ledger = CommunicationLedger(per_node_budget_bits=30)
        with pytest.raises(BudgetExceededError):
            ledger.charge_batch([(0, 1), (0, 1)], [20, 20])
        # The first transmission was committed before the breach, exactly as
        # on the per-edge path.
        assert ledger.node_bits(0) == 40

    def test_total_bits_counter_consistent(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 5)
        ledger.charge_batch([(1, 2)], [7], [2])
        assert ledger.total_bits == 5 + 14
        assert ledger.snapshot().total_bits == ledger.total_bits

    def test_empty_batch_leaves_no_trace(self):
        ledger = CommunicationLedger()
        ledger.charge_batch([], [], protocol="P")
        ledger.charge_batch([(0, 1)], [8], [0], protocol="Q")  # all skipped
        assert ledger.per_protocol_bits() == {}
        assert ledger.snapshot() == CommunicationLedger().snapshot()

    def test_counters_snapshot_matches_totals_without_per_node_copy(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 12, protocol="P")
        ledger.advance_round(2)
        cheap = ledger.counters_snapshot()
        full = ledger.snapshot()
        assert cheap.total_bits == full.total_bits
        assert cheap.messages == full.messages
        assert cheap.rounds == full.rounds
        assert cheap.per_protocol_bits == full.per_protocol_bits
        assert cheap.per_node_bits == {}

    def test_mid_batch_bad_size_mutates_nothing(self):
        ledger = CommunicationLedger()
        with pytest.raises(Exception):
            ledger.charge_batch([(0, 1), (1, 2)], [8, -4])
        # Sizes are validated up front, so the ledger stays untouched and
        # internally consistent (totals match per-node counters).
        assert ledger.total_bits == 0
        assert ledger.max_node_bits == 0
        assert ledger.total_messages == 0


class TestLedgerMarks:
    def test_deltas_cover_touched_nodes_only(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 100)
        mark = ledger.mark()
        ledger.charge(1, 2, 8)
        deltas = ledger.node_deltas_since(mark)
        assert deltas == {1: 8, 2: 8}
        assert ledger.max_node_delta_since(mark) == 8
        assert 0 not in deltas  # untouched during the interval

    def test_nested_marks_measure_their_own_intervals(self):
        ledger = CommunicationLedger()
        outer = ledger.mark()
        ledger.charge(0, 1, 10)
        inner = ledger.mark()
        ledger.charge(0, 1, 5)
        assert ledger.max_node_delta_since(inner) == 5
        assert ledger.max_node_delta_since(outer) == 15
        ledger.release(inner)
        ledger.release(outer)

    def test_release_is_idempotent_and_preserves_baselines(self):
        ledger = CommunicationLedger()
        mark = ledger.mark()
        ledger.charge(3, 4, 6)
        ledger.release(mark)
        ledger.release(mark)
        assert ledger.node_deltas_since(mark) == {3: 6, 4: 6}
        # New traffic after release is no longer tracked by the mark.
        ledger.charge(5, 6, 9)
        assert 5 not in ledger.node_deltas_since(mark)

    def test_reset_rebases_active_marks(self):
        ledger = CommunicationLedger()
        ledger.charge(0, 1, 50)
        mark = ledger.mark()
        ledger.reset()
        ledger.charge(0, 1, 4)
        assert ledger.max_node_delta_since(mark) == 4
        assert ledger.total_bits - mark.total_bits == 4

    def test_merge_records_baselines_for_active_marks(self):
        ledger = CommunicationLedger()
        other = CommunicationLedger()
        other.charge(7, 8, 12)
        mark = ledger.mark()
        ledger.merge(other)
        assert ledger.node_deltas_since(mark) == {7: 12, 8: 12}
        assert ledger.total_bits - mark.total_bits == 12

    def test_metered_run_uses_marks(self):
        network = build_network(9)
        with MeteredRun(network) as metered:
            network.send(0, 1, "x", 32, protocol="T")
            result = metered.result("answer")
        assert result.value == "answer"
        assert result.total_bits == 32
        assert result.max_node_bits == 32
        assert result.messages == 1


class TestFilterBatch:
    def test_reliable_radio_shares_singleton_outcome(self):
        outcomes = ReliableRadio().filter_batch([(0, 1), (1, 2)])
        assert list(outcomes) == [DELIVERED_ONCE, DELIVERED_ONCE]

    def test_lossy_radio_batch_matches_sequential_transmits(self):
        links = [(i, i + 1) for i in range(200)]
        batch_radio = LossyRadio(loss_rate=0.4, seed=11)
        sequential_radio = LossyRadio(loss_rate=0.4, seed=11)
        batched = list(batch_radio.filter_batch(links))
        sequential = [sequential_radio.transmit(s, r) for s, r in links]
        assert batched == sequential

    def test_custom_radio_falls_back_to_transmit_in_order(self):
        calls = []

        class Recorder(RadioModel):
            def transmit(self, sender, receiver):
                calls.append((sender, receiver))
                return DeliveryOutcome(attempts=1, copies_delivered=1)

        links = [(0, 1), (2, 3), (4, 5)]
        outcomes = Recorder().filter_batch(links)
        assert calls == links
        assert len(outcomes) == 3


class TestBatchedSendPrimitives:
    def test_send_batch_charges_like_sends(self):
        batched = build_network(9)
        reference = build_network(9)
        links = [(0, 1), (1, 2)]
        sizes = [8, 24]
        batched.send_batch(links, sizes, protocol="T")
        for (sender, receiver), size in zip(links, sizes):
            reference.send(sender, receiver, "x", size, protocol="T")
        assert batched.ledger.snapshot() == reference.ledger.snapshot()

    def test_send_batch_validates_lengths(self):
        network = build_network(4, topology="line")
        with pytest.raises(ConfigurationError):
            network.send_batch([(0, 1)], [8, 8])

    def test_send_batch_validates_nodes_and_edges(self):
        network = build_network(4, topology="line")
        with pytest.raises(ConfigurationError):
            network.send_batch([(0, 99)], [8])
        with pytest.raises(TopologyError):
            network.send_batch([(0, 2)], [8])
        # Unknown endpoints fail fast even when the edge check is waived.
        with pytest.raises(ConfigurationError):
            network.send_batch([(0, 99)], [8], require_edge=False)
        assert network.ledger.total_bits == 0
        assert 99 not in set(network.ledger.nodes())

    def test_send_up_tree_rejects_root_and_unknown(self):
        network = build_network(4, topology="line")
        with pytest.raises(ConfigurationError):
            network.send_up_tree([(network.root_id, 8)])
        with pytest.raises(ConfigurationError):
            network.send_up_tree([(99, 8)])

    def test_send_up_tree_charges_child_parent_edge(self):
        network = build_network(4, topology="line")
        copies = network.send_up_tree([(2, 16)], protocol="UP")
        assert copies == [1]
        parent = network.tree.parent[2]
        assert network.ledger.node_bits(2) == 16
        assert network.ledger.node_bits(parent) == 16

    def test_send_down_tree_fans_out_to_children(self):
        network = build_network(7, topology="single_hop", degree_bound=None)
        deliveries = network.send_down_tree([(network.root_id, 8)], protocol="DOWN")
        assert [child for child, _ in deliveries] == network.tree.children[
            network.root_id
        ]
        assert all(copies == 1 for _, copies in deliveries)

    def test_lossy_send_batch_matches_per_edge_charges(self):
        links = [(0, 1), (1, 2), (2, 3)] * 10
        sizes = [8] * len(links)
        batched = build_network(4, topology="line", radio=LossyRadio(0.5, seed=3))
        reference = build_network(4, topology="line", radio=LossyRadio(0.5, seed=3))
        batched.send_batch(links, sizes, protocol="T")
        for (sender, receiver), size in zip(links, sizes):
            reference.send(sender, receiver, "x", size, protocol="T")
        assert batched.ledger.snapshot() == reference.ledger.snapshot()


class TestExecutionMode:
    def test_default_is_batched(self):
        assert build_network(4, topology="line").execution == "batched"

    def test_modes_validated(self):
        network = build_network(4, topology="line")
        with pytest.raises(ConfigurationError):
            network.execution = "warp-speed"
        with pytest.raises(ConfigurationError):
            SensorNetwork.from_items([1, 2], topology="line", execution="bogus")
        for mode in EXECUTION_MODES:
            network.execution = mode

    def test_node_ids_sorted_and_mutation_safe(self):
        network = build_network(16)
        first = network.node_ids()
        assert first == sorted(first)
        first.reverse()  # callers may mutate their copy freely
        assert network.node_ids() == sorted(network.node_ids())
        assert [node.node_id for node in network.nodes()] == network.node_ids()
