"""Tests for the quantile summaries (GK, q-digest), sampling and AMS sketches."""

import random

import pytest

from repro.core.definitions import rank, reference_median
from repro.exceptions import ConfigurationError
from repro.sketches.ams import AmsF2Sketch
from repro.sketches.gk_summary import GKSummary
from repro.sketches.qdigest import QDigest
from repro.sketches.sampling import MergeableSample


def _rank_error(items, estimate, quantile=0.5):
    target = quantile * len(items)
    return abs(rank(items, estimate) - target) / len(items)


class TestGKSummary:
    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            GKSummary(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            GKSummary(epsilon=1.5)

    def test_exactish_on_small_input(self):
        values = [5, 1, 9, 3, 7]
        summary = GKSummary.from_values(values, epsilon=0.01)
        assert _rank_error(values, summary.median()) <= 0.2

    def test_median_rank_error_bounded(self):
        rng = random.Random(0)
        values = [rng.randrange(0, 100_000) for _ in range(2000)]
        summary = GKSummary.from_values(values, epsilon=0.05)
        assert _rank_error(values, summary.median()) < 0.15

    def test_summary_much_smaller_than_input(self):
        rng = random.Random(1)
        values = [rng.randrange(0, 100_000) for _ in range(5000)]
        summary = GKSummary.from_values(values, epsilon=0.05)
        assert summary.size < len(values) / 5

    def test_merge_preserves_count_and_accuracy(self):
        rng = random.Random(2)
        left = [rng.randrange(0, 10_000) for _ in range(1000)]
        right = [rng.randrange(0, 10_000) for _ in range(1000)]
        merged = GKSummary.from_values(left, 0.05).merge(
            GKSummary.from_values(right, 0.05)
        )
        assert merged.count == 2000
        assert _rank_error(left + right, merged.median()) < 0.2

    def test_quantile_queries_monotone(self):
        rng = random.Random(3)
        values = [rng.randrange(0, 100_000) for _ in range(3000)]
        summary = GKSummary.from_values(values, epsilon=0.05)
        results = [summary.query(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert results == sorted(results)

    def test_query_bounds_validated(self):
        summary = GKSummary.from_values([1, 2, 3], epsilon=0.1)
        with pytest.raises(ConfigurationError):
            summary.query(1.5)

    def test_empty_query_rejected(self):
        with pytest.raises(ConfigurationError):
            GKSummary(epsilon=0.1).query(0.5)

    def test_rank_bounds_bracket_true_rank(self):
        values = list(range(100))
        summary = GKSummary.from_values(values, epsilon=0.05)
        low, high = summary.rank_bounds(50)
        assert low <= 51 <= high + 10  # generous: bounds are approximate

    def test_serialized_bits_scale_with_size(self):
        summary = GKSummary.from_values(list(range(500)), epsilon=0.02)
        assert summary.serialized_bits(1000, 500) > summary.size * 10


class TestQDigest:
    def test_requires_positive_universe(self):
        with pytest.raises(Exception):
            QDigest(universe_size=0)

    def test_value_outside_universe_rejected(self):
        digest = QDigest(universe_size=16)
        with pytest.raises(ConfigurationError):
            digest.add(16)

    def test_total_tracks_insertions(self):
        digest = QDigest(universe_size=64)
        for value in [1, 5, 5, 63]:
            digest.add(value)
        assert digest.total == 4

    def test_median_accuracy_uniform(self):
        rng = random.Random(4)
        universe = 1 << 12
        values = [rng.randrange(0, universe) for _ in range(2000)]
        digest = QDigest.from_values(values, universe_size=universe, compression=64)
        assert _rank_error(values, digest.median()) < 0.2

    def test_compression_bounds_size(self):
        rng = random.Random(5)
        universe = 1 << 12
        values = [rng.randrange(0, universe) for _ in range(4000)]
        digest = QDigest.from_values(values, universe_size=universe, compression=16)
        assert digest.size < 500

    def test_merge_total(self):
        universe = 256
        a = QDigest.from_values([1, 2, 3], universe_size=universe)
        b = QDigest.from_values([100, 200], universe_size=universe)
        merged = a.merge(b)
        assert merged.total == 5

    def test_merge_universe_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            QDigest(universe_size=16).merge(QDigest(universe_size=32))

    def test_quantile_bounds_validated(self):
        digest = QDigest.from_values([1, 2, 3], universe_size=8)
        with pytest.raises(ConfigurationError):
            digest.quantile(-0.1)

    def test_empty_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            QDigest(universe_size=8).quantile(0.5)

    def test_quantiles_monotone(self):
        rng = random.Random(6)
        universe = 1 << 10
        values = [rng.randrange(0, universe) for _ in range(1000)]
        digest = QDigest.from_values(values, universe_size=universe, compression=64)
        results = [digest.quantile(q) for q in (0.1, 0.5, 0.9)]
        assert results == sorted(results)


class TestMergeableSample:
    def test_capacity_enforced(self):
        sample = MergeableSample(capacity=8)
        for value in range(100):
            sample.add(value, origin=value)
        assert sample.size == 8
        assert sample.observed == 100

    def test_merge_collapses_duplicates(self):
        a = MergeableSample(capacity=16, salt=1)
        b = MergeableSample(capacity=16, salt=1)
        for value in range(10):
            a.add(value, origin=value)
            b.add(value, origin=value)
        merged = a.merge(b)
        assert merged.size == 10  # identical (origin, value) pairs collapse

    def test_merge_incompatible_rejected(self):
        with pytest.raises(ConfigurationError):
            MergeableSample(capacity=4).merge(MergeableSample(capacity=8))

    def test_sample_is_roughly_uniform(self):
        # Values 0..999; a bottom-k sample's median should land near 500.
        sample = MergeableSample(capacity=128, salt=7)
        for value in range(1000):
            sample.add(value, origin=value)
        assert 300 < sample.sample_median() < 700

    def test_sample_median_matches_reference_when_everything_fits(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        sample = MergeableSample(capacity=100)
        for index, value in enumerate(values):
            sample.add(value, origin=index)
        assert sample.sample_median() == reference_median(values)

    def test_empty_median_rejected(self):
        with pytest.raises(ConfigurationError):
            MergeableSample(capacity=4).sample_median()

    def test_quantile_bounds_validated(self):
        sample = MergeableSample(capacity=4)
        sample.add(1, origin=0)
        with pytest.raises(ConfigurationError):
            sample.sample_quantile(2.0)

    def test_serialized_bits_grow_with_sample(self):
        small = MergeableSample(capacity=4)
        large = MergeableSample(capacity=64)
        for value in range(100):
            small.add(value, origin=value)
            large.add(value, origin=value)
        assert large.serialized_bits(1000, 100) > small.serialized_bits(1000, 100)


class TestAmsSketch:
    def test_counter_group_divisibility_enforced(self):
        with pytest.raises(ValueError):
            AmsF2Sketch(num_counters=10, num_groups=4)

    def test_f2_of_distinct_items_is_about_n(self):
        sketch = AmsF2Sketch(num_counters=128, num_groups=8, salt=1)
        n = 500
        for value in range(n):
            sketch.add_item(value)
        estimate = sketch.estimate()
        assert 0.5 * n <= estimate <= 2.0 * n

    def test_f2_grows_quadratically_with_multiplicity(self):
        flat = AmsF2Sketch(num_counters=128, num_groups=8, salt=2)
        skewed = AmsF2Sketch(num_counters=128, num_groups=8, salt=2)
        for value in range(100):
            flat.add_item(value)
        skewed.add_item(0, count=100)
        # F2(flat) = 100, F2(skewed) = 10_000.
        assert skewed.estimate() > 10 * flat.estimate()

    def test_merge_is_linear(self):
        a = AmsF2Sketch(num_counters=64, num_groups=8, salt=3)
        b = AmsF2Sketch(num_counters=64, num_groups=8, salt=3)
        combined = AmsF2Sketch(num_counters=64, num_groups=8, salt=3)
        for value in range(50):
            a.add_item(value)
            combined.add_item(value)
        for value in range(50, 120):
            b.add_item(value)
            combined.add_item(value)
        assert a.merge(b).counters == combined.counters

    def test_merge_incompatible_rejected(self):
        with pytest.raises(ValueError):
            AmsF2Sketch(num_counters=64, salt=1).merge(AmsF2Sketch(num_counters=64, salt=2))
