"""Tests for the deterministic median and order-statistic protocols (Fig. 1)."""

import math

import pytest

from repro.core.median import DeterministicMedianProtocol
from repro.core.order_statistics import DeterministicOrderStatisticProtocol
from repro.core.definitions import reference_median, reference_order_statistic
from repro.exceptions import ConfigurationError, EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.network.topology import (
    grid_topology,
    line_topology,
    random_geometric_topology,
    single_hop_topology,
    star_topology,
)
from repro.workloads.generators import generate_workload


def _network(items, topology=None):
    if topology is None:
        side = max(1, math.isqrt(len(items)))
        while side * side < len(items):
            side += 1
        topology = grid_topology(side)
        # Trim the grid is not possible; instead use a line when sizes mismatch.
        if topology.number_of_nodes() != len(items):
            topology = line_topology(len(items))
    return SensorNetwork.from_items(items, topology=topology)


class TestMedianCorrectness:
    @pytest.mark.parametrize(
        "items",
        [
            [5],
            [5, 9],
            [9, 5],
            [1, 2, 3],
            [3, 1, 2],
            [1, 2, 3, 4],
            [7, 7, 7, 7, 7],
            [0, 0, 0, 1],
            [0, 1_000_000],
            [13, 5, 8, 21, 3, 34, 1, 2, 55],
            list(range(100)),
            list(range(100, 0, -1)),
        ],
    )
    def test_matches_reference(self, items):
        network = _network(items, topology=line_topology(len(items)))
        result = DeterministicMedianProtocol().run(network)
        assert result.value.median == reference_median(items)

    @pytest.mark.parametrize(
        "workload", ["uniform", "zipf", "clustered", "bimodal", "adversarial_near_median"]
    )
    def test_matches_reference_on_workloads(self, workload):
        items = generate_workload(workload, 81, max_value=50_000, seed=3)
        network = _network(items, topology=grid_topology(9))
        result = DeterministicMedianProtocol(domain_max=50_000).run(network)
        assert result.value.median == reference_median(items)

    @pytest.mark.parametrize(
        "topology_factory",
        [
            lambda n: line_topology(n),
            lambda n: single_hop_topology(n),
            lambda n: star_topology(n),
            lambda n: random_geometric_topology(n, seed=5),
        ],
    )
    def test_topology_independent(self, topology_factory):
        items = generate_workload("uniform", 49, max_value=10_000, seed=4)
        network = SensorNetwork.from_items(items, topology=topology_factory(49))
        result = DeterministicMedianProtocol().run(network)
        assert result.value.median == reference_median(items)

    def test_multiple_items_per_node(self):
        network = SensorNetwork.from_items([0, 0, 0], topology=line_topology(3))
        network.assign_items({0: [10, 20], 1: [30], 2: [40, 50, 60]})
        items = [10, 20, 30, 40, 50, 60]
        result = DeterministicMedianProtocol().run(network)
        assert result.value.median == reference_median(items)

    def test_empty_network_rejected(self):
        network = SensorNetwork.from_items([1], topology=line_topology(1))
        network.clear_items()
        with pytest.raises(EmptyNetworkError):
            DeterministicMedianProtocol().run(network)

    def test_outcome_metadata(self):
        items = [4, 8, 15, 16, 23, 42]
        network = _network(items, topology=line_topology(6))
        outcome = DeterministicMedianProtocol().run(network).value
        assert outcome.n == 6
        assert outcome.minimum == 4
        assert outcome.maximum == 42
        assert outcome.probes >= outcome.binary_search_iterations


class TestMedianComplexity:
    """Theorem 3.2: O(log N) probes and O((log N)^2) bits per node."""

    def test_probe_count_is_logarithmic_in_spread(self):
        items = generate_workload("uniform", 64, max_value=(1 << 16), seed=1)
        network = _network(items, topology=grid_topology(8))
        outcome = DeterministicMedianProtocol().run(network).value
        spread = outcome.maximum - outcome.minimum
        assert outcome.binary_search_iterations <= math.ceil(math.log2(spread)) + 1

    def test_per_node_bits_grow_polylogarithmically(self):
        costs = {}
        for side in (5, 10, 20):
            n = side * side
            items = generate_workload("uniform", n, max_value=n * n, seed=2)
            network = SensorNetwork.from_items(items, topology=grid_topology(side))
            result = DeterministicMedianProtocol(domain_max=n * n).run(network)
            costs[n] = result.max_node_bits
        # N grows 16x from 25 to 400; (log N)^2 grows ~3.5x.  Allow head-room
        # but rule out linear growth (which would be 16x).
        assert costs[400] / costs[25] < 6

    def test_far_cheaper_than_item_count_times_width(self):
        # At N = 400 the binary-search protocol already undercuts the
        # ship-all-values cost (N log X̄ bits at a node adjacent to the root)
        # by a comfortable factor, and the gap widens with N (experiment E8).
        n = 400
        items = generate_workload("uniform", n, max_value=n * n, seed=3)
        network = SensorNetwork.from_items(items, topology=grid_topology(20))
        result = DeterministicMedianProtocol(domain_max=n * n).run(network)
        naive_bits = n * math.ceil(math.log2(n * n))
        assert result.max_node_bits < naive_bits / 3


class TestOrderStatistics:
    @pytest.mark.parametrize("k", [1, 2, 5, 9, 13, 17])
    def test_absolute_rank(self, k):
        items = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2]
        network = _network(items, topology=line_topology(len(items)))
        result = DeterministicOrderStatisticProtocol(k=k).run(network)
        assert result.value.value == reference_order_statistic(items, k)

    @pytest.mark.parametrize("quantile", [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0])
    def test_quantiles(self, quantile):
        items = generate_workload("uniform", 100, max_value=10_000, seed=6)
        network = SensorNetwork.from_items(items, topology=grid_topology(10))
        result = DeterministicOrderStatisticProtocol(quantile=quantile).run(network)
        assert result.value.value == reference_order_statistic(items, quantile * 100)

    def test_min_and_max_as_order_statistics(self):
        items = [42, 17, 99, 3, 56]
        network = _network(items, topology=line_topology(5))
        low = DeterministicOrderStatisticProtocol(k=1).run(network).value.value
        high = DeterministicOrderStatisticProtocol(k=5).run(network).value.value
        assert low == min(items)
        assert high == max(items)

    def test_requires_exactly_one_target(self):
        with pytest.raises(ConfigurationError):
            DeterministicOrderStatisticProtocol()
        with pytest.raises(ConfigurationError):
            DeterministicOrderStatisticProtocol(k=3, quantile=0.5)

    def test_invalid_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicOrderStatisticProtocol(k=0)
        with pytest.raises(ConfigurationError):
            DeterministicOrderStatisticProtocol(quantile=1.5)

    def test_k_beyond_item_count_rejected_at_runtime(self):
        items = [1, 2, 3]
        network = _network(items, topology=line_topology(3))
        with pytest.raises(ConfigurationError):
            DeterministicOrderStatisticProtocol(k=10).run(network)

    def test_duplicate_heavy_input(self):
        items = [5] * 40 + [9] * 10
        network = _network(items, topology=line_topology(50))
        for quantile in (0.2, 0.5, 0.79, 0.9):
            network.reset_ledger()
            result = DeterministicOrderStatisticProtocol(quantile=quantile).run(network)
            assert result.value.value == reference_order_statistic(items, quantile * 50)
