"""A standalone million-node sensor field on contiguous numpy state.

:class:`~repro.network.SensorNetwork` carries a networkx graph, per-node
``Node`` objects and a radio model — the full simulation fidelity the
correctness suites need, at a per-node Python cost that caps practical runs
around 10⁵ nodes.  :class:`VectorField` is the production-scale
counterpart for the paper's *continuous monitoring* regime: a field whose
structure is a :class:`~repro.network.FlatTree` (parent / child-span /
level arrays as contiguous ``int64`` buffers), whose per-node state is a
handful of ``int64``/bool columns, and whose per-epoch work is the fused
sweep chain

1. **detect** — one heartbeat charge over every alive tree edge
   (:func:`repro.faults.detection.heartbeat_sweep_vectorized`),
2. **repair** — the attach sweep recomputing root connectivity from the
   alive mask (:func:`repro.faults.repair.attached_mask_vectorized`),
3. **stream** — the change-driven convergecast with ε-suppression and
   delta-sized frames (:func:`repro.streaming.vector_kernels.sweep_levels`),

each phase running as whole-array level passes and charging the
:class:`~repro.network.ArrayLedger` in one batch per level.  The bit
accounting is the same arithmetic the reference engine performs per node:
a count summary costs ``varint_bits(v) + 1`` on first transmission and
``1 + min(delta, full)`` afterwards, heartbeats cost
:data:`~repro.faults.detection.HEARTBEAT_BITS` per edge, and one ledger
round advances per swept level — so the ledger, read through the usual
telemetry spans, is directly comparable with the simulator-backed runs.

Perfect links only: there is no radio model at this scale (the lossy /
duplicating radios draw per-link randomness, which is exactly the per-link
cost this class exists to avoid).  For radio-faithful vectorized execution
over a real :class:`~repro.network.SensorNetwork`, use
:class:`repro.streaming.vector_engine.VectorStreamEngine`.
"""

from __future__ import annotations

from typing import Any

from repro._util.fastpath import np, require_numpy
from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError
from repro.network.accounting import ArrayLedger
from repro.network.flat_tree import FlatTree
from repro.telemetry import NULL_RECORDER


class _FieldQuery:
    """Per-query state: sweep columns plus the ε-slack bookkeeping."""

    __slots__ = ("state", "initialized", "scale", "forced")

    def __init__(self, num_nodes: int) -> None:
        from repro.streaming.vector_kernels import SweepState

        self.state = SweepState.zeros(num_nodes)
        self.initialized = False
        self.scale = 0.0
        #: Positions forced active next sweep (attach-frontier corrections).
        self.forced = np.zeros(num_nodes, dtype=bool)


class VectorField:
    """A tree-structured sensor field held entirely in numpy columns."""

    protocol_prefix = "stream"

    def __init__(
        self,
        flat: FlatTree,
        *,
        epsilon: float = 0.1,
        telemetry=None,
    ) -> None:
        require_numpy("VectorField")
        if epsilon < 0:
            raise ConfigurationError(f"epsilon must be non-negative, got {epsilon}")
        self.flat = flat
        self.num_nodes = flat.num_nodes
        self.epsilon = epsilon
        self.ledger = ArrayLedger(self.num_nodes)
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        self.telemetry.bind_ledger(self.ledger)
        self.alive = np.ones(self.num_nodes, dtype=bool)
        self.attached = np.ones(self.num_nodes, dtype=bool)
        #: Per-node local reading count (the COUNT summary's local value).
        self.counts = np.zeros(self.num_nodes, dtype=np.int64)
        self._queries: dict[str, _FieldQuery] = {}
        self.answers: dict[str, int] = {}
        self.epoch = 0
        self.records: list[dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def balanced(
        cls, num_nodes: int, branching: int = 8, **kwargs
    ) -> "VectorField":
        """A complete ``branching``-ary tree over ids ``0..num_nodes-1``.

        Built through :meth:`FlatTree.from_arrays` — no networkx graph, no
        per-node objects — so a million-node field assembles in tens of
        milliseconds.
        """
        npmod = require_numpy("VectorField.balanced")
        require_positive(num_nodes, "num_nodes")
        require_positive(branching, "branching")
        parents = npmod.empty(num_nodes, dtype=npmod.int64)
        parents[0] = -1
        if num_nodes > 1:
            parents[1:] = (npmod.arange(1, num_nodes, dtype=npmod.int64) - 1) // branching
        return cls(FlatTree.from_arrays(parents), **kwargs)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def register_count_query(self, name: str, announce: bool = True) -> None:
        """Register a standing COUNT query; optionally charge the broadcast.

        The announcement mirrors the reference engine's registration: one
        :data:`~repro.streaming.queries.REGISTRATION_BITS` frame per tree
        edge, root-to-leaves, plus one ledger round per level.
        """
        from repro.streaming.queries import REGISTRATION_BITS

        if name in self._queries:
            raise ConfigurationError(f"query {name!r} is already registered")
        self._queries[name] = _FieldQuery(self.num_nodes)
        if announce and self.num_nodes > 1:
            flat = self.flat
            ids = flat.ids_array
            child_counts = flat.child_end - flat.child_start
            senders = ids[np.repeat(np.arange(self.num_nodes), child_counts)]
            receivers = ids[flat.child_index]
            sizes = np.full(receivers.size, REGISTRATION_BITS, dtype=np.int64)
            self.ledger.charge_array(
                senders,
                receivers,
                sizes,
                protocol=f"{self.protocol_prefix}:{name}:register",
            )
            self.ledger.advance_round(flat.height)

    # ------------------------------------------------------------------ #
    # Faults
    # ------------------------------------------------------------------ #
    def crash(self, positions) -> None:
        """Kill the nodes at the given canonical positions."""
        positions = np.asarray(positions, dtype=np.int64)
        self.alive[positions] = False
        telemetry = self.telemetry
        if telemetry.enabled and positions.size:
            # One aggregate injection event: per-node records at this scale
            # would reintroduce the O(n) Python the class exists to avoid.
            telemetry.event(
                "fault.injected",
                node=int(positions[0]),
                epoch=self.epoch,
                fault="crash",
                count=int(positions.size),
            )

    # ------------------------------------------------------------------ #
    # Epochs
    # ------------------------------------------------------------------ #
    def advance_epoch(
        self, changed_positions=None, new_counts=None
    ) -> dict[str, Any]:
        """Run one fused epoch: detect → attach → convergecast / suppress.

        ``changed_positions`` / ``new_counts`` describe this epoch's reading
        churn as parallel arrays (canonical positions and their new local
        counts).  Returns the epoch record (also appended to
        :attr:`records`).
        """
        from repro.faults.detection import heartbeat_sweep_vectorized
        from repro.faults.repair import attached_mask_vectorized

        if not self._queries:
            raise ConfigurationError(
                "no standing queries registered; call register_count_query() first"
            )
        telemetry = self.telemetry
        before_bits = self.ledger.total_bits

        # One epoch span wraps the fused chain, mirroring the fault
        # runner's span vocabulary — its close also feeds the attribution
        # sink from the span's own ledger mark (one array subtraction).
        totals = {"dirty": 0, "transmissions": 0, "suppressions": 0, "rounds": 0}
        with telemetry.span("epoch", epoch=self.epoch):
            heartbeat_bits, heartbeat_messages = heartbeat_sweep_vectorized(
                self.flat, self.alive, self.ledger, telemetry=telemetry
            )

            previously_attached = self.attached
            if telemetry.enabled:
                with telemetry.span("repair") as span:
                    self.attached = attached_mask_vectorized(self.flat, self.alive)
                    span.annotate(
                        detached=int(
                            self.alive.sum() - self.attached[self.alive].sum()
                        )
                    )
            else:
                self.attached = attached_mask_vectorized(self.flat, self.alive)
            self._evict_detached(previously_attached)

            if changed_positions is not None:
                changed_positions = np.asarray(changed_positions, dtype=np.int64)
                new_counts = np.asarray(new_counts, dtype=np.int64)
                self.counts[changed_positions] = new_counts

            with telemetry.span("stream", epoch=self.epoch) as stream_span:
                for name, query in self._queries.items():
                    with telemetry.span("convergecast", query=name):
                        self._run_query_epoch(
                            name, query, changed_positions, totals
                        )
                if telemetry.enabled:
                    stream_span.annotate(
                        dirty_nodes=totals["dirty"],
                        transmissions=totals["transmissions"],
                        suppressions=totals["suppressions"],
                    )

        record = {
            "epoch": self.epoch,
            "answers": dict(self.answers),
            "bits": self.ledger.total_bits - before_bits,
            "heartbeat_bits": heartbeat_bits,
            "heartbeat_messages": heartbeat_messages,
            "dirty": totals["dirty"],
            "transmissions": totals["transmissions"],
            "suppressions": totals["suppressions"],
            "rounds": totals["rounds"],
        }
        self.records.append(record)
        self.epoch += 1
        return record

    def _evict_detached(self, previously_attached) -> None:
        """Back cached deliveries of newly-detached children out of parents.

        A crashed (or cut-off) subtree stops transmitting, but its top's last
        delivered value still sits in the attached parent's ``child_sum`` —
        exactly the stale parent-side cache the reference engine evicts via
        the repair result's ``child_losses``.  Subtract the frontier
        children's cached deliveries and force their parents active so the
        correction convergecasts this very epoch.
        """
        frontier = np.flatnonzero(previously_attached & ~self.attached)
        if not frontier.size:
            return
        parents = self.flat.parent[frontier]
        frontier = frontier[(parents >= 0) & self.attached[parents]]
        if not frontier.size:
            return
        total_evicted = 0
        for query in self._queries.values():
            state = query.state
            evicted = frontier[state.has_delivered[frontier]]
            if not evicted.size:
                continue
            total_evicted += int(evicted.size)
            np.subtract.at(
                state.child_sum, self.flat.parent[evicted], state.last_delivered[evicted]
            )
            state.last_delivered[evicted] = 0
            state.has_delivered[evicted] = False
            query.forced[self.flat.parent[evicted]] = True
        telemetry = self.telemetry
        if telemetry.enabled and total_evicted:
            # Aggregated (no per-node Python on the vector path).
            telemetry.event(
                "cache.evict",
                epoch=self.epoch,
                count=total_evicted,
                site="detached",
            )

    def _run_query_epoch(
        self, name: str, query: _FieldQuery, changed_positions, totals
    ) -> None:
        from repro.streaming.vector_kernels import sweep_levels

        state = query.state
        flat = self.flat
        if not query.initialized:
            active = self.attached.copy()
            state.local[:] = self.counts
            state.has_local[:] = True
            query.initialized = True
        else:
            active = np.zeros(self.num_nodes, dtype=bool)
            if changed_positions is not None and changed_positions.size:
                moved = state.local[changed_positions] != self.counts[changed_positions]
                dirty_positions = changed_positions[moved]
                state.local[dirty_positions] = self.counts[dirty_positions]
                active[dirty_positions[self.attached[dirty_positions]]] = True
        if query.forced.any():
            active |= query.forced & self.attached
            query.forced[:] = False
        totals["dirty"] += int(active.sum())
        if not active.any():
            return

        deepest = int(flat.depth[np.flatnonzero(active)].max())
        slack = self.epsilon * query.scale / max(1, self.num_nodes)
        ids = flat.ids_array
        ledger = self.ledger
        protocol = f"{self.protocol_prefix}:{name}"

        def charge(tx_pos, tx_par, sizes):
            ledger.charge_array(ids[tx_pos], ids[tx_par], sizes, protocol=protocol)
            return None

        result = sweep_levels(
            parent=flat.parent,
            level_spans=[flat.level_spans[d] for d in range(deepest, -1, -1)],
            state=state,
            active=active,
            slack=slack,
            charge=charge,
            advance_round=ledger.advance_round,
        )
        totals["transmissions"] += result.transmissions
        totals["suppressions"] += result.suppressions
        totals["rounds"] = max(totals["rounds"], result.levels)
        if state.has_subtree[0]:
            answer = int(state.subtree_val[0])
            self.answers[name] = answer
            query.scale = max(query.scale, float(answer))
