"""Optional-numpy gate for the vectorized execution paths.

numpy is an *optional* dependency (the ``fast`` extra in ``pyproject.toml``):
every protocol keeps a pure-Python implementation, and the vectorized /
sharded execution paths are accelerations layered on top.  This module is
the one place that decides whether numpy is available, so

* the import guard is written once instead of per-module, and
* falling back is *loud*: the first feature that wanted numpy and could not
  have it emits a :class:`FallbackWarning` (once per feature), instead of
  silently running orders of magnitude slower.
"""

from __future__ import annotations

import warnings

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

#: True when the vectorized representation/kernels can run.
HAVE_NUMPY = np is not None

_warned: set[str] = set()


class FallbackWarning(RuntimeWarning):
    """Emitted once per feature when a vectorized path degrades to pure Python."""


def warn_fallback(feature: str) -> None:
    """Warn (once per ``feature``) that a numpy-backed path is unavailable.

    Call sites fall back to the pure-Python implementation right after; the
    warning exists so a deployment that *meant* to install the ``fast`` extra
    notices the silent 10-100x slowdown.
    """
    if feature in _warned:
        return
    _warned.add(feature)
    warnings.warn(
        f"{feature}: numpy is not installed, falling back to the pure-Python "
        "path (pip install 'repro-patt-shamir04[fast]' for the vectorized "
        "implementation)",
        FallbackWarning,
        stacklevel=3,
    )


def require_numpy(feature: str):
    """Return the numpy module or raise for features with no fallback."""
    if np is None:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"{feature} requires numpy; install the 'fast' extra "
            "(pip install 'repro-patt-shamir04[fast]')"
        )
    return np
