"""Baseline median protocols the paper compares against (Section 1).

* :mod:`repro.baselines.naive` — ship every raw value to the root (the TAG
  "holistic aggregate" treatment of MEDIAN): exact, but linear communication
  at nodes near the root.
* :mod:`repro.baselines.sampling_median` — uniform-sampling synopsis median
  (Nath et al.): Ω(log N) bits per sampled item, approximate.
* :mod:`repro.baselines.gk_median` — Greenwald–Khanna quantile summaries
  aggregated up the tree (the concurrent result [4]).
* :mod:`repro.baselines.qdigest_median` — q-digest summaries (Shrivastava et
  al.), the other classic sensor-network quantile sketch of the same era.
* :mod:`repro.baselines.gossip_median` — binary search whose rank probes are
  answered by push-sum gossip (the Kempe et al. [6] flavour of aggregation).

All baselines expose the same ``run(network) -> ProtocolResult`` interface as
the core protocols so experiment E8 can sweep them uniformly.
"""

from repro.baselines.gk_median import GKMedianProtocol
from repro.baselines.gossip_median import GossipMedianProtocol
from repro.baselines.naive import NaiveShipAllMedianProtocol
from repro.baselines.qdigest_median import QDigestMedianProtocol
from repro.baselines.sampling_median import SamplingMedianProtocol

__all__ = [
    "GKMedianProtocol",
    "GossipMedianProtocol",
    "NaiveShipAllMedianProtocol",
    "QDigestMedianProtocol",
    "SamplingMedianProtocol",
]
