"""Fault-tolerance engine: events, self-healing trees, recovery, accuracy."""

import random

import pytest

from repro.analysis.experiments import (
    run_fault_tolerance_study,
    run_root_failover_study,
)
from repro.exceptions import ConfigurationError, DeadNodeError
from repro.faults import (
    FaultEngine,
    FaultScript,
    HeartbeatDetector,
    LinkDrop,
    LinkRestore,
    NodeCrash,
    NodeRejoin,
    RegionalOutage,
    RootElection,
    TreeRepair,
    run_faulty_stream,
)
from repro.faults.events import expand_regional_outage
from repro.network.simulator import SensorNetwork
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import CountQuery, MedianQuery
from repro.workloads.faults import (
    churn_script,
    crash_storm_script,
    link_storm_script,
    regional_outage_script,
    root_failover_script,
)
from repro.workloads.streams import ChurnStream, DriftStream

DOMAIN = 1 << 12


def fresh_network(num_nodes=36, topology="grid", **kwargs):
    network = SensorNetwork.from_items(
        [7] * num_nodes, topology=topology, **kwargs
    )
    return network


def count_engine(network, epsilon=0.0):
    engine = ContinuousQueryEngine(network, epsilon=epsilon)
    engine.register("count", CountQuery())
    return engine


class TestFaultScript:
    def test_add_and_events_at(self):
        script = FaultScript()
        script.add(2, NodeCrash(5), NodeCrash(6)).add(4, NodeRejoin(5, items=(9,)))
        assert script.events_at(2) == [NodeCrash(5), NodeCrash(6)]
        assert script.events_at(3) == []
        assert script.horizon == 5
        assert len(script) == 3
        assert script.epochs() == [2, 4]

    def test_merge_keeps_both_schedules(self):
        left = FaultScript({1: [NodeCrash(1)]})
        right = FaultScript({1: [NodeCrash(2)], 3: [NodeRejoin(1)]})
        merged = left.merge(right)
        assert merged.events_at(1) == [NodeCrash(1), NodeCrash(2)]
        assert merged.events_at(3) == [NodeRejoin(1)]

    def test_non_event_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultScript().add(0, "crash 5")

    def test_negative_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultScript().add(-1, NodeCrash(1))

    def test_iteration_is_epoch_ordered(self):
        script = FaultScript({5: [NodeCrash(1)], 2: [NodeCrash(2)]})
        assert [epoch for epoch, _ in script] == [2, 5]


class TestRegionalOutage:
    def test_ball_expansion(self):
        network = fresh_network(25)  # 5x5 grid
        crashes = expand_regional_outage(
            network.graph, RegionalOutage(center=12, radius=1)
        )
        assert {crash.node_id for crash in crashes} == {7, 11, 12, 13, 17}

    def test_root_is_protected(self):
        network = fresh_network(25)
        crashes = expand_regional_outage(
            network.graph, RegionalOutage(center=0, radius=10), protect=(0,)
        )
        assert 0 not in {crash.node_id for crash in crashes}
        assert len(crashes) == 24

    def test_unknown_center_rejected(self):
        network = fresh_network(9)
        with pytest.raises(ConfigurationError):
            expand_regional_outage(network.graph, RegionalOutage(center=99, radius=1))


class TestAliveMask:
    def test_kill_and_revive(self):
        network = fresh_network(9)
        network.kill_node(4)
        assert not network.is_alive(4)
        assert network.num_alive == 8
        assert 4 not in network.alive_node_ids()
        assert network.dead_node_ids() == [4]
        assert network.node(4).items == []  # readings are lost on crash
        network.revive_node(4)
        assert network.is_alive(4)
        assert network.num_alive == 9

    def test_root_cannot_crash(self):
        network = fresh_network(9)
        with pytest.raises(ConfigurationError):
            network.kill_node(network.root_id)

    @pytest.mark.parametrize("execution", ["batched", "per-edge"])
    def test_sends_to_dead_nodes_raise(self, execution):
        network = fresh_network(9, execution=execution)
        network.kill_node(4)
        with pytest.raises(DeadNodeError):
            network.send(3, 4, "x", 8)
        with pytest.raises(DeadNodeError):
            network.send_batch([(3, 4)], [8])
        with pytest.raises(DeadNodeError):
            network.send_batch([(4, 3)], [8], require_edge=False)

    def test_attached_items_follow_the_tree(self):
        network = fresh_network(9, topology="line")
        repair = TreeRepair()
        network.kill_node(4)  # splits the line; 5..8 unreachable
        repair.repair(network)
        assert network.attached_node_ids() == [0, 1, 2, 3]
        assert network.attached_items() == [7] * 4
        assert network.num_alive == 8  # 5..8 alive but detached


class TestTreeRepair:
    def test_leaf_crash_is_local(self):
        network = fresh_network(16)
        leaf = max(
            network.tree.parent, key=lambda n: (network.tree.depth[n], n)
        )
        parent = network.tree.parent[leaf]
        network.kill_node(leaf)
        result = TreeRepair().repair(network)
        assert result.strategy == "incremental"
        assert result.parent_changed == ()
        assert result.removed == (leaf,)
        assert (parent, leaf) in result.child_losses
        assert result.control_bits == 0  # nothing to re-attach
        network.tree.check_invariants()
        network.tree.validate(
            network.graph, covering=set(network.alive_node_ids())
        )

    def test_internal_crash_reattaches_orphans(self):
        network = fresh_network(36)
        tree = network.tree
        internal = next(
            node
            for node in tree.nodes_top_down()
            if tree.children[node] and tree.parent[node] is not None
        )
        network.kill_node(internal)
        result = TreeRepair().repair(network)
        assert result.strategy == "incremental"
        assert result.removed == (internal,)
        assert result.detached == ()  # the grid is 2-connected enough
        assert len(result.parent_changed) >= 1
        assert result.control_bits > 0
        assert set(network.tree.parent) == set(network.alive_node_ids())
        network.tree.check_invariants()
        network.tree.validate(
            network.graph, covering=set(network.alive_node_ids())
        )

    def test_line_cut_leaves_detached_tail(self):
        network = fresh_network(10, topology="line")
        network.kill_node(4)
        result = TreeRepair().repair(network)
        assert result.detached == (5, 6, 7, 8, 9)
        assert set(network.tree.parent) == {0, 1, 2, 3}
        # The cut heals when the bridge node comes back.
        network.revive_node(4)
        healed = TreeRepair().repair(network)
        assert healed.detached == ()
        assert set(network.tree.parent) == set(range(10))
        assert 4 in healed.parent_changed
        network.tree.check_invariants()

    def test_dropped_tree_edge_reroutes(self):
        network = fresh_network(36)
        tree = network.tree
        child = next(
            node for node in tree.nodes_bottom_up() if tree.parent[node] is not None
        )
        parent = tree.parent[child]
        network.graph.remove_edge(child, parent)
        result = TreeRepair().repair(network)
        assert child in result.parent_changed
        assert (parent, child) in result.child_losses
        assert network.tree.parent[child] != parent
        network.tree.check_invariants()
        network.tree.validate(
            network.graph, covering=set(network.alive_node_ids())
        )

    def test_repair_is_idempotent(self):
        network = fresh_network(36)
        network.kill_node(7)
        repair = TreeRepair()
        first = repair.repair(network)
        assert first.changed_anything
        second = repair.repair(network)
        assert second.strategy == "noop"
        assert not second.changed_anything
        assert second.control_bits == 0

    def test_repair_traffic_is_charged_under_its_protocol(self):
        network = fresh_network(36)
        tree = network.tree
        internal = next(
            node
            for node in tree.nodes_top_down()
            if tree.children[node] and tree.parent[node] is not None
        )
        network.kill_node(internal)
        result = TreeRepair().repair(network)
        per_protocol = network.ledger.per_protocol_bits()
        assert per_protocol.get("faults:repair", 0) == result.control_bits > 0

    def test_threshold_fallback_rebuilds(self):
        network = fresh_network(36)
        network.kill_node(7)
        result = TreeRepair(rebuild_threshold=1e-9).repair(network)
        assert result.rebuilt
        assert result.strategy == "rebuild"
        assert result.control_bits > 0
        network.tree.check_invariants()

    def test_rebuild_strategy_always_rebuilds(self):
        network = fresh_network(36)
        network.kill_node(7)
        result = TreeRepair(strategy="rebuild").repair(network)
        assert result.rebuilt
        # Flood cost: two tokens per alive edge plus one ack per node — far
        # more than the incremental handshake for one crash.
        incremental_network = fresh_network(36)
        incremental_network.kill_node(7)
        incremental = TreeRepair().repair(incremental_network)
        assert result.control_bits > 5 * incremental.control_bits

    def test_rebuild_respects_degree_bound(self):
        network = fresh_network(36, degree_bound=3)
        network.kill_node(7)
        result = TreeRepair(strategy="rebuild").repair(network)
        assert result.rebuilt
        assert network.tree.max_degree() <= 3  # a grid supports the bound
        network.tree.check_invariants()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            TreeRepair(strategy="hope")
        with pytest.raises(ConfigurationError):
            TreeRepair(rebuild_threshold=0)


class TestFaultEngine:
    def test_scripted_crash_and_rejoin(self):
        network = fresh_network(16)
        script = FaultScript({0: [NodeCrash(5)], 2: [NodeRejoin(5, items=(3, 4))]})
        engine = FaultEngine(network, script=script)
        report = engine.step(0)
        assert report.crashed == (5,)
        assert not network.is_alive(5)
        quiet = engine.step(1)
        assert not quiet.had_faults
        assert quiet.repair.strategy == "noop"
        back = engine.step(2)
        assert back.rejoined == (5,)
        assert network.node(5).items == [3, 4]
        assert 5 in network.tree.parent

    def test_double_crash_is_single_event(self):
        network = fresh_network(16)
        script = FaultScript({0: [NodeCrash(5), NodeCrash(5)]})
        report = FaultEngine(network, script=script).step(0)
        assert report.crashed == (5,)

    def test_link_drop_and_restore(self):
        network = fresh_network(16)
        edge = next(iter(network.graph.edges()))
        script = FaultScript(
            {0: [LinkDrop(*edge)], 1: [LinkRestore(*edge)]}
        )
        engine = FaultEngine(network, script=script)
        report = engine.step(0)
        assert report.dropped_links == (tuple(sorted(edge)),)
        assert not network.graph.has_edge(*edge)
        report = engine.step(1)
        assert report.restored_links == (tuple(sorted(edge)),)
        assert network.graph.has_edge(*edge)
        assert engine.dropped_edges == set()

    def test_stochastic_faults_are_seed_deterministic(self):
        histories = []
        for _ in range(2):
            network = fresh_network(49)
            engine = FaultEngine(
                network, seed=11, crash_rate=0.15, rejoin_rate=0.5
            )
            history = []
            for epoch in range(6):
                engine.step(epoch)
                history.append(tuple(network.dead_node_ids()))
            histories.append(history)
        assert histories[0] == histories[1]
        assert any(dead for dead in histories[0])  # faults actually happened

    def test_regional_outage_event(self):
        network = fresh_network(25)
        script = FaultScript({0: [RegionalOutage(center=12, radius=1)]})
        report = FaultEngine(network, script=script).step(0)
        assert set(report.crashed) == {7, 11, 12, 13, 17}
        network.tree.check_invariants()

    def test_quiet_epoch_charges_nothing(self):
        network = fresh_network(16)
        engine = FaultEngine(network)
        before = network.ledger.total_bits
        engine.step(0)
        assert network.ledger.total_bits == before


class TestScriptBuilders:
    def test_crash_storm_counts_and_rejoin(self):
        script = crash_storm_script(
            range(100), epoch=3, fraction=0.1, seed=0, rejoin_epoch=6
        )
        crashes = script.events_at(3)
        rejoins = script.events_at(6)
        assert len(crashes) == 10
        assert len(rejoins) == 10
        assert {c.node_id for c in crashes} == {r.node_id for r in rejoins}
        assert all(c.node_id != 0 for c in crashes)
        assert all(len(r.items) == 1 for r in rejoins)

    def test_crash_storm_rejoin_must_follow_storm(self):
        with pytest.raises(ConfigurationError):
            crash_storm_script(range(10), epoch=3, rejoin_epoch=3)

    def test_regional_outage_script_rejoins_the_ball(self):
        network = fresh_network(25)
        script = regional_outage_script(
            network.graph, epoch=1, radius=1, center=12, rejoin_epoch=4
        )
        assert script.events_at(1) == [RegionalOutage(center=12, radius=1)]
        rejoined = {event.node_id for event in script.events_at(4)}
        assert rejoined == {7, 11, 12, 13, 17}

    def test_churn_script_toggles_consistently(self):
        script = churn_script(range(30), epochs=10, churn_rate=0.3, seed=2)
        online = {node: True for node in range(30)}
        for _, event in script:
            if isinstance(event, NodeCrash):
                assert online[event.node_id]
                online[event.node_id] = False
            else:
                assert not online[event.node_id]
                online[event.node_id] = True
        assert online[0]  # the root never churns

    def test_link_storm_script(self):
        network = fresh_network(16)
        script = link_storm_script(
            network.graph, epoch=0, fraction=0.2, seed=0, restore_epoch=2
        )
        drops = script.events_at(0)
        restores = script.events_at(2)
        assert len(drops) == len(restores) > 0
        assert {d.edge for d in drops} == {r.edge for r in restores}


class TestStreamingRecovery:
    def test_count_stays_exact_through_storm_and_recovery(self):
        network = fresh_network(64)
        network.clear_items()
        engine = count_engine(network)
        script = crash_storm_script(
            network.node_ids(), epoch=2, fraction=0.2, seed=3, rejoin_epoch=4
        )
        faults = FaultEngine(network, script=script)
        trace = run_faulty_stream(
            engine, DriftStream(64, max_value=DOMAIN, seed=1), faults, epochs=6
        )
        for record in trace:
            assert record.errors["count"] == 0.0
        assert trace[2].crashes > 0 and trace[4].rejoins > 0
        assert trace[2].answers["count"] < trace[0].answers["count"]
        assert trace[5].answers["count"] == trace[0].answers["count"]

    def test_quiet_epoch_after_repair_costs_zero(self):
        network = fresh_network(36)
        engine = count_engine(network)
        engine.advance_epoch({})  # warm-up: full summaries
        faults = FaultEngine(network, script=FaultScript({0: [NodeCrash(7)]}))
        report = faults.step(0)
        engine.apply_repair(report.repair)
        engine.advance_epoch({})  # resync epoch
        record = engine.advance_epoch({})  # steady state again
        assert record.bits == 0
        assert record.transmissions == 0

    def test_resync_touches_only_repaired_paths(self):
        network = fresh_network(64)
        engine = count_engine(network)
        engine.advance_epoch({})
        total_nodes = network.num_nodes
        faults = FaultEngine(network, script=FaultScript({0: [NodeCrash(9)]}))
        report = faults.step(0)
        engine.apply_repair(report.repair)
        record = engine.advance_epoch({})
        # Far fewer transmissions than a recompute of every node.
        assert 0 < record.transmissions < total_nodes / 2
        assert record.answers["count"] == len(network.attached_items())

    def test_median_under_faults_stays_in_budget(self):
        network = fresh_network(49)
        network.clear_items()
        epsilon = 0.1
        engine = ContinuousQueryEngine(network, epsilon=epsilon)
        engine.register("count", CountQuery())
        engine.register(
            "median", MedianQuery(universe_size=DOMAIN + 1, compression=256)
        )
        script = crash_storm_script(
            network.node_ids(), epoch=2, fraction=0.15, seed=5
        )
        faults = FaultEngine(network, script=script)
        trace = run_faulty_stream(
            engine, DriftStream(49, max_value=DOMAIN, seed=2), faults, epochs=6
        )
        budget = engine.error_bounds()["median"] + 0.5
        assert trace.max_answer_error("median") <= budget
        assert trace.max_answer_error("count") <= epsilon * 49

    def test_updates_for_detached_nodes_are_ignored(self):
        network = fresh_network(10, topology="line")
        engine = count_engine(network)
        engine.advance_epoch({})
        faults = FaultEngine(network, script=FaultScript({0: [NodeCrash(4)]}))
        report = faults.step(0)
        engine.apply_repair(report.repair)
        # Nodes 5..9 are detached; feeding them updates must not corrupt
        # the answer (their readings cannot reach the root).
        record = engine.advance_epoch({8: [1, 2, 3]})
        assert record.answers["count"] == 4

    def test_incremental_and_rebuild_agree_on_answers(self):
        answers = []
        for strategy in ("incremental", "rebuild"):
            network = fresh_network(49)
            network.clear_items()
            engine = count_engine(network)
            script = crash_storm_script(
                network.node_ids(), epoch=1, fraction=0.2, seed=7, rejoin_epoch=3
            )
            faults = FaultEngine(
                network, script=script, repair=TreeRepair(strategy=strategy)
            )
            trace = run_faulty_stream(
                engine,
                DriftStream(49, max_value=DOMAIN, seed=3),
                faults,
                epochs=5,
            )
            answers.append([record.answers["count"] for record in trace])
        assert answers[0] == answers[1]


class TestRunFaultyStream:
    def test_record_bit_split_is_consistent(self):
        network = fresh_network(36)
        network.clear_items()
        engine = count_engine(network)
        script = crash_storm_script(network.node_ids(), epoch=1, fraction=0.2, seed=0)
        faults = FaultEngine(network, script=script)
        trace = run_faulty_stream(
            engine, DriftStream(36, max_value=DOMAIN, seed=0), faults, epochs=4
        )
        for record in trace:
            assert record.total_bits == record.repair_bits + record.query_bits
        assert trace.total_bits == trace.total_repair_bits + trace.total_query_bits
        assert trace.fault_epochs() == [1]
        assert trace.fault_epoch_bits == trace[1].total_bits

    def test_engines_must_share_a_network(self):
        network_a = fresh_network(9)
        network_b = fresh_network(9)
        engine = count_engine(network_a)
        faults = FaultEngine(network_b)
        with pytest.raises(ConfigurationError):
            run_faulty_stream(engine, DriftStream(9, seed=0), faults, epochs=1)

    def test_churn_stream_events_drive_the_fault_engine(self):
        network = fresh_network(36)
        network.clear_items()
        engine = count_engine(network)
        stream = ChurnStream(
            36, max_value=DOMAIN, seed=4, churn_rate=0.25, emit_events=True
        )
        faults = FaultEngine(network)
        trace = run_faulty_stream(engine, stream, faults, epochs=8)
        assert trace.total_crashes > 0 and trace.total_rejoins > 0
        # The network's alive population mirrors the stream's bookkeeping.
        assert network.num_alive == stream.online_count()
        for record in trace:
            assert record.errors["count"] == 0.0


class TestFaultToleranceStudy:
    def test_small_study_favours_incremental(self):
        comparison = run_fault_tolerance_study(
            num_nodes=100,
            epochs=6,
            storm_epoch=2,
            rejoin_epoch=4,
            topology="grid",
            seed=0,
        )
        assert comparison.savings_factor > 2.0
        assert comparison.incremental_fault_bits < comparison.rebuild_fault_bits
        assert comparison.rebuild_rebuilds >= 2
        assert comparison.incremental_rebuilds == 0
        assert (
            comparison.incremental_max_count_error <= comparison.count_error_budget
        )
        assert comparison.rebuild_max_count_error <= comparison.count_error_budget

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fault_tolerance_study(num_nodes=25, scenario="meteor")

    def test_root_failover_study_smoke(self):
        """E13 at toy size: accounted handover, never worse than rebuilding."""
        comparison = run_root_failover_study(
            num_nodes=64, epochs=5, crash_epoch=2, topology="grid", seed=0
        )
        assert comparison.new_root == 63
        assert comparison.decomposition_holds
        assert comparison.failover_election_bits > 0
        assert comparison.failover_election_bits == comparison.rebuild_election_bits
        assert comparison.failover_fault_bits <= comparison.rebuild_fault_bits
        assert comparison.failover_max_count_error <= comparison.count_error_budget


class TestAdoptionFallback:
    """A permanently-failing handshake falls back to the next candidate.

    ROADMAP's "Repair under loss" gap: a DeliveryError during an adoption
    handshake used to abort the whole epoch.  The repair now tries the
    orphan unit's next candidate attachment point and aborts only when
    every candidate is exhausted — identically on both execution paths.
    """

    class BlockedLinksRadio:
        """Reliable radio that permanently fails a chosen set of links."""

        def __init__(self, blocked):
            self.blocked = {tuple(link) for link in blocked}

        def transmit(self, sender, receiver):
            from repro.exceptions import DeliveryError
            from repro.network.radio import DELIVERED_ONCE

            if (sender, receiver) in self.blocked or (
                receiver,
                sender,
            ) in self.blocked:
                raise DeliveryError(f"link {sender}->{receiver} is jammed")
            return DELIVERED_ONCE

        def filter_batch(self, links):
            from repro.exceptions import DeliveryError

            outcomes = []
            try:
                for sender, receiver in links:
                    outcomes.append(self.transmit(sender, receiver))
            except DeliveryError as error:
                error.outcomes_before_failure = tuple(outcomes)
                raise
            return outcomes

        def reset(self):
            pass

    @pytest.mark.parametrize("execution", ["batched", "per-edge"])
    def test_falls_back_to_next_candidate(self, execution):
        # 3x3 grid, kill node 4 (the centre's neighbour structure is known):
        # orphan 7's first candidate adopter is 6; jam that link and the
        # handshake must retry through 8 instead of aborting the epoch.
        network = fresh_network(9, execution=execution)
        tree = network.tree
        # find an orphan with at least two attached neighbours after a crash
        victim = 4
        network.kill_node(victim)
        orphans = [n for n in tree.children.get(victim, ()) if network.is_alive(n)]
        assert orphans, "test topology must orphan at least one child"
        orphan = orphans[0]
        neighbors = sorted(
            n
            for n in network.graph.neighbors(orphan)
            if network.is_alive(n) and n != victim
        )
        assert len(neighbors) >= 2, "orphan needs a fallback candidate"
        first = neighbors[0]
        network.radio = self.BlockedLinksRadio([(orphan, first)])
        result = TreeRepair().repair(network)
        assert orphan in network.tree.parent
        assert network.tree.parent[orphan] != first
        assert orphan in result.parent_changed
        network.tree.check_invariants()

    @pytest.mark.parametrize("execution", ["batched", "per-edge"])
    def test_exhausted_candidates_abort_after_installing(self, execution):
        from repro.exceptions import DeliveryError

        network = fresh_network(9, execution=execution)
        tree = network.tree
        victim = 4
        network.kill_node(victim)
        orphans = [n for n in tree.children.get(victim, ()) if network.is_alive(n)]
        orphan = orphans[0]
        # jam every link that could ever adopt any member of the orphan unit
        unit = set(tree.subtree_nodes(orphan)) - {victim}
        blocked = [
            (member, neighbor)
            for member in unit
            for neighbor in network.graph.neighbors(member)
            if neighbor not in unit
        ]
        network.radio = self.BlockedLinksRadio(blocked)
        with pytest.raises(DeliveryError) as excinfo:
            TreeRepair().repair(network)
        result = excinfo.value.repair_result
        # the repair completed before raising: the unreachable unit is
        # detached, everything else is repaired and installed
        assert set(unit) <= set(result.detached)
        for member in unit:
            assert member not in network.tree.parent
        network.tree.check_invariants()

    def test_fallback_is_identical_across_paths(self):
        snapshots = []
        for execution in ("batched", "per-edge"):
            network = fresh_network(9, execution=execution)
            tree = network.tree
            network.kill_node(4)
            orphan = next(
                n for n in tree.children.get(4, ()) if network.is_alive(n)
            )
            first = sorted(
                n
                for n in network.graph.neighbors(orphan)
                if network.is_alive(n)
            )[0]
            network.radio = self.BlockedLinksRadio([(orphan, first)])
            result = TreeRepair().repair(network)
            snapshots.append(
                (result, dict(network.tree.parent), network.ledger.snapshot())
            )
        (left_result, left_tree, left_ledger) = snapshots[0]
        (right_result, right_tree, right_ledger) = snapshots[1]
        assert left_result == right_result
        assert left_tree == right_tree
        assert left_ledger.per_node_bits == right_ledger.per_node_bits
        assert left_ledger.per_protocol_bits == right_ledger.per_protocol_bits


class TestAccountingInvariant:
    """Property: every record splits its bits exactly into the four columns.

    ``total_bits == repair_bits + query_bits + detection_bits +
    election_bits`` must hold on every epoch of every run, whatever the
    fault script throws at the engine.  Randomized scripts (storms with and
    without rejoins, background churn, root crashes, charged detection on
    or off) are generated from seeded ``random.Random`` instances, so a
    failure reproduces from its printed seed.
    """

    EPOCHS = 8
    NUM_NODES = 36

    def random_run(self, seed):
        rng = random.Random(seed)
        network = fresh_network(self.NUM_NODES)
        network.clear_items()
        engine = count_engine(network, epsilon=rng.choice([0.0, 0.1]))
        node_ids = network.node_ids()
        script = crash_storm_script(
            node_ids,
            epoch=rng.randint(1, 3),
            fraction=rng.uniform(0.05, 0.35),
            seed=seed,
            rejoin_epoch=rng.choice([None, 5]),
            rejoin_value_max=DOMAIN - 1,
        )
        if rng.random() < 0.5:
            script = script.merge(
                churn_script(
                    node_ids,
                    epochs=self.EPOCHS - 1,
                    churn_rate=rng.uniform(0.01, 0.08),
                    start_epoch=1,
                    seed=seed + 1,
                    rejoin_value_max=DOMAIN - 1,
                )
            )
        if rng.random() < 0.5:
            script = script.merge(
                root_failover_script(node_ids, crash_epoch=rng.randint(4, 6))
            )
        detector = (
            HeartbeatDetector(period=rng.randint(1, 3))
            if rng.random() < 0.7
            else None
        )
        faults = FaultEngine(
            network, script=script, detector=detector, election=RootElection()
        )
        stream = DriftStream(self.NUM_NODES, max_value=DOMAIN, seed=seed)
        return run_faulty_stream(engine, stream, faults, epochs=self.EPOCHS)

    def test_bit_decomposition_holds_across_random_fault_scripts(self):
        elections_seen = 0
        detection_seen = 0
        for seed in range(12):
            trace = self.random_run(seed)
            for record in trace:
                assert record.total_bits == (
                    record.repair_bits
                    + record.query_bits
                    + record.detection_bits
                    + record.election_bits
                ), f"decomposition violated at seed={seed} epoch={record.epoch}"
            assert trace.total_bits == (
                trace.total_repair_bits
                + trace.total_query_bits
                + trace.total_detection_bits
                + trace.total_election_bits
            ), f"trace-level decomposition violated at seed={seed}"
            elections_seen += trace.election_count
            detection_seen += trace.total_detection_bits
        # The randomized pool genuinely exercised the interesting columns.
        assert elections_seen > 0
        assert detection_seen > 0
