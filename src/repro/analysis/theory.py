"""The paper's asymptotic cost claims as concrete envelope functions.

Each function returns the *predicted shape* of the per-node communication
cost, up to a constant factor that the experiments fit from the measurements
(:func:`repro.analysis.metrics.fit_against_model`).  The functions are also
used to extrapolate the exact-vs-approximate crossover point: the approximate
protocols pay large constants (a LogLog sketch per probe), so they only win
for networks far larger than a pure-Python simulation can execute — the paper
itself is explicit that the result is asymptotic.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def _log2(value: float) -> float:
    if value <= 1:
        return 1.0
    return math.log2(value)


def exact_median_bits_envelope(num_items: float, domain_max: float | None = None) -> float:
    """Theorem 3.2: O((log N)^2), or more precisely O(log X̄ · log N) per node."""
    if num_items <= 0:
        raise ConfigurationError("num_items must be positive")
    log_domain = _log2(domain_max) if domain_max is not None else _log2(num_items)
    return _log2(num_items) * log_domain


def apx_median_bits_envelope(
    num_items: float,
    domain_max: float | None = None,
    num_registers: int = 64,
    epsilon: float = 0.1,
) -> float:
    """Theorem 4.5: O((log max X)^2 · C_A(N) / ε) with C_A(N) = m · log log N."""
    if num_items <= 0:
        raise ConfigurationError("num_items must be positive")
    log_domain = _log2(domain_max) if domain_max is not None else _log2(num_items)
    counting_cost = num_registers * _log2(_log2(num_items))
    return (log_domain ** 2) * counting_cost / epsilon


def polyloglog_median_bits_envelope(
    num_items: float,
    num_registers: int = 64,
    beta: float = 1.0 / 16.0,
    epsilon: float = 0.25,
) -> float:
    """Theorem 4.7 / Corollary 4.8: O((log log N)^3) for constant β, ε.

    Written out with its parameters:
    ``(log log max X)^2 · C_A(N) · (log 1/β)^2 / ε`` with
    ``C_A(N) = m · log log N``.
    """
    if num_items <= 0:
        raise ConfigurationError("num_items must be positive")
    loglog = _log2(_log2(num_items))
    zoom = max(1.0, math.log2(1.0 / beta))
    return (loglog ** 2) * (num_registers * loglog) * (zoom ** 2) / epsilon


def naive_median_bits_envelope(num_items: float, domain_max: float | None = None) -> float:
    """Holistic (ship-all-values) median: Θ(N log X̄) at nodes adjacent to the root."""
    if num_items <= 0:
        raise ConfigurationError("num_items must be positive")
    log_domain = _log2(domain_max) if domain_max is not None else _log2(num_items)
    return num_items * log_domain


def exact_distinct_bits_envelope(num_items: float) -> float:
    """Theorem 5.1: Ω(n) bits at some node for exact COUNT DISTINCT."""
    if num_items <= 0:
        raise ConfigurationError("num_items must be positive")
    return float(num_items)


def approx_distinct_bits_envelope(num_items: float, num_registers: int = 64) -> float:
    """Approximate COUNT DISTINCT: O(m log log n) bits per node."""
    if num_items <= 0:
        raise ConfigurationError("num_items must be positive")
    return num_registers * _log2(_log2(num_items))


def predicted_crossover(
    exact_constant: float,
    approx_constant: float,
    domain_of: "callable" = None,
    num_registers: int = 64,
    epsilon: float = 0.25,
    beta: float = 1.0 / 16.0,
    max_exponent: int = 400,
) -> float | None:
    """Smallest N (as a power of two) where the fitted polyloglog cost drops
    below the fitted exact-median cost.

    ``exact_constant`` and ``approx_constant`` are the constants fitted from
    measurements against :func:`exact_median_bits_envelope` and
    :func:`polyloglog_median_bits_envelope`.  ``domain_of(N)`` maps the item
    count to the value-domain bound used in the sweep (defaults to N²,
    matching the paper's "values polynomial in N" assumption).  Returns
    ``None`` when no crossover occurs below ``2^max_exponent``.
    """
    if domain_of is None:
        domain_of = lambda n: n ** 2  # noqa: E731 - tiny default mapping
    for exponent in range(3, max_exponent + 1):
        n = 2.0 ** exponent
        exact_cost = exact_constant * exact_median_bits_envelope(n, domain_of(n))
        approx_cost = approx_constant * polyloglog_median_bits_envelope(
            n, num_registers=num_registers, beta=beta, epsilon=epsilon
        )
        if approx_cost < exact_cost:
            return n
    return None
