"""Distributed protocols executed over the sensor network.

The paper's algorithms (Section 3 and 4) are written for a root node that can
only *invoke protocols* — MIN, MAX, COUNT, COUNTP and APX_COUNT — and read
their results.  This package implements those primitives over the spanning
tree of a :class:`~repro.network.SensorNetwork`, charging every transmitted
bit to the network's ledger:

* :mod:`repro.protocols.broadcast` / :mod:`repro.protocols.convergecast` —
  the two tree traversals everything else is built from.
* :mod:`repro.protocols.aggregates` — TAG-style MIN / MAX / COUNT / SUM /
  AVERAGE (the paper's Fact 2.1).
* :mod:`repro.protocols.countp` — counting under a locally-computable
  predicate (Section 3.1).
* :mod:`repro.protocols.apx_count` — the α-counting protocol of Fact 2.2,
  realised as a LogLog sketch merged up the tree.
* :mod:`repro.protocols.gossip` — push-sum gossip aggregation, the non-tree
  substrate used by the gossip baseline (Kempe et al., cited as [6]).
* :mod:`repro.protocols.epoch_convergecast` — the change-driven traversal the
  continuous-query engine (:mod:`repro.streaming`) runs once per epoch: only
  dirty subtrees participate, executed as synchronous rounds.

The tree traversals (broadcast, convergecast, epoch_convergecast) each have
two ledger-equivalent execution paths selected by ``network.execution``: a
*batched* default that plans whole levels and charges them through
``SensorNetwork.send_batch``, and a *per-edge* reference path that sends one
edge at a time.
"""

from repro.protocols.aggregates import (
    AverageProtocol,
    CountProtocol,
    MaxProtocol,
    MinProtocol,
    SumProtocol,
)
from repro.protocols.apx_count import ApproxCountProtocol, ApproxCountResult
from repro.protocols.base import ProtocolResult
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.protocols.countp import CountPredicateProtocol
from repro.protocols.epoch_convergecast import EpochStats, epoch_convergecast
from repro.protocols.gossip import PushSumGossip
from repro.protocols.predicates import (
    AllItemsPredicate,
    LessThanPredicate,
    PowerThresholdPredicate,
    Predicate,
    RangePredicate,
)

__all__ = [
    "AverageProtocol",
    "CountProtocol",
    "MaxProtocol",
    "MinProtocol",
    "SumProtocol",
    "ApproxCountProtocol",
    "ApproxCountResult",
    "ProtocolResult",
    "broadcast",
    "convergecast",
    "CountPredicateProtocol",
    "EpochStats",
    "epoch_convergecast",
    "PushSumGossip",
    "AllItemsPredicate",
    "LessThanPredicate",
    "PowerThresholdPredicate",
    "Predicate",
    "RangePredicate",
]
