"""Input-data generators.

The paper's analysis is worst-case over all inputs, so the experiments sweep
several qualitatively different value distributions:

* ``uniform`` — the benign case;
* ``zipf`` — heavy duplication, which stresses COUNT DISTINCT and the rank
  error definitions (many equal values around the median);
* ``clustered`` / ``bimodal`` — values concentrated in a few narrow bands, the
  regime where the β (value-precision) parameter of Definition 2.4 matters;
* ``adversarial_near_median`` — half the probability mass packed into a tiny
  interval around the median, the hardest case for approximate rank probes;
* ``correlated_field`` — a synthetic sensor field (smooth spatial gradient
  plus noise), standing in for the temperature/light traces TAG-style systems
  were motivated by (no real deployment traces are publicly available, so the
  field is synthesised — see DESIGN.md);
* ``sequential`` / ``all_equal`` — degenerate corner cases.

All generators return a list of non-negative integers bounded by
``max_value``, one item per prospective sensor node, and are deterministic in
the ``seed`` argument.
"""

from __future__ import annotations

import math

from repro._util.randomness import make_rng
from repro._util.validation import require_non_negative, require_positive
from repro.exceptions import ConfigurationError


def uniform_values(count: int, max_value: int = 1 << 16, seed: int | None = 0) -> list[int]:
    """Independent uniform integers in ``[0, max_value]``."""
    require_positive(count, "count")
    require_non_negative(max_value, "max_value")
    rng = make_rng(seed)
    return [rng.randint(0, max_value) for _ in range(count)]


def sequential_values(count: int, max_value: int = 1 << 16, seed: int | None = 0) -> list[int]:
    """The integers 0, 1, 2, ... scaled to span ``[0, max_value]``."""
    require_positive(count, "count")
    del seed  # deterministic by construction
    if count == 1:
        return [0]
    return [round(index * max_value / (count - 1)) for index in range(count)]


def all_equal_values(count: int, max_value: int = 1 << 16, seed: int | None = 0) -> list[int]:
    """Every node holds the same value (the degenerate spread-zero case)."""
    require_positive(count, "count")
    del seed
    return [max_value // 2] * count


def zipf_values(
    count: int,
    max_value: int = 1 << 16,
    exponent: float = 1.2,
    distinct: int = 256,
    seed: int | None = 0,
) -> list[int]:
    """Zipf-distributed draws over ``distinct`` support points in ``[0, max_value]``."""
    require_positive(count, "count")
    require_positive(distinct, "distinct")
    if exponent <= 0:
        raise ConfigurationError(f"exponent must be positive, got {exponent}")
    rng = make_rng(seed)
    weights = [1.0 / (rank ** exponent) for rank in range(1, distinct + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    support = [
        round(index * max_value / max(1, distinct - 1)) for index in range(distinct)
    ]
    values = []
    for _ in range(count):
        u = rng.random()
        index = next(
            (i for i, threshold in enumerate(cumulative) if u <= threshold),
            distinct - 1,
        )
        values.append(support[index])
    return values


def clustered_values(
    count: int,
    max_value: int = 1 << 16,
    clusters: int = 4,
    cluster_width_fraction: float = 0.01,
    seed: int | None = 0,
) -> list[int]:
    """Values drawn from a few narrow clusters spread across the range."""
    require_positive(count, "count")
    require_positive(clusters, "clusters")
    rng = make_rng(seed)
    width = max(1, int(max_value * cluster_width_fraction))
    centres = [
        int((cluster + 0.5) * max_value / clusters) for cluster in range(clusters)
    ]
    values = []
    for _ in range(count):
        centre = rng.choice(centres)
        values.append(max(0, min(max_value, centre + rng.randint(-width, width))))
    return values


def bimodal_values(
    count: int,
    max_value: int = 1 << 16,
    low_fraction: float = 0.5,
    seed: int | None = 0,
) -> list[int]:
    """Two modes at 10% and 90% of the range; the median sits in whichever mode
    holds the larger fraction, far from the mean."""
    require_positive(count, "count")
    rng = make_rng(seed)
    low_centre = max_value // 10
    high_centre = 9 * max_value // 10
    spread = max(1, max_value // 50)
    values = []
    for _ in range(count):
        centre = low_centre if rng.random() < low_fraction else high_centre
        values.append(max(0, min(max_value, centre + rng.randint(-spread, spread))))
    return values


def adversarial_near_median_values(
    count: int,
    max_value: int = 1 << 16,
    dense_fraction: float = 0.5,
    seed: int | None = 0,
) -> list[int]:
    """Half the items packed within one part in 10⁴ of the range around the centre.

    Rank probes near the median see counts change very quickly with the probe
    value, so this is the stress case for the noise-tolerant binary search of
    Fig. 2 (small value error β still permits a large rank error α and vice
    versa).
    """
    require_positive(count, "count")
    rng = make_rng(seed)
    centre = max_value // 2
    dense_width = max(1, max_value // 10_000)
    values = []
    for _ in range(count):
        if rng.random() < dense_fraction:
            values.append(centre + rng.randint(-dense_width, dense_width))
        else:
            values.append(rng.randint(0, max_value))
    return [max(0, min(max_value, value)) for value in values]


def correlated_field_values(
    count: int,
    max_value: int = 1 << 16,
    noise_fraction: float = 0.05,
    hotspots: int = 3,
    seed: int | None = 0,
) -> list[int]:
    """A synthetic sensor field: smooth spatial gradient + hotspots + noise.

    Nodes are assumed to be laid out on a √count × √count grid in row-major
    order (matching :func:`repro.network.topology.grid_topology`), so
    neighbouring nodes report similar values — the spatial correlation real
    deployments exhibit and TAG-style aggregation exploits.
    """
    require_positive(count, "count")
    rng = make_rng(seed)
    side = max(1, int(math.ceil(math.sqrt(count))))
    centres = [
        (rng.random() * (side - 1), rng.random() * (side - 1), rng.uniform(0.3, 1.0))
        for _ in range(hotspots)
    ]
    values = []
    for index in range(count):
        row, col = divmod(index, side)
        gradient = (row + col) / max(1, 2 * (side - 1))
        bump = 0.0
        for centre_row, centre_col, strength in centres:
            distance_sq = (row - centre_row) ** 2 + (col - centre_col) ** 2
            bump += strength * math.exp(-distance_sq / max(1.0, side))
        noise = rng.gauss(0.0, noise_fraction)
        level = min(1.0, max(0.0, 0.5 * gradient + 0.4 * bump / max(1, hotspots) + noise))
        values.append(int(round(level * max_value)))
    return values


WORKLOAD_GENERATORS = {
    "uniform": uniform_values,
    "sequential": sequential_values,
    "all_equal": all_equal_values,
    "zipf": zipf_values,
    "clustered": clustered_values,
    "bimodal": bimodal_values,
    "adversarial_near_median": adversarial_near_median_values,
    "correlated_field": correlated_field_values,
}
"""Name → generator map used by the experiment harness and the benchmarks."""


def generate_workload(
    name: str, count: int, max_value: int = 1 << 16, seed: int | None = 0
) -> list[int]:
    """Generate a named workload of ``count`` items bounded by ``max_value``."""
    if name not in WORKLOAD_GENERATORS:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_GENERATORS)}"
        )
    return WORKLOAD_GENERATORS[name](count, max_value=max_value, seed=seed)
