"""E3 — Theorem 3.2: exact median with O((log N)^2) bits per node.

Reproduces the headline deterministic result: the protocol is always exact,
uses O(log N) probes, and its per-node communication grows like
log N · log X̄ — the table reports the measured bits alongside the fitted
constant against that envelope, and the power-law exponent (≈ 0, i.e. not
linear in N).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_exact_median_sweep
from repro.analysis.metrics import fit_against_model, fit_growth_exponent
from repro.analysis.report import format_table
from repro.analysis.theory import exact_median_bits_envelope

SIZES = [64, 144, 324, 729, 1600]


def test_exact_median_scaling(benchmark):
    records = run_once(benchmark, run_exact_median_sweep, SIZES)

    rows = [
        [
            record.num_items,
            record.domain_max,
            int(record.answer),
            record.extra["exact"],
            record.extra["probes"],
            record.max_node_bits,
        ]
        for record in records
    ]
    print()
    print(format_table(
        ["N", "X̄", "median", "exact?", "probes", "max bits/node"],
        rows,
        title="E3  Theorem 3.2 — deterministic median (Fig. 1)",
    ))

    assert all(record.extra["exact"] for record in records)

    sizes = [record.num_items for record in records]
    costs = [record.max_node_bits for record in records]
    exponent, _ = fit_growth_exponent(sizes, costs)
    constant, spread = fit_against_model(
        sizes, costs, lambda n: exact_median_bits_envelope(n, n * n)
    )
    benchmark.extra_info["power_law_exponent"] = round(exponent, 3)
    benchmark.extra_info["logsq_model_constant"] = round(constant, 3)
    benchmark.extra_info["logsq_model_ratio_spread"] = round(spread, 3)
    # Shape checks: far from linear, and the (log N)^2 envelope tracks the
    # measurements within a modest constant band across a 25x range of N.
    assert exponent < 0.5
    assert spread < 3.0


def test_exact_median_workload_robustness(benchmark):
    records = run_once(
        benchmark,
        run_exact_median_sweep,
        [400],
        workloads=("uniform", "zipf", "clustered", "bimodal", "adversarial_near_median"),
    )
    rows = [
        [record.workload, int(record.answer), record.extra["exact"], record.max_node_bits]
        for record in records
    ]
    print()
    print(format_table(
        ["workload", "median", "exact?", "max bits/node"],
        rows,
        title="E3b  deterministic median across workloads (N = 400)",
    ))
    assert all(record.extra["exact"] for record in records)
    costs = [record.max_node_bits for record in records]
    benchmark.extra_info["cost_range_across_workloads"] = (min(costs), max(costs))
    assert max(costs) <= 2 * min(costs)  # worst-case bound is input independent
