"""Deterministic 64-bit hashing.

All sketches need a hash function that (a) behaves like a uniform random
function, (b) is deterministic given a seed so experiments are reproducible,
and (c) supports *salting* so independent protocol invocations see independent
hash functions — the paper's ``REP_COUNTP`` averages ``r`` independent runs of
``APX_COUNT``, which is only meaningful if the runs use fresh randomness.

The implementation is a splitmix64-style finaliser, which passes the usual
avalanche tests and needs no external dependencies.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def hash64(value: int, salt: int = 0) -> int:
    """Hash an integer to a 64-bit value, parameterised by ``salt``.

    >>> hash64(42) == hash64(42)
    True
    >>> hash64(42, salt=1) != hash64(42, salt=2)
    True
    """
    x = (int(value) ^ (int(salt) * 0x9E3779B97F4A7C15)) & _MASK64
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z = z ^ (z >> 31)
    return z & _MASK64


def hash_to_unit(value: int, salt: int = 0) -> float:
    """Hash an integer to a float uniform in ``[0, 1)``."""
    return hash64(value, salt) / float(1 << 64)


def leading_rank(hash_value: int, width: int = 64) -> int:
    """Return the 1-based position of the first set bit (from the MSB side).

    This is the geometric random variable used by LogLog-style sketches: for a
    uniform ``hash_value``, ``P(rank = k) = 2^-k``.  If the value is zero the
    rank is ``width + 1`` (all bits were zero).
    """
    if hash_value == 0:
        return width + 1
    # Position of first set bit from the most-significant side.
    return width - hash_value.bit_length() + 1
