"""Whole-array level-sweep kernels behind the vectorized execution paths.

The reference :func:`~repro.protocols.epoch_convergecast.epoch_convergecast`
visits each active node through a Python ``decide`` callback.  At production
scale that callback dominates the epoch, so the vectorized engine replaces it
with :func:`sweep_levels`: one pass per tree level over contiguous ``int64``
columns, computing every node's merge / suppression / delta decision with
array arithmetic and charging the level's transmissions in a single batch.

The kernel is *semantics-identical* to the batched reference for
count-valued summaries (:class:`~repro.streaming.summaries.CountSummary`):

* levels are processed deepest-first and one ledger round is advanced per
  level whether or not anything transmitted;
* within a level, transmissions are emitted in ascending canonical position
  — which inside one level is ascending node id, the order the batched and
  per-edge paths charge;
* a node transmits a full frame (``varint_bits(v) + 1``) on first contact,
  suppresses when ``|v - transmitted| <= slack``, and otherwise pays
  ``1 + min(delta_bits, full_bits)``, exactly the engine's ``decide`` rule;
* ``transmitted`` is updated on every transmission, the parent-side cache
  (``last_delivered``) only on delivery — so lossy radios leave the same
  stale caches the reference leaves.

The same kernel serves three callers: the in-process vectorized engine
(whole tree, root at position 0), the sharded backend (subtree slices whose
tops transmit *externally* to the root), and the standalone
:class:`~repro.network.vector_field.VectorField` used by the million-node
benchmarks.  Callers own charging: the kernel hands positions and sizes to a
``charge`` callable and interprets its returned delivery mask.

Exact bit-width arithmetic: the varint widths are computed through
``np.frexp``, which recovers ``bit_length`` exactly for magnitudes below
2**53.  Count summaries at any simulated scale stay far below that; the
helpers guard the bound explicitly rather than silently rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro._util.fastpath import np, require_numpy
from repro.exceptions import ConfigurationError

#: ``parent`` value marking a node with no parent that must not transmit
#: (the global root).
NO_PARENT = -1
#: ``parent`` value marking a shard-local top: its parent exists but lives
#: outside the local arrays, so its transmissions are delivered externally.
EXTERNAL_PARENT = -2

#: Largest magnitude whose bit length ``np.frexp`` recovers exactly.
_EXACT_LIMIT = 1 << 53


def _check_exact(values) -> None:
    if values.size and int(np.abs(values).max()) >= _EXACT_LIMIT:
        raise ConfigurationError(
            "vectorized varint sizing requires magnitudes below 2**53; "
            f"got {int(np.abs(values).max())}"
        )


def bit_width_array(values):
    """Vectorized ``max(1, v.bit_length())`` for non-negative int64 arrays."""
    require_numpy("vectorized varint sizing")
    _check_exact(values)
    exponents = np.frexp(values.astype(np.float64))[1]
    return np.maximum(1, exponents).astype(np.int64)


def varint_bits_array(values):
    """Vectorized :func:`repro._util.bits.varint_bits` (non-negative values)."""
    return 2 * bit_width_array(values) - 1


def signed_varint_bits_array(values):
    """Vectorized :func:`repro._util.bits.signed_varint_bits` (zigzag)."""
    require_numpy("vectorized varint sizing")
    zigzag = np.where(values >= 0, 2 * values, -2 * values - 1)
    return 2 * bit_width_array(zigzag) - 1


@dataclass
class SweepState:
    """Per-(node, query) streaming state as parallel ``int64``/bool columns.

    One row per canonical tree position (or shard-local position).  The
    columns mirror the reference engine's ``_NodeQueryState`` fields:
    ``local``/``has_local`` its local summary, ``child_sum`` the sum of the
    cached child summaries (the merge of a count summary is addition, so the
    children cache collapses to one number plus each child's
    ``last_delivered`` entry), ``transmitted``/``has_transmitted`` the last
    value sent up, ``last_delivered``/``has_delivered`` the copy the parent
    holds, and ``subtree_val``/``has_subtree`` the node's last merged view.
    """

    local: "np.ndarray"
    has_local: "np.ndarray"
    child_sum: "np.ndarray"
    transmitted: "np.ndarray"
    has_transmitted: "np.ndarray"
    last_delivered: "np.ndarray"
    has_delivered: "np.ndarray"
    subtree_val: "np.ndarray"
    has_subtree: "np.ndarray"

    COLUMNS = (
        "local",
        "has_local",
        "child_sum",
        "transmitted",
        "has_transmitted",
        "last_delivered",
        "has_delivered",
        "subtree_val",
        "has_subtree",
    )
    _INT_COLUMNS = frozenset(
        {"local", "child_sum", "transmitted", "last_delivered", "subtree_val"}
    )

    @classmethod
    def zeros(cls, num_rows: int) -> "SweepState":
        require_numpy("vectorized streaming state")
        return cls(
            **{
                name: np.zeros(
                    num_rows,
                    dtype=np.int64 if name in cls._INT_COLUMNS else bool,
                )
                for name in cls.COLUMNS
            }
        )

    def clear_rows(self, positions) -> None:
        for name in self.COLUMNS:
            getattr(self, name)[positions] = 0

    def take(self, positions) -> "SweepState":
        """Gather a shard-local copy of the given rows."""
        return SweepState(
            **{name: getattr(self, name)[positions] for name in self.COLUMNS}
        )

    def scatter(self, positions, other: "SweepState") -> None:
        """Write a shard-local copy back into the global rows."""
        for name in self.COLUMNS:
            getattr(self, name)[positions] = getattr(other, name)


@dataclass
class SweepResult:
    """Traffic outcome of one :func:`sweep_levels` call."""

    activated: int = 0
    transmissions: int = 0
    suppressions: int = 0
    levels: int = 0
    #: Sum of delivered deltas from ``EXTERNAL_PARENT`` tops (shard → root).
    external_delta: int = 0
    #: Number of delivered external transmissions.
    external_count: int = 0


#: ``charge(sender_positions, parent_values, sizes)`` charges one level's
#: transmissions and returns a delivered-mask (or ``None`` for "all
#: delivered").  ``parent_values`` may contain :data:`EXTERNAL_PARENT`.
ChargeFn = Callable[["np.ndarray", "np.ndarray", "np.ndarray"], "np.ndarray | None"]


def sweep_levels(
    *,
    parent: "np.ndarray",
    level_spans: Sequence[tuple[int, int]],
    state: SweepState,
    active: "np.ndarray",
    slack: float,
    charge: ChargeFn,
    advance_round: Callable[[], None] | None = None,
    result: SweepResult | None = None,
) -> SweepResult:
    """Run one epoch's change-driven convergecast as whole-array level passes.

    ``level_spans`` lists the ``(start, end)`` slices to process, ordered
    deepest level first (the caller slices the flat tree's spans down to the
    deepest dirty level).  ``active`` is the dirty mask and is grown in place
    as deliveries activate parents.  ``advance_round`` (typically
    ``ledger.advance_round``) fires once per span, matching the reference's
    one-round-per-depth schedule.
    """
    out = result if result is not None else SweepResult()
    for start, end in level_spans:
        out.levels += 1
        window = active[start:end]
        if not window.any():
            if advance_round is not None:
                advance_round()
            continue
        positions = np.flatnonzero(window).astype(np.int64) + start
        out.activated += int(positions.size)
        subtree = state.local[positions] + state.child_sum[positions]
        state.subtree_val[positions] = subtree
        state.has_subtree[positions] = True

        parents = parent[positions]
        senders = parents != NO_PARENT
        if not senders.any():
            if advance_round is not None:
                advance_round()
            continue
        send_pos = positions[senders]
        send_par = parents[senders]
        send_sub = subtree[senders]

        prior = state.transmitted[send_pos]
        has_prior = state.has_transmitted[send_pos]
        diff = send_sub - prior
        suppressed = has_prior & (np.abs(diff).astype(np.float64) <= slack)
        out.suppressions += int(suppressed.sum())
        transmitting = ~suppressed
        if not transmitting.any():
            if advance_round is not None:
                advance_round()
            continue
        tx_pos = send_pos[transmitting]
        tx_par = send_par[transmitting]
        tx_sub = send_sub[transmitting]
        full_bits = varint_bits_array(tx_sub) + 1
        delta_bits = signed_varint_bits_array(diff[transmitting]) + 1
        sizes = np.where(
            has_prior[transmitting],
            1 + np.minimum(delta_bits, full_bits),
            full_bits,
        )
        out.transmissions += int(tx_pos.size)
        # The sender's view updates whether or not the radio delivers —
        # exactly the reference decide()'s pre-send bookkeeping.
        state.transmitted[tx_pos] = tx_sub
        state.has_transmitted[tx_pos] = True

        delivered = charge(tx_pos, tx_par, sizes)
        if delivered is None:
            del_pos, del_par, del_sub = tx_pos, tx_par, tx_sub
        else:
            del_pos = tx_pos[delivered]
            del_par = tx_par[delivered]
            del_sub = tx_sub[delivered]
        if del_pos.size:
            previous = np.where(
                state.has_delivered[del_pos], state.last_delivered[del_pos], 0
            )
            delta = del_sub - previous
            internal = del_par >= 0
            if internal.any():
                targets = del_par[internal]
                np.add.at(state.child_sum, targets, delta[internal])
                active[targets] = True
            external = ~internal
            if external.any():
                out.external_delta += int(delta[external].sum())
                out.external_count += int(external.sum())
            state.last_delivered[del_pos] = del_sub
            state.has_delivered[del_pos] = True
        if advance_round is not None:
            advance_round()
    return out
