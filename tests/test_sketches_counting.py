"""Tests for the cardinality sketches (LogLog, HyperLogLog, FM, geometric max)."""

import random

import pytest

from repro.sketches.flajolet_martin import FlajoletMartinSketch
from repro.sketches.geometric import GeometricMaxEstimator, geometric_rank
from repro.sketches.hyperloglog import HyperLogLogSketch
from repro.sketches.loglog import LogLogSketch, loglog_relative_sigma


class TestGeometricRank:
    def test_minimum_is_one(self):
        rng = random.Random(0)
        assert all(geometric_rank(rng) >= 1 for _ in range(100))

    def test_mean_is_about_two(self):
        rng = random.Random(1)
        samples = [geometric_rank(rng) for _ in range(20_000)]
        assert 1.9 < sum(samples) / len(samples) < 2.1

    def test_max_concentrates_near_log_n(self):
        # The observation behind Fact 2.2: max of N geometric samples ≈ log2 N.
        rng = random.Random(2)
        n = 4096
        maxima = [max(geometric_rank(rng) for _ in range(n)) for _ in range(20)]
        mean_max = sum(maxima) / len(maxima)
        assert 10 < mean_max < 16  # log2(4096) = 12


class TestGeometricMaxEstimator:
    def test_empty_estimate_is_zero(self):
        assert GeometricMaxEstimator(num_registers=8).estimate() == 0.0

    def test_estimates_sample_count_within_factor_two(self):
        n = 2000
        sketch = GeometricMaxEstimator(num_registers=64)
        rng = random.Random(3)
        for _ in range(n):
            for register in range(sketch.num_registers):
                sketch.observe(register, geometric_rank(rng))
        assert n / 2 <= sketch.estimate() <= 2 * n

    def test_merge_is_elementwise_max(self):
        a = GeometricMaxEstimator(num_registers=4, registers=[1, 5, 2, 0])
        b = GeometricMaxEstimator(num_registers=4, registers=[3, 1, 2, 7])
        assert a.merge(b).registers == [3, 5, 2, 7]

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GeometricMaxEstimator(num_registers=4).merge(
                GeometricMaxEstimator(num_registers=8)
            )

    def test_observe_bounds_checked(self):
        sketch = GeometricMaxEstimator(num_registers=4)
        with pytest.raises(IndexError):
            sketch.observe(4, 1)

    def test_from_local_samples_reproducible(self):
        a = GeometricMaxEstimator.from_local_samples(16, seed=5)
        b = GeometricMaxEstimator.from_local_samples(16, seed=5)
        assert a.registers == b.registers


@pytest.mark.parametrize("sketch_cls", [LogLogSketch, HyperLogLogSketch])
class TestLogLogFamily:
    def test_empty_estimate_zero(self, sketch_cls):
        assert sketch_cls(num_registers=16).estimate() == 0.0

    def test_requires_power_of_two_registers(self, sketch_cls):
        with pytest.raises(ValueError):
            sketch_cls(num_registers=10)

    def test_distinct_counting_accuracy(self, sketch_cls):
        sketch = sketch_cls(num_registers=256, salt=1)
        true_count = 5000
        for value in range(true_count):
            sketch.add_item(value)
        estimate = sketch.estimate()
        assert abs(estimate - true_count) / true_count < 0.25

    def test_duplicates_collapse_in_item_mode(self, sketch_cls):
        sketch = sketch_cls(num_registers=64, salt=2)
        for _ in range(50):
            for value in range(100):
                sketch.add_item(value)
        assert sketch.estimate() < 400  # ~100 despite 5000 insertions

    def test_random_mode_counts_multiplicities(self, sketch_cls):
        sketch = sketch_cls(num_registers=256, salt=3)
        rng = random.Random(7)
        for _ in range(3000):
            sketch.add_random(rng)
        assert abs(sketch.estimate() - 3000) / 3000 < 0.3

    def test_merge_equals_union(self, sketch_cls):
        left = sketch_cls(num_registers=64, salt=4)
        right = sketch_cls(num_registers=64, salt=4)
        union = sketch_cls(num_registers=64, salt=4)
        for value in range(0, 600):
            left.add_item(value)
            union.add_item(value)
        for value in range(400, 1000):
            right.add_item(value)
            union.add_item(value)
        merged = left.merge(right)
        assert merged.registers == union.registers

    def test_merge_salt_mismatch_rejected(self, sketch_cls):
        with pytest.raises(ValueError):
            sketch_cls(num_registers=16, salt=1).merge(sketch_cls(num_registers=16, salt=2))

    def test_merge_size_mismatch_rejected(self, sketch_cls):
        with pytest.raises(ValueError):
            sketch_cls(num_registers=16).merge(sketch_cls(num_registers=32))

    def test_serialized_bits_are_loglog_sized(self, sketch_cls):
        sketch = sketch_cls(num_registers=64)
        # 64 registers of ~5-6 bits each — far below 64 values of 30 bits.
        assert sketch.serialized_bits(1 << 30) <= 64 * 6

    def test_relative_sigma_decreases_with_registers(self, sketch_cls):
        small = sketch_cls(num_registers=16)
        large = sketch_cls(num_registers=256)
        assert large.relative_sigma < small.relative_sigma


class TestLogLogSpecifics:
    def test_sigma_constant(self):
        assert loglog_relative_sigma(64) == pytest.approx(1.30 / 8.0)

    def test_copy_is_independent(self):
        sketch = LogLogSketch(num_registers=16)
        clone = sketch.copy()
        clone.add_item(1)
        assert sketch.registers != clone.registers or sketch.estimate() == 0.0

    def test_merge_in_place(self):
        a = LogLogSketch(num_registers=16, salt=1)
        b = LogLogSketch(num_registers=16, salt=1)
        for value in range(100):
            b.add_item(value)
        a.merge_in_place(b)
        assert a.registers == b.registers

    def test_estimator_variance_matches_promise(self):
        # Empirical check of Fact 2.2's sigma across independent salts.
        true_count = 2000
        m = 64
        estimates = []
        for salt in range(40):
            sketch = LogLogSketch(num_registers=m, salt=salt)
            for value in range(true_count):
                sketch.add_item(value + salt * 10_000_000)
            estimates.append(sketch.estimate())
        mean = sum(estimates) / len(estimates)
        spread = (sum((e - mean) ** 2 for e in estimates) / len(estimates)) ** 0.5
        relative = spread / true_count
        # Promise is ~1.3/sqrt(64) = 0.1625; allow a generous band.
        assert relative < 0.35


class TestFlajoletMartin:
    def test_estimate_within_factor_two(self):
        sketch = FlajoletMartinSketch(num_bitmaps=64, salt=1)
        true_count = 4000
        for value in range(true_count):
            sketch.add_item(value)
        assert true_count / 2 <= sketch.estimate() <= 2 * true_count

    def test_merge_is_bitwise_or(self):
        a = FlajoletMartinSketch(num_bitmaps=16, salt=2)
        b = FlajoletMartinSketch(num_bitmaps=16, salt=2)
        for value in range(200):
            a.add_item(value)
        for value in range(100, 300):
            b.add_item(value)
        merged = a.merge(b)
        for index in range(16):
            assert merged.bitmaps[index] == a.bitmaps[index] | b.bitmaps[index]

    def test_empty_estimate_zero(self):
        assert FlajoletMartinSketch(num_bitmaps=16).estimate() == 0.0

    def test_serialized_bits_are_log_sized_not_loglog(self):
        fm = FlajoletMartinSketch(num_bitmaps=64, bitmap_width=32)
        loglog = LogLogSketch(num_registers=64)
        assert fm.serialized_bits() > 3 * loglog.serialized_bits(1 << 30)

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError):
            FlajoletMartinSketch(num_bitmaps=16).merge(FlajoletMartinSketch(num_bitmaps=32))
