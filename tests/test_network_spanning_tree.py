"""Tests for spanning-tree construction."""

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.network.spanning_tree import bfs_tree, bounded_degree_tree
from repro.network.topology import (
    grid_topology,
    line_topology,
    random_geometric_topology,
    ring_topology,
    single_hop_topology,
    star_topology,
)


class TestBfsTree:
    def test_spans_all_nodes(self):
        graph = grid_topology(4)
        tree = bfs_tree(graph, root=0)
        assert set(tree.parent) == set(graph.nodes())
        tree.validate(graph)

    def test_root_has_no_parent(self):
        tree = bfs_tree(grid_topology(3), root=0)
        assert tree.parent[0] is None
        assert tree.depth[0] == 0

    def test_depth_is_graph_distance(self):
        graph = grid_topology(4)
        tree = bfs_tree(graph, root=0)
        distances = nx.single_source_shortest_path_length(graph, 0)
        assert tree.depth == distances

    def test_line_tree_height(self):
        tree = bfs_tree(line_topology(10), root=0)
        assert tree.height == 9

    def test_unknown_root_rejected(self):
        with pytest.raises(TopologyError):
            bfs_tree(line_topology(4), root=99)

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        with pytest.raises(TopologyError):
            bfs_tree(graph, root=0)

    def test_bottom_up_order_children_before_parents(self):
        tree = bfs_tree(grid_topology(4), root=0)
        order = tree.nodes_bottom_up()
        position = {node: index for index, node in enumerate(order)}
        for node, parent in tree.parent.items():
            if parent is not None:
                assert position[node] < position[parent]

    def test_top_down_order_parents_before_children(self):
        tree = bfs_tree(grid_topology(4), root=0)
        order = tree.nodes_top_down()
        position = {node: index for index, node in enumerate(order)}
        for node, parent in tree.parent.items():
            if parent is not None:
                assert position[parent] < position[node]

    def test_path_to_root_ends_at_root(self):
        tree = bfs_tree(grid_topology(3), root=0)
        for node in tree.parent:
            assert tree.path_to_root(node)[-1] == 0

    def test_subtree_of_root_is_everything(self):
        tree = bfs_tree(grid_topology(3), root=0)
        assert set(tree.subtree_nodes(0)) == set(tree.parent)

    def test_nonzero_root(self):
        tree = bfs_tree(grid_topology(3), root=4)
        assert tree.root == 4
        assert tree.parent[4] is None


class TestBoundedDegreeTree:
    def test_still_a_spanning_tree(self):
        graph = single_hop_topology(20)
        tree = bounded_degree_tree(graph, root=0, max_degree=3)
        tree.validate(graph)
        assert set(tree.parent) == set(graph.nodes())

    def test_degree_reduced_on_clique(self):
        graph = single_hop_topology(30)
        unbounded = bfs_tree(graph, root=0)
        bounded = bounded_degree_tree(graph, root=0, max_degree=3)
        assert unbounded.max_degree() == 29
        assert bounded.max_degree() <= 3

    def test_degree_bound_respected_on_grid(self):
        graph = grid_topology(6)
        tree = bounded_degree_tree(graph, root=0, max_degree=3)
        assert tree.max_degree() <= 3

    def test_star_bound_is_best_effort(self):
        # The star admits no low-degree spanning tree: the construction must
        # still return a valid tree even though the bound cannot be met.
        graph = star_topology(12)
        tree = bounded_degree_tree(graph, root=0, max_degree=3)
        tree.validate(graph)
        assert tree.max_degree() == 11

    def test_ring_unchanged(self):
        graph = ring_topology(10)
        tree = bounded_degree_tree(graph, root=0, max_degree=3)
        assert tree.max_degree() <= 2 + 1

    def test_random_geometric(self):
        graph = random_geometric_topology(60, seed=7)
        tree = bounded_degree_tree(graph, root=0, max_degree=4)
        tree.validate(graph)

    def test_rejects_degree_below_two(self):
        with pytest.raises(TopologyError):
            bounded_degree_tree(grid_topology(3), root=0, max_degree=1)

    def test_validate_detects_foreign_edges(self):
        graph = grid_topology(3)
        tree = bfs_tree(graph, root=0)
        tree.parent[8] = 0  # 8 is not adjacent to 0 in a 3x3 grid
        with pytest.raises(TopologyError):
            tree.validate(graph)
