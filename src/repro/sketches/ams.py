"""Alon–Matias–Szegedy (AMS) frequency-moment sketch.

The paper cites Alon, Matias and Szegedy [1] for the space complexity of
approximating frequency moments.  The second frequency moment F₂ (the "repeat
rate") is the moment their tug-of-war sketch estimates; it is included here as
part of the sketching substrate because it shares the mergeability property
the aggregation protocols rely on, and because the self-join-size experiments
in the extended benchmark suite use it as another example of an aggregate that
is cheap to approximate but expensive to compute exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Iterable

from repro._util.bits import bit_width
from repro._util.validation import require_positive
from repro.sketches.hashing import hash64


def _sign(value: int, salt: int) -> int:
    """Four-wise-independent-ish ±1 hash (splitmix64 based)."""
    return 1 if hash64(value, salt=salt) & 1 else -1


@dataclass
class AmsF2Sketch:
    """Tug-of-war sketch for the second frequency moment.

    ``num_counters`` independent counters are grouped into ``num_groups``
    groups; each group is averaged and the final estimate is the median of the
    group averages (the classic median-of-means construction).
    """

    num_counters: int = 64
    num_groups: int = 8
    salt: int = 0
    counters: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.num_counters, "num_counters")
        require_positive(self.num_groups, "num_groups")
        if self.num_counters % self.num_groups:
            raise ValueError("num_counters must be a multiple of num_groups")
        if not self.counters:
            self.counters = [0] * self.num_counters
        if len(self.counters) != self.num_counters:
            raise ValueError("counter list length does not match num_counters")

    def add_item(self, value: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``value``."""
        for index in range(self.num_counters):
            self.counters[index] += count * _sign(value, salt=self.salt * 1000003 + index)

    def add_items(self, values: Iterable[int]) -> None:
        for value in values:
            self.add_item(value)

    def merge(self, other: "AmsF2Sketch") -> "AmsF2Sketch":
        """Counter-wise sum (sketches are linear)."""
        if (
            other.num_counters != self.num_counters
            or other.num_groups != self.num_groups
            or other.salt != self.salt
        ):
            raise ValueError("incompatible sketches")
        merged = AmsF2Sketch(
            num_counters=self.num_counters,
            num_groups=self.num_groups,
            salt=self.salt,
        )
        merged.counters = [a + b for a, b in zip(self.counters, other.counters)]
        return merged

    def estimate(self) -> float:
        """Median-of-means estimate of F₂ = Σ frequency²."""
        group_size = self.num_counters // self.num_groups
        group_means = []
        for group in range(self.num_groups):
            start = group * group_size
            squares = [c * c for c in self.counters[start : start + group_size]]
            group_means.append(sum(squares) / group_size)
        return float(median(group_means))

    def serialized_bits(self, max_items: int = 1 << 20) -> int:
        """Bits to transmit: counters bounded by ±max_items."""
        return self.num_counters * (bit_width(max_items) + 1)
