"""Mergeable uniform sampling.

Nath et al. (cited in the paper's "concurrent results" discussion) approximate
the median by drawing a uniform sample of the items with an order- and
duplicate-insensitive synopsis and returning the sample median.  The sample
must be mergeable bottom-up; the standard construction tags every item with a
uniform hash-derived priority and keeps the ``k`` smallest priorities — the
result is a uniform sample without replacement regardless of how partial
samples are combined, and duplicates of the same (node, item) pair collapse.

Per the paper's analysis, each sampled item costs ``Ω(log N)`` bits to ship,
so the per-node cost of this baseline is ``Ω(k log N)`` — the comparison line
for experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.bits import fixed_width_bits
from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError
from repro.sketches.hashing import hash_to_unit


@dataclass(frozen=True)
class _Tagged:
    """An item tagged with its sampling priority and origin."""

    priority: float
    value: int
    origin: int


@dataclass
class MergeableSample:
    """A bottom-k uniform sample of capacity ``capacity``."""

    capacity: int
    salt: int = 0
    entries: list[_Tagged] = field(default_factory=list)
    observed: int = 0

    def __post_init__(self) -> None:
        require_positive(self.capacity, "capacity")

    def add(self, value: int, origin: int) -> None:
        """Offer one item held by node ``origin`` to the sample."""
        priority = hash_to_unit(origin * 2654435761 + value, salt=self.salt)
        self.entries.append(_Tagged(priority=priority, value=value, origin=origin))
        self.observed += 1
        self._prune()

    def _prune(self) -> None:
        if len(self.entries) > self.capacity:
            self.entries.sort(key=lambda entry: entry.priority)
            del self.entries[self.capacity :]

    def merge(self, other: "MergeableSample") -> "MergeableSample":
        """Combine two partial samples (duplicates of the same origin collapse)."""
        if other.capacity != self.capacity or other.salt != self.salt:
            raise ConfigurationError("cannot merge incompatible samples")
        merged = MergeableSample(capacity=self.capacity, salt=self.salt)
        seen: dict[tuple[int, int, float], _Tagged] = {}
        for entry in list(self.entries) + list(other.entries):
            seen[(entry.origin, entry.value, entry.priority)] = entry
        merged.entries = list(seen.values())
        merged.observed = self.observed + other.observed
        merged._prune()
        return merged

    def values(self) -> list[int]:
        """The sampled values, in priority order."""
        return [entry.value for entry in sorted(self.entries, key=lambda e: e.priority)]

    def sample_median(self) -> int:
        """Median of the sampled values (the Nath et al. median estimate)."""
        values = sorted(self.values())
        if not values:
            raise ConfigurationError("cannot take the median of an empty sample")
        return values[(len(values) - 1) // 2]

    def sample_quantile(self, fraction: float) -> int:
        """Approximate quantile from the sample."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
        values = sorted(self.values())
        if not values:
            raise ConfigurationError("cannot query an empty sample")
        index = min(len(values) - 1, int(fraction * len(values)))
        return values[index]

    @property
    def size(self) -> int:
        return len(self.entries)

    def serialized_bits(self, max_value: int, max_nodes: int) -> int:
        """Bits to transmit: each entry ships a value, an origin id and a priority."""
        priority_bits = 32  # fixed-point priority, enough to break ties w.h.p.
        per_entry = fixed_width_bits(max_value) + fixed_width_bits(max_nodes) + priority_bits
        return self.size * per_entry + fixed_width_bits(max(self.observed, 1))
