"""Cross-path ledger equivalence: batched vs per-edge execution.

The batched execution core's contract is that it is *indistinguishable* from
the per-edge reference in everything the paper measures: the same per-node
bits, totals, message counts, rounds and per-protocol breakdowns, under every
topology and radio model, for the same seeds.  These property-style tests
build twin networks — identical graphs, items, trees and identically seeded
radios — run one under each execution mode, and compare full ledger
snapshots (and protocol results) field by field.
"""

import random

import pytest

from repro.core.median import DeterministicMedianProtocol
from repro.network.radio import DuplicatingRadio, LossyRadio, ReliableRadio
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import CountProtocol, SumProtocol
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.protocols.epoch_convergecast import epoch_convergecast

TOPOLOGIES = ["grid", "line", "star", "random_geometric", "random_tree"]
RADIOS = {
    "reliable": lambda seed: ReliableRadio(),
    "lossy": lambda seed: LossyRadio(loss_rate=0.35, seed=seed),
    "duplicating": lambda seed: DuplicatingRadio(duplicate_rate=0.3, seed=seed),
}
SEEDS = [0, 1, 2]


def twin_networks(topology, radio_name, seed, num_nodes=36):
    rng = random.Random(seed * 7919 + 13)
    items = [rng.randrange(1, 400) for _ in range(num_nodes)]
    networks = []
    for mode in ("batched", "per-edge"):
        networks.append(
            SensorNetwork.from_items(
                items,
                topology=topology,
                seed=seed,
                radio=RADIOS[radio_name](seed),
                execution=mode,
            )
        )
    return networks


def assert_ledgers_identical(batched, per_edge):
    left = batched.ledger.snapshot()
    right = per_edge.ledger.snapshot()
    assert left.per_node_bits == right.per_node_bits
    assert left.total_bits == right.total_bits
    assert left.max_node_bits == right.max_node_bits
    assert left.messages == right.messages
    assert left.rounds == right.rounds
    assert left.per_protocol_bits == right.per_protocol_bits


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("radio_name", sorted(RADIOS))
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_tree_sweeps_are_ledger_identical(topology, radio_name, seed):
    """Broadcast + adaptive-size convergecast + epoch convergecast."""
    batched, per_edge = twin_networks(topology, radio_name, seed)
    rng = random.Random(seed + 101)
    dirty = {
        node_id
        for node_id in batched.node_ids()
        if rng.random() < 0.3
    } or {batched.node_ids()[-1]}

    def decide(node_id, updates):
        # Deterministic mix of suppression and adaptive payload sizes.
        if node_id % 5 == 0 and not updates:
            return None
        return ("summary", 8 + (node_id % 3) * 4 + 2 * len(updates))

    results = []
    stats = []
    for network in (batched, per_edge):
        broadcast(network, "query", 24, protocol="request")
        results.append(
            convergecast(
                network,
                local_value=lambda node: sum(node.items),
                combine=lambda a, b: a + b,
                size_bits=lambda value: max(8, value.bit_length()),
                protocol="sum",
            )
        )
        stats.append(
            epoch_convergecast(network, set(dirty), decide, protocol="epoch")
        )
    assert results[0] == results[1]
    assert stats[0] == stats[1]
    assert_ledgers_identical(batched, per_edge)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("radio_name", ["reliable", "lossy"])
@pytest.mark.parametrize("topology", ["grid", "random_geometric"])
def test_metered_protocols_are_ledger_identical(topology, radio_name, seed):
    """Full protocol objects (MeteredRun + sub-protocols) across both paths."""
    batched, per_edge = twin_networks(topology, radio_name, seed, num_nodes=36)
    for protocol in (CountProtocol(), SumProtocol()):
        outcomes = []
        for network in (batched, per_edge):
            network.reset_ledger()
            outcomes.append(protocol.run(network))
        assert outcomes[0] == outcomes[1]
        assert_ledgers_identical(batched, per_edge)


@pytest.mark.parametrize("seed", range(6))
def test_delivery_failure_charges_identically(seed):
    """A permanent link failure mid-sweep charges the same prefix on both paths.

    The per-edge loop charges every transmission delivered before the failing
    link and nothing for the failure itself; the batched path must land on
    exactly the same ledger before the DeliveryError propagates.
    """
    from repro.exceptions import DeliveryError

    nets = [
        SensorNetwork.from_items(
            list(range(1, 13)),
            topology="line",
            radio=LossyRadio(loss_rate=0.9, max_retries=1, seed=seed),
            execution=mode,
        )
        for mode in ("batched", "per-edge")
    ]
    raised = []
    for network in nets:
        try:
            convergecast(
                network,
                local_value=lambda node: sum(node.items),
                combine=lambda a, b: a + b,
                size_bits=16,
                protocol="sum",
            )
            raised.append(False)
        except DeliveryError:
            raised.append(True)
    assert raised[0] == raised[1]
    assert raised[0], "loss_rate=0.9 with 1 retry should fail on a 12-node line"
    assert_ledgers_identical(*nets)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_budget_breach_is_identical_including_radio_state(seed):
    """A budget breach raises at the same transmission with the same RNG state.

    Exact-protocol lower-bound tests catch BudgetExceededError and keep using
    the network, so after the breach both the ledger and the lossy radio's
    randomness must be indistinguishable between execution paths.
    """
    from repro.exceptions import BudgetExceededError
    from repro.network.accounting import CommunicationLedger
    from repro.network.topology import line_topology

    nets = [
        SensorNetwork(
            line_topology(10),
            radio=LossyRadio(loss_rate=0.4, seed=seed),
            ledger=CommunicationLedger(per_node_budget_bits=30),
            execution=mode,
        )
        for mode in ("batched", "per-edge")
    ]
    raised = []
    for network in nets:
        try:
            convergecast(
                network,
                local_value=lambda node: 1,
                combine=lambda a, b: a + b,
                size_bits=16,
                protocol="count",
            )
            raised.append(False)
        except BudgetExceededError:
            raised.append(True)
    assert raised[0] == raised[1]
    assert raised[0], "a 16-bit convergecast over a 10-line must breach 30 bits"
    assert_ledgers_identical(*nets)
    assert nets[0].radio._rng.getstate() == nets[1].radio._rng.getstate()


def test_adaptive_size_callable_invoked_identically():
    """Both paths call a stateful size callable once per transmitting node."""
    calls = {"batched": [], "per-edge": []}
    nets = [
        SensorNetwork.from_items(list(range(16)), topology="grid", execution=mode)
        for mode in ("batched", "per-edge")
    ]
    for mode, network in zip(("batched", "per-edge"), nets):
        log = calls[mode]
        convergecast(
            network,
            local_value=lambda node: sum(node.items),
            combine=lambda a, b: a + b,
            size_bits=lambda value: log.append(value) or max(8, value.bit_length()),
            protocol="sum",
        )
    assert calls["batched"] == calls["per-edge"]
    assert len(calls["batched"]) == nets[0].num_nodes - 1  # never for the root
    assert_ledgers_identical(*nets)


def test_single_node_network_is_ledger_identical():
    """Empty sweeps must leave no trace — not zero-bit per-protocol entries."""
    nets = [
        SensorNetwork.from_items([5], topology="line", execution=mode)
        for mode in ("batched", "per-edge")
    ]
    for network in nets:
        broadcast(network, "req", 16, protocol="req")
        total = convergecast(
            network,
            local_value=lambda node: sum(node.items),
            combine=lambda a, b: a + b,
            size_bits=8,
            protocol="sum",
        )
        assert total == 5
    assert nets[0].ledger.snapshot().per_protocol_bits == {}
    assert_ledgers_identical(*nets)


def test_zero_copy_custom_radio_epoch_equivalence():
    """A radio reporting zero delivered copies must not activate the parent."""
    from repro.network.radio import DeliveryOutcome, RadioModel

    class SilentLossRadio(RadioModel):
        """Deterministically charges but drops every third link."""

        def transmit(self, sender, receiver):
            if (sender + receiver) % 3 == 0:
                return DeliveryOutcome(attempts=1, copies_delivered=0)
            return DeliveryOutcome(attempts=1, copies_delivered=1)

    stats = []
    nets = []
    for mode in ("batched", "per-edge"):
        network = SensorNetwork.from_items(
            list(range(12)), topology="line", radio=SilentLossRadio(), execution=mode
        )
        nets.append(network)
        stats.append(
            epoch_convergecast(
                network, {11}, lambda nid, upd: ("d", 8), protocol="epoch"
            )
        )
    assert stats[0] == stats[1]
    assert_ledgers_identical(*nets)


@pytest.mark.parametrize("seed", [0, 1])
def test_deterministic_median_is_ledger_identical(seed):
    """The paper's Fig. 1 protocol — broadcasts and convergecasts interleaved."""
    batched, per_edge = twin_networks("grid", "reliable", seed, num_nodes=25)
    domain = 512
    outcomes = []
    for network in (batched, per_edge):
        outcomes.append(DeterministicMedianProtocol(domain_max=domain).run(network))
    assert outcomes[0].value.median == outcomes[1].value.median
    assert outcomes[0] == outcomes[1]
    assert_ledgers_identical(batched, per_edge)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("radio_name", sorted(RADIOS))
@pytest.mark.parametrize("topology", ["grid", "random_geometric"])
def test_faulted_sweeps_are_ledger_identical(topology, radio_name, seed):
    """Crash storm + rejoin + link storm, then every tree sweep, on both paths.

    The alive-mask, the incremental tree repair and the recovery traversals
    must charge bit-for-bit identically whether the execution core is batched
    or per-edge — including the repair control traffic itself, which goes
    through ``send_batch`` on both.
    """
    from repro.faults import FaultEngine, TreeRepair
    from repro.workloads.faults import crash_storm_script, link_storm_script

    batched, per_edge = twin_networks(topology, radio_name, seed)
    rng = random.Random(seed + 77)
    # One shared dirty set per epoch (drawn once, over ids common to both
    # twins), deliberately including crashed/detached ids: both paths must
    # ignore nodes outside the repaired tree identically.
    dirty_sets = {
        epoch: {
            node_id
            for node_id in batched.node_ids()
            if rng.random() < 0.4 or epoch == 1
        }
        for epoch in (0, 1)
    }
    results = []
    stats = []
    for network in (batched, per_edge):
        script = crash_storm_script(
            network.node_ids(), epoch=0, fraction=0.2, seed=seed, rejoin_epoch=1
        ).merge(
            link_storm_script(
                network.graph, epoch=0, fraction=0.1, seed=seed, restore_epoch=1
            )
        )
        faults = FaultEngine(network, script=script, repair=TreeRepair())
        for epoch in (0, 1):
            faults.step(epoch)
            broadcast(network, "query", 24, protocol="request")
            results.append(
                convergecast(
                    network,
                    local_value=lambda node: sum(node.items),
                    combine=lambda a, b: a + b,
                    size_bits=lambda value: max(8, value.bit_length()),
                    protocol="sum",
                )
            )
            stats.append(
                epoch_convergecast(
                    network,
                    set(dirty_sets[epoch]),
                    lambda nid, upd: None if nid % 7 == 0 else ("s", 8 + nid % 5),
                    protocol="epoch",
                )
            )
    half = len(results) // 2
    assert results[:half] == results[half:]
    assert stats[:half] == stats[half:]
    assert_ledgers_identical(batched, per_edge)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("radio_name", sorted(RADIOS))
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_repair_paths_produce_identical_trees_and_ledgers(topology, radio_name, seed):
    """Randomized fault scripts: the two repair implementations are twins.

    The batched repair rewrites attached-set discovery, adoption-candidate
    enumeration, the rebuild estimate and the tree materialisation, so this
    suite drives both implementations through compound fault scripts (crash
    storm + link storm + churn + recovery) and requires *everything*
    observable to match: full ledger snapshots (per-node bits under lossy
    retries included), the post-repair parent/children/depth maps, and the
    flat-array view the batched traversals consume.
    """
    import random as random_module

    from repro.faults import FaultEngine, TreeRepair
    from repro.workloads.faults import (
        churn_script,
        crash_storm_script,
        link_storm_script,
    )

    rng = random_module.Random(seed * 6151 + 3)
    num_nodes = rng.choice([25, 36, 49, 64])
    items = [rng.randrange(1, 500) for _ in range(num_nodes)]
    networks = []
    reports = []
    for mode in ("batched", "per-edge"):
        network = SensorNetwork.from_items(
            items,
            topology=topology,
            seed=seed,
            radio=RADIOS[radio_name](seed),
            execution=mode,
        )
        script = crash_storm_script(
            network.node_ids(), epoch=0, fraction=0.25, seed=seed, rejoin_epoch=2
        ).merge(
            link_storm_script(
                network.graph, epoch=0, fraction=0.15, seed=seed, restore_epoch=2
            )
        ).merge(
            churn_script(
                network.node_ids(),
                epochs=4,
                churn_rate=0.12,
                start_epoch=1,
                seed=seed,
            )
        )
        faults = FaultEngine(network, script=script, repair=TreeRepair())
        reports.append([faults.step(epoch).repair for epoch in range(5)])
        networks.append(network)

    batched, per_edge = networks
    # Identical repair outcomes, epoch by epoch...
    assert reports[0] == reports[1]
    # ...identical repaired trees in every representation...
    assert batched.tree.parent == per_edge.tree.parent
    assert batched.tree.children == per_edge.tree.children
    assert batched.tree.depth == per_edge.tree.depth
    batched.tree.check_invariants()
    flat_b, flat_p = batched.flat_tree, per_edge.flat_tree
    # Structural arrays are representation-dependent (int64 buffers under
    # numpy); compare the canonical list view plus the id-level link caches.
    assert flat_b.to_lists() == flat_p.to_lists()
    for slot in ("up_links", "down_links"):
        assert getattr(flat_b, slot) == getattr(flat_p, slot), slot
    # ...and bit-for-bit identical ledgers, radio randomness included.
    assert_ledgers_identical(batched, per_edge)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("execution", ["batched", "per-edge"])
def test_fault_storm_stack_stays_consistent_at_scale(execution, seed):
    """A 10k-node storm-under-churn run keeps every invariant on both paths.

    The invariant sweep (``check_invariants`` + graph validation per epoch)
    dominates the runtime — this is the fault-storm stress test the ``slow``
    marker exists for; tier-1 CI runs it on the 3.12 leg only.
    """
    from repro.faults import FaultEngine, TreeRepair
    from repro.workloads.faults import storm_under_churn_script

    network = SensorNetwork.from_items(
        [0] * 10_000, topology="random_geometric", seed=seed, execution=execution
    )
    script = storm_under_churn_script(
        network.node_ids(),
        epochs=8,
        storm_epoch=1,
        storm_fraction=0.15,
        rejoin_epoch=4,
        churn_rate=0.005,
        seed=seed,
    )
    faults = FaultEngine(network, script=script, repair=TreeRepair())
    for epoch in range(8):
        faults.step(epoch)
        network.tree.check_invariants()
        network.tree.validate(
            network.graph, covering=set(network.tree.parent)
        )
    # The flat view the batched sweeps consume matches a from-scratch build.
    from repro.network.flat_tree import FlatTree

    scratch = FlatTree.from_spanning_tree(network.tree)
    flat_lists, scratch_lists = network.flat_tree.to_lists(), scratch.to_lists()
    assert flat_lists["node_ids"] == scratch_lists["node_ids"]
    assert flat_lists["parent"] == scratch_lists["parent"]
    assert flat_lists["child_index"] == scratch_lists["child_index"]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_faulted_streaming_engines_are_ledger_identical(seed):
    """The full resilient stack (faults + repair + recovery) on both paths."""
    from repro.faults import FaultEngine, run_faulty_stream
    from repro.streaming.engine import ContinuousQueryEngine
    from repro.streaming.queries import CountQuery
    from repro.workloads.faults import crash_storm_script
    from repro.workloads.streams import DriftStream

    nets = []
    traces = []
    for mode in ("batched", "per-edge"):
        network = SensorNetwork.from_items(
            [0] * 36,
            topology="grid",
            seed=seed,
            radio=LossyRadio(loss_rate=0.25, seed=seed),
            execution=mode,
        )
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.0)
        engine.register("count", CountQuery())
        script = crash_storm_script(
            network.node_ids(), epoch=1, fraction=0.2, seed=seed, rejoin_epoch=3
        )
        faults = FaultEngine(network, script=script)
        traces.append(
            run_faulty_stream(
                engine,
                DriftStream(36, max_value=512, seed=seed),
                faults,
                epochs=5,
            )
        )
        nets.append(network)
    assert [record.answers for record in traces[0]] == [
        record.answers for record in traces[1]
    ]
    assert [record.total_bits for record in traces[0]] == [
        record.total_bits for record in traces[1]
    ]
    assert_ledgers_identical(*nets)
    assert nets[0].radio._rng.getstate() == nets[1].radio._rng.getstate()


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("radio_name", ["reliable", "lossy"])
def test_multitenant_plan_and_split_identical_across_vectorized(radio_name, seed):
    """The tenancy layer is execution-blind: batched vs vectorized twins.

    For count-valued tenant mixes (all a vectorized network serves) the
    planner's admission decisions, the per-leg ledger keys, the per-tenant
    ledger columns and every tenant's per-epoch answers must be identical
    whether the shared plan runs on the batched reference engine or the
    numpy fused-sweep engine.
    """
    from repro._util.fastpath import HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("vectorized path requires the 'fast' extra (numpy)")

    from repro.streaming.queries import CountQuery, PredicateCountQuery
    from repro.tenancy import MultiTenantEngine
    from repro.workloads.streams import make_stream

    mix = [
        ("acme", "total", CountQuery()),
        ("globex", "fleet", CountQuery()),
        ("initech", "low", PredicateCountQuery(lambda v: v < 200, "below_200")),
        ("acme", "low", PredicateCountQuery(lambda v: v <= 199, "below_200")),
        ("hooli", "high", PredicateCountQuery(lambda v: v >= 200, "at_least_200")),
    ]
    services = []
    networks = []
    for mode in ("batched", "vectorized"):
        network = SensorNetwork.from_items(
            [0] * 36,
            topology="grid",
            seed=seed,
            radio=RADIOS[radio_name](seed),
            execution=mode,
        )
        network.clear_items()
        service = MultiTenantEngine(network, epsilon=0.1)
        decisions = [
            service.register(tenant, name, query) for tenant, name, query in mix
        ]
        stream = make_stream("drift", 36, max_value=400, seed=seed)
        for epoch in range(5):
            updates = stream.initial() if epoch == 0 else stream.step(epoch)
            service.advance_epoch(updates)
            assert service.decomposition_holds()
        services.append((service, decisions))
        networks.append(network)

    (batched, batched_decisions), (vectorized, vectorized_decisions) = services
    assert [(d.status, d.leg, d.signature) for d in batched_decisions] == [
        (d.status, d.leg, d.signature) for d in vectorized_decisions
    ]
    assert batched.answers() == vectorized.answers()
    assert batched.split.columns() == vectorized.split.columns()
    for tenant, name, _query in mix:
        assert batched.split.leg_breakdown(tenant) == vectorized.split.leg_breakdown(
            tenant
        )
    assert batched.plan_bits() == vectorized.plan_bits()
    assert_ledgers_identical(*networks)
