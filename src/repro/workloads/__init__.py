"""Workload (input-data) generators used by the tests, examples and benchmarks."""

from repro.workloads.generators import (
    WORKLOAD_GENERATORS,
    adversarial_near_median_values,
    all_equal_values,
    bimodal_values,
    clustered_values,
    correlated_field_values,
    generate_workload,
    sequential_values,
    uniform_values,
    zipf_values,
)

__all__ = [
    "WORKLOAD_GENERATORS",
    "adversarial_near_median_values",
    "all_equal_values",
    "bimodal_values",
    "clustered_values",
    "correlated_field_values",
    "generate_workload",
    "sequential_values",
    "uniform_values",
    "zipf_values",
]
