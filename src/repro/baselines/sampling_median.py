"""Uniform-sampling median (the Nath et al. synopsis-diffusion approach).

Each node offers its items to a mergeable bottom-k sample; partial samples are
combined up the tree; the root reports the sample median.  With a sample of
``k`` items the rank error is ``O(N / sqrt(k))`` with constant probability,
and the per-node cost is ``Θ(k log N)`` bits — the ``Ω(log N)`` per-node cost
the paper notes when comparing against its polyloglog algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.validation import require_positive
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import MaxProtocol
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.sketches.sampling import MergeableSample


@dataclass(frozen=True)
class SamplingMedianOutcome:
    """Sample median plus the sample size actually collected."""

    median: int
    sample_size: int
    items_observed: int


class SamplingMedianProtocol:
    """Approximate median from a mergeable uniform sample of size ``sample_size``."""

    def __init__(
        self,
        sample_size: int = 32,
        domain_max: int | None = None,
        view: ItemView = raw_items,
        salt: int = 0,
    ) -> None:
        require_positive(sample_size, "sample_size")
        self.sample_size = sample_size
        self._domain_max = domain_max
        self._view = view
        self._salt = salt

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; ``value`` is a :class:`SamplingMedianOutcome`."""
        with MeteredRun(network) as metered:
            domain_max = self._domain_max
            if domain_max is None:
                domain_max = MaxProtocol(view=self._view).run(network).value
            broadcast(
                network,
                {"query": "SAMPLING_MEDIAN", "k": self.sample_size, "salt": self._salt},
                16,
                protocol="SAMPLING_MEDIAN",
            )

            def local(node: SensorNode) -> MergeableSample:
                sample = MergeableSample(capacity=self.sample_size, salt=self._salt)
                for value in self._view(node):
                    sample.add(value, origin=node.node_id)
                return sample

            merged = convergecast(
                network,
                local,
                lambda a, b: a.merge(b),
                lambda sample: sample.serialized_bits(
                    max_value=max(1, domain_max), max_nodes=network.num_nodes
                ),
                protocol="SAMPLING_MEDIAN",
            )
            outcome = SamplingMedianOutcome(
                median=merged.sample_median(),
                sample_size=merged.size,
                items_observed=merged.observed,
            )
        return metered.result(outcome)
