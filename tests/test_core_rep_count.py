"""Tests for REP_COUNTP and the repetition policy (Fig. 2's subroutine)."""

import pytest

from repro.core.rep_count import RepeatedApproxCount, RepetitionPolicy
from repro.exceptions import ConfigurationError
from repro.network.simulator import SensorNetwork
from repro.network.topology import grid_topology
from repro.protocols.apx_count import ApproxCountProtocol
from repro.protocols.predicates import LessThanPredicate
from repro.workloads.generators import uniform_values


class TestRepetitionPolicy:
    def test_paper_constants(self):
        policy = RepetitionPolicy.paper()
        assert policy.count_repetitions(10.0) == 20
        assert policy.probe_repetitions(10.0) == 320
        assert policy.cap is None

    def test_practical_cap(self):
        policy = RepetitionPolicy.practical(cap=8)
        assert policy.count_repetitions(10.0) == 8
        assert policy.probe_repetitions(100.0) == 8

    def test_floor_applies_for_tiny_q(self):
        policy = RepetitionPolicy(count_multiplier=0.01, probe_multiplier=0.01)
        assert policy.count_repetitions(0.1) >= 1
        assert policy.probe_repetitions(0.1) >= 1

    def test_ceiling_of_fractional_repetitions(self):
        policy = RepetitionPolicy.paper()
        assert policy.count_repetitions(1.3) == 3  # ceil(2 * 1.3)

    def test_invalid_multipliers_rejected(self):
        with pytest.raises(ConfigurationError):
            RepetitionPolicy(count_multiplier=0)

    def test_cap_below_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            RepetitionPolicy(cap=1, floor=2)


class TestRepeatedApproxCount:
    @pytest.fixture
    def network_and_items(self):
        items = uniform_values(144, max_value=20_000, seed=1)
        return SensorNetwork.from_items(items, topology=grid_topology(12)), items

    def test_average_tracks_truth(self, network_and_items):
        network, items = network_and_items
        counter = ApproxCountProtocol(num_registers=64, seed=2)
        rep = RepeatedApproxCount(counter)
        estimate = rep.run(network, repetitions=6).value
        assert abs(estimate - len(items)) / len(items) < 3 * counter.relative_sigma

    def test_more_repetitions_reduce_spread(self, network_and_items):
        network, items = network_and_items
        counter = ApproxCountProtocol(num_registers=16, seed=3)
        singles = [
            RepeatedApproxCount(counter).run(network, repetitions=1).value
            for _ in range(8)
        ]
        averaged = [
            RepeatedApproxCount(counter).run(network, repetitions=8).value
            for _ in range(8)
        ]

        def spread(values):
            mean = sum(values) / len(values)
            return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5

        assert spread(averaged) < spread(singles) + 1e-9

    def test_predicate_restriction(self, network_and_items):
        network, items = network_and_items
        threshold = sorted(items)[len(items) // 2]
        counter = ApproxCountProtocol(num_registers=128, seed=4)
        rep = RepeatedApproxCount(counter)
        estimate = rep.run(
            network, repetitions=4, predicate=LessThanPredicate(threshold=threshold)
        ).value
        true_count = sum(1 for item in items if item < threshold)
        assert abs(estimate - true_count) / true_count < 0.5

    def test_cost_scales_linearly_with_repetitions(self, network_and_items):
        network, _ = network_and_items
        counter = ApproxCountProtocol(num_registers=32, seed=5)
        one = RepeatedApproxCount(counter).run(network, repetitions=1)
        four = RepeatedApproxCount(counter).run(network, repetitions=4)
        assert 3.5 <= four.total_bits / one.total_bits <= 4.5

    def test_zero_repetitions_rejected(self, network_and_items):
        network, _ = network_and_items
        counter = ApproxCountProtocol(num_registers=16, seed=6)
        with pytest.raises(Exception):
            RepeatedApproxCount(counter).run(network, repetitions=0)

    def test_relative_sigma_passthrough(self):
        counter = ApproxCountProtocol(num_registers=64)
        assert RepeatedApproxCount(counter).relative_sigma == counter.relative_sigma
