"""Experiment harness, metrics and theoretical envelopes.

* :mod:`repro.analysis.metrics` — per-run records, rank/value error of median
  estimates, and growth-rate fitting (does the measured per-node cost grow
  like ``(log N)^2``, ``(log log N)^3``, or ``N``?).
* :mod:`repro.analysis.theory` — the paper's asymptotic cost formulas as
  concrete envelope functions, used to overlay predictions on measurements
  and to extrapolate the exact-vs-approximate crossover beyond what a pure
  Python simulation can execute.
* :mod:`repro.analysis.experiments` — the sweep runners behind the
  ``benchmarks/`` targets and EXPERIMENTS.md (one function per experiment id
  in DESIGN.md).
* :mod:`repro.analysis.report` — plain-text table formatting for the
  benchmark harness output.
"""

from repro.analysis.metrics import (
    MedianAccuracy,
    RunRecord,
    fit_growth_exponent,
    fit_against_model,
    median_accuracy,
)
from repro.analysis.report import format_table
from repro.analysis.theory import (
    apx_median_bits_envelope,
    exact_median_bits_envelope,
    naive_median_bits_envelope,
    polyloglog_median_bits_envelope,
    predicted_crossover,
)

__all__ = [
    "MedianAccuracy",
    "RunRecord",
    "fit_growth_exponent",
    "fit_against_model",
    "median_accuracy",
    "format_table",
    "apx_median_bits_envelope",
    "exact_median_bits_envelope",
    "naive_median_bits_envelope",
    "polyloglog_median_bits_envelope",
    "predicted_crossover",
]
