"""The sweep harness: expansion, caching, parallel equality, diff gating.

Covers the contracts ``docs/SWEEPS.md`` documents:

* spec expansion — axis products, constraint filters, seed fanout,
  deterministic ordering, schema validation;
* content-addressed caching — a re-run of an unchanged spec executes zero
  cells, an axis edit executes only the new cells;
* parallel-vs-serial result equality through the fork pool;
* the normalizer + diff — an injected regression is detected, added
  coverage is not a failure;
* the builtin E10/E12 specs reproduce the hand-written study runners'
  headline numbers cell for cell.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import (
    run_fault_tolerance_study,
    run_multitenant_study,
    run_streaming_comparison,
)
from repro.exceptions import ConfigurationError, DuplicateAxisValueError
from repro.sweeps import (
    Constraint,
    SweepRunner,
    SweepSpec,
    cell_key,
    diff_payloads,
    get_sweep,
    load_spec,
    render_markdown,
    runner_for,
    spec_from_dict,
    write_sweep_json,
)

#: Small enough for the tier-1 suite, large enough that savings > 1.
TINY_STREAM = {"n": 25, "epochs": 4, "epsilon": 0.1, "topology": "grid"}


def tiny_streaming_spec(seeds=(0,), workloads=("drift",), name="tiny"):
    return SweepSpec(
        name=name,
        experiment="streaming",
        axes={"workload": tuple(workloads), "seed": tuple(seeds)},
        base=dict(TINY_STREAM),
    )


# --------------------------------------------------------------------- #
# Expansion
# --------------------------------------------------------------------- #
class TestExpansion:
    def test_axis_product_and_order(self):
        spec = SweepSpec(
            name="grid",
            experiment="streaming",
            axes={"workload": ("drift", "burst"), "seed": (0, 1, 2)},
        )
        cells = spec.expand()
        assert len(cells) == spec.matrix_size == 6
        assert [cell.index for cell in cells] == list(range(6))
        # Axes iterate in sorted-name order: seed is the outer loop.
        assert cells[0].cell_id == "seed=0,workload=drift"
        assert cells[1].cell_id == "seed=0,workload=burst"
        assert len({cell.cell_id for cell in cells}) == 6
        assert len({cell.key for cell in cells}) == 6

    def test_seed_fanout_changes_keys_only_by_seed(self):
        spec = tiny_streaming_spec(seeds=(0, 1))
        cells = spec.expand()
        params = [dict(cell.params) for cell in cells]
        for entry in params:
            entry.pop("seed")
        assert params[0] == params[1]
        assert cells[0].key != cells[1].key

    def test_require_constraint_prunes_matching_cells(self):
        spec = SweepSpec(
            name="constrained",
            experiment="streaming",
            axes={
                "execution": ("batched", "sharded"),
                "radio": ("reliable", "lossy"),
            },
            constraints=(
                Constraint(
                    when={"execution": ("sharded",)},
                    require={"radio": ("reliable",)},
                ),
            ),
        )
        cells = spec.expand()
        assert len(cells) == 3
        assert all(
            cell.params["radio"] == "reliable"
            for cell in cells
            if cell.params["execution"] == "sharded"
        )

    def test_drop_constraint(self):
        spec = SweepSpec(
            name="dropped",
            experiment="streaming",
            axes={"workload": ("drift", "burst")},
            constraints=(
                Constraint(when={"workload": ("burst",)}, drop=True),
            ),
        )
        assert [cell.params["workload"] for cell in spec.expand()] == ["drift"]

    def test_base_and_axes_must_not_overlap(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(
                name="clash",
                experiment="streaming",
                axes={"seed": (0,)},
                base={"seed": 1},
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(name="empty", experiment="streaming", axes={"seed": ()})

    def test_unknown_experiment_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            runner_for("no_such_study")

    def test_no_axes_yields_single_default_cell(self):
        spec = SweepSpec(name="point", experiment="streaming", base=dict(TINY_STREAM))
        cells = spec.expand()
        assert len(cells) == 1
        assert cells[0].cell_id == "default"

    def test_cell_key_ignores_dict_ordering(self):
        assert cell_key("streaming", {"a": 1, "b": 2}) == cell_key(
            "streaming", {"b": 2, "a": 1}
        )
        assert cell_key("streaming", {"a": 1}) != cell_key("scaling", {"a": 1})

    def test_spec_roundtrip_through_dict(self):
        spec = get_sweep("e12_fault_tolerance", num_nodes=32)
        rebuilt = spec_from_dict(spec.to_dict())
        assert rebuilt == spec
        assert load_spec(spec.to_dict()) == spec

    def test_builtin_specs_smoke_expand(self):
        for name in ("e10_streaming", "e12_fault_tolerance"):
            assert len(get_sweep(name).expand()) > 0


# --------------------------------------------------------------------- #
# Caching
# --------------------------------------------------------------------- #
class TestCaching:
    def test_second_run_executes_zero_cells(self, tmp_path):
        spec = tiny_streaming_spec()
        runner = SweepRunner(spec, cache_dir=tmp_path, processes=0)
        first = runner.run()
        assert (first.executed, first.cached) == (1, 0)
        second = runner.run()
        assert (second.executed, second.cached) == (0, 1)
        assert [o.result["measures"] for o in second.outcomes] == [
            o.result["measures"] for o in first.outcomes
        ]

    def test_axis_edit_executes_only_new_cells(self, tmp_path):
        runner = SweepRunner(
            tiny_streaming_spec(seeds=(0,)), cache_dir=tmp_path, processes=0
        )
        runner.run()
        grown = SweepRunner(
            tiny_streaming_spec(seeds=(0, 1)), cache_dir=tmp_path, processes=0
        )
        result = grown.run()
        assert (result.executed, result.cached) == (1, 1)
        fresh = [o for o in result.outcomes if not o.cached]
        assert [o.cell.params["seed"] for o in fresh] == [1]

    def test_base_edit_misses_every_cell(self, tmp_path):
        runner = SweepRunner(tiny_streaming_spec(), cache_dir=tmp_path, processes=0)
        runner.run()
        edited = tiny_streaming_spec()
        edited = SweepSpec(
            name=edited.name,
            experiment=edited.experiment,
            axes=edited.axes,
            base={**edited.base, "epochs": edited.base["epochs"] + 1},
        )
        result = SweepRunner(edited, cache_dir=tmp_path, processes=0).run()
        assert result.cached == 0

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = tiny_streaming_spec()
        runner = SweepRunner(spec, cache_dir=tmp_path, processes=0)
        runner.run()
        (cell,) = spec.expand()
        (tmp_path / f"{cell.key}.json").write_text("{not json", encoding="utf-8")
        result = runner.run()
        assert result.executed == 1

    def test_force_reexecutes(self, tmp_path):
        runner = SweepRunner(tiny_streaming_spec(), cache_dir=tmp_path, processes=0)
        runner.run()
        assert runner.run(force=True).executed == 1


# --------------------------------------------------------------------- #
# Parallel execution
# --------------------------------------------------------------------- #
class TestParallel:
    def test_parallel_and_serial_results_identical(self, tmp_path):
        spec = tiny_streaming_spec(seeds=(0, 1), workloads=("drift", "burst"))
        serial = SweepRunner(spec, cache_dir=tmp_path / "serial", processes=0).run()
        parallel = SweepRunner(
            spec, cache_dir=tmp_path / "parallel", processes=2
        ).run()
        assert parallel.executed == serial.executed == 4
        serial_cells = serial.payload()["cells"]
        parallel_cells = parallel.payload()["cells"]
        assert [c["measures"] for c in parallel_cells] == [
            c["measures"] for c in serial_cells
        ]
        assert [c["key"] for c in parallel_cells] == [
            c["key"] for c in serial_cells
        ]


# --------------------------------------------------------------------- #
# Normalizer + diff
# --------------------------------------------------------------------- #
class TestReportAndDiff:
    def payload(self, tmp_path, **kwargs):
        spec = tiny_streaming_spec(**kwargs)
        return SweepRunner(spec, cache_dir=tmp_path, processes=0).run().payload()

    def test_payload_shape_and_json_roundtrip(self, tmp_path):
        payload = self.payload(tmp_path)
        assert payload["sweep"] == "tiny"
        assert payload["cell_count"] == 1
        (cell,) = payload["cells"]
        assert cell["measures"]["savings_factor"] > 1.0
        assert "convergecast" in cell["phases"]
        path = write_sweep_json(payload, tmp_path)
        assert json.loads(path.read_text(encoding="utf-8")) == payload

    def test_markdown_lists_every_cell(self, tmp_path):
        payload = self.payload(tmp_path, seeds=(0, 1))
        rendered = render_markdown(payload)
        assert "seed=0,workload=drift" in rendered
        assert "seed=1,workload=drift" in rendered
        assert "savings_factor" in rendered

    def test_diff_detects_injected_regression(self, tmp_path):
        payload = self.payload(tmp_path)
        regressed = json.loads(json.dumps(payload))
        regressed["cells"][0]["measures"]["savings_factor"] = 1.0
        diff = diff_payloads(payload, regressed)
        assert not diff.ok
        assert [(row[0], row[1]) for row in diff.changed] == [
            ("seed=0,workload=drift", "savings_factor")
        ]
        assert "CHANGED" in diff.describe()

    def test_diff_detects_missing_cell(self, tmp_path):
        payload = self.payload(tmp_path, seeds=(0, 1))
        shrunk = json.loads(json.dumps(payload))
        shrunk["cells"] = shrunk["cells"][:1]
        diff = diff_payloads(payload, shrunk)
        assert not diff.ok
        assert diff.missing_cells == ("seed=1,workload=drift",)

    def test_diff_tolerates_new_cells_and_timing_noise(self, tmp_path):
        payload = self.payload(tmp_path, seeds=(0,))
        grown = self.payload(tmp_path, seeds=(0, 1))
        grown = json.loads(json.dumps(grown))
        for cell in grown["cells"]:
            cell["timing"] = {"cell_seconds": 999.0}
        diff = diff_payloads(payload, grown)
        assert diff.ok
        assert diff.new_cells == ("seed=1,workload=drift",)

    def test_diff_tolerance_admits_bounded_drift(self, tmp_path):
        payload = self.payload(tmp_path)
        drifted = json.loads(json.dumps(payload))
        drifted["cells"][0]["measures"]["savings_factor"] *= 1.005
        assert not diff_payloads(payload, drifted).ok
        assert diff_payloads(payload, drifted, rel_tolerance=0.01).ok


# --------------------------------------------------------------------- #
# Builtin specs reproduce the hand-written runners
# --------------------------------------------------------------------- #
class TestBuiltinEquivalence:
    def test_e10_cell_matches_hand_written_runner(self, tmp_path):
        spec = get_sweep(
            "e10_streaming", num_nodes=25, epochs=4, workloads=("drift",), seeds=(0,)
        )
        result = SweepRunner(spec, cache_dir=tmp_path, processes=0).run()
        (outcome,) = result.outcomes
        direct = run_streaming_comparison(
            num_nodes=25, epochs=4, workload="drift", epsilon=0.1,
            topology="grid", seed=0,
        )
        measures = outcome.result["measures"]
        assert measures["incremental_bits"] == direct.incremental_bits
        assert measures["recompute_bits"] == direct.recompute_bits
        assert measures["savings_factor"] == round(direct.savings_factor, 4)
        assert measures["max_count_error"] == direct.max_count_error

    def test_e12_cell_matches_hand_written_runner(self, tmp_path):
        spec = get_sweep(
            "e12_fault_tolerance",
            num_nodes=48,
            epochs=6,
            scenarios=("crash_storm",),
            detector_periods=(4,),
        )
        result = SweepRunner(spec, cache_dir=tmp_path, processes=0).run()
        (outcome,) = result.outcomes
        direct = run_fault_tolerance_study(
            num_nodes=48, epochs=6, scenario="crash_storm", crash_fraction=0.1,
            epsilon=0.1, topology="random_geometric", seed=0, detector_period=4,
        )
        measures = outcome.result["measures"]
        assert measures["incremental_fault_bits"] == direct.incremental_fault_bits
        assert measures["rebuild_fault_bits"] == direct.rebuild_fault_bits
        assert measures["savings_factor"] == round(direct.savings_factor, 4)
        assert measures["detection_bits"] == direct.incremental_detection_bits

    def test_e12_constraint_prunes_link_storm_heartbeat_arm(self):
        cells = get_sweep("e12_fault_tolerance", num_nodes=32).expand()
        combos = {
            (cell.params["scenario"], cell.params["detector_period"])
            for cell in cells
        }
        assert ("link_storm", None) in combos
        assert ("link_storm", 4) not in combos


# --------------------------------------------------------------------- #
# Duplicate axis values: the seed-reuse footgun
# --------------------------------------------------------------------- #
class TestDuplicateAxisValues:
    def test_repeated_seed_raises_a_value_error(self):
        """seeds=(0, 1, 1) must fail loudly, not quietly run two cells.

        The error is a ValueError (generic argument-validation callers)
        *and* a ConfigurationError (the library's own hierarchy), and the
        message explains the footgun instead of just naming the axis.
        """
        with pytest.raises(ValueError, match="duplicate"):
            tiny_streaming_spec(seeds=(0, 1, 1))
        with pytest.raises(DuplicateAxisValueError) as excinfo:
            tiny_streaming_spec(seeds=(0, 1, 1))
        assert isinstance(excinfo.value, ConfigurationError)
        assert "seed" in str(excinfo.value)
        assert "cache key" in str(excinfo.value)

    def test_repeated_non_seed_axis_also_raises(self):
        with pytest.raises(DuplicateAxisValueError, match="workload"):
            tiny_streaming_spec(workloads=("drift", "burst", "drift"))

    def test_spec_from_dict_rejects_duplicates_too(self):
        payload = {
            "name": "dup",
            "experiment": "streaming",
            "axes": {"seed": [3, 3]},
            "base": dict(TINY_STREAM),
        }
        with pytest.raises(DuplicateAxisValueError):
            spec_from_dict(payload)

    def test_distinct_values_of_equal_repr_across_types_still_pass(self):
        # 1 and 1.0 repr differently; True vs 1 repr differently too — the
        # guard must compare by repr, not by hash-equality, so an int/float
        # axis mixing equal-valued distinct literals stays expressible.
        spec = tiny_streaming_spec(seeds=(1, 1.0))
        assert spec.axes["seed"] == (1, 1.0)


class TestE14Builtin:
    def test_e14_cell_matches_hand_written_runner(self, tmp_path):
        spec = get_sweep(
            "e14_multitenant", num_nodes=36, epochs=4, tenants=(6,), seeds=(0,)
        )
        result = SweepRunner(spec, cache_dir=tmp_path, processes=0).run()
        (outcome,) = result.outcomes
        direct = run_multitenant_study(
            num_nodes=36, epochs=4, tenants=6, workload="drift", epsilon=0.1,
            topology="grid", seed=0,
        )
        measures = outcome.result["measures"]
        assert measures["legs"] == direct.legs
        assert measures["shared_bits"] == direct.shared_bits
        assert measures["independent_bits"] == direct.independent_bits
        assert measures["savings_factor"] == round(direct.savings_factor, 4)
        assert measures["answers_match"] and direct.answers_match
        assert measures["decomposition_holds"] and direct.decomposition_holds
