"""The fault-injection engine.

:class:`FaultEngine` owns everything that can go wrong with a running
:class:`~repro.network.SensorNetwork`: it applies scripted events from a
:class:`~repro.faults.events.FaultScript`, draws stochastic crash / rejoin /
link-failure events from per-epoch rates, mutates the network (alive-mask,
item loss, graph edges) accordingly, and drives the configured
:class:`~repro.faults.repair.TreeRepair` so the spanning tree keeps spanning
the alive, root-connected population.  One :meth:`step` per epoch returns a
:class:`FaultReport` describing both the injected events and the repair's
outcome, which the stream runner feeds to the continuous-query engine's
recovery protocol.

Failure *knowledge* is modelled explicitly: with a
:class:`~repro.faults.HeartbeatDetector` configured, a crash is applied in
two stages — the node dies (readings destroyed, transmissions cease) the
epoch the event fires, but the alive-mask flips and the repair runs only
when a heartbeat sweep notices the silence, and every sweep's bits are
charged through the radio models.  Without a detector the engine keeps the
oracle model: detection is instant and free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro._util.randomness import make_rng
from repro._util.validation import require_non_negative, require_probability
from repro.exceptions import ConfigurationError
from repro.faults.detection import HeartbeatDetector
from repro.faults.election import ElectionResult, RootElection
from repro.faults.events import (
    FaultEvent,
    FaultScript,
    LinkDrop,
    LinkRestore,
    NodeCrash,
    NodeRejoin,
    RegionalOutage,
    RootCrash,
    expand_regional_outage,
)
from repro.faults.repair import RepairResult, TreeRepair
from repro.network.simulator import SensorNetwork


@dataclass(frozen=True)
class FaultReport:
    """What one epoch of fault injection did to the network.

    With a :class:`~repro.faults.HeartbeatDetector` configured, ``crashed``
    lists the *physical* crashes of the epoch (readings destroyed, node
    silent) while ``detected`` lists the crashes whose heartbeat silence was
    noticed this epoch — the only ones the repair pass acts on.
    ``detection_latencies`` aligns with ``detected`` (epochs from crash to
    detection) and ``detection_bits`` is the heartbeat traffic charged,
    separate from the repair's control bits.  Without a detector (the
    oracle model) every crash is detected instantly and these fields stay
    empty.
    """

    epoch: int
    crashed: tuple[int, ...]
    rejoined: tuple[int, ...]
    dropped_links: tuple[tuple[int, int], ...]
    restored_links: tuple[tuple[int, int], ...]
    repair: RepairResult
    applied_events: int = 0
    detection_bits: int = 0
    detection_messages: int = 0
    detected: tuple[int, ...] = ()
    detection_latencies: tuple[int, ...] = ()
    #: Nodes that crashed *and* rejoined inside one detection window: the
    #: tree never noticed, but their readings were replaced wholesale, so
    #: stream drivers must treat them as updated this epoch.
    flapped: tuple[int, ...] = ()

    @property
    def election(self) -> ElectionResult | None:
        """The root fail-over this epoch performed, if any.

        Rides on the repair result (the election runs as the first step of
        the repair pass that follows a :class:`~repro.faults.RootCrash`);
        ``None`` on epochs whose root survived.
        """
        return getattr(self.repair, "election", None)

    @property
    def had_faults(self) -> bool:
        return bool(
            self.crashed
            or self.rejoined
            or self.dropped_links
            or self.restored_links
            or self.detected
        )


class FaultEngine:
    """Inject scripted and stochastic faults and keep the tree repaired."""

    def __init__(
        self,
        network: SensorNetwork,
        script: FaultScript | None = None,
        repair: TreeRepair | None = None,
        seed: int | None = 0,
        crash_rate: float = 0.0,
        rejoin_rate: float = 0.0,
        link_drop_rate: float = 0.0,
        rejoin_value_max: int = 1 << 16,
        detector: HeartbeatDetector | None = None,
        election: RootElection | None = None,
    ) -> None:
        self.network = network
        self.script = script if script is not None else FaultScript()
        self.repair = repair if repair is not None else TreeRepair()
        #: How a dead root is replaced: by default a charged
        #: :class:`~repro.faults.RootElection`, handed to the repair pass
        #: per call so a scripted :class:`~repro.faults.RootCrash` fails
        #: over out of the box.  A :class:`TreeRepair` constructed with its
        #: own ``election`` keeps it (the engine never mutates the policy
        #: object, which may be shared); a repair *wrapper* without
        #: election support keeps its own dead-root behaviour.
        self.election = election if election is not None else RootElection()
        self.crash_rate = require_probability(crash_rate, "crash_rate")
        self.rejoin_rate = require_probability(rejoin_rate, "rejoin_rate")
        self.link_drop_rate = require_probability(link_drop_rate, "link_drop_rate")
        self.rejoin_value_max = require_non_negative(
            rejoin_value_max, "rejoin_value_max"
        )
        #: ``None`` keeps the oracle model of PR 3: crashes are known — for
        #: free — the epoch they happen.  A :class:`HeartbeatDetector`
        #: charges the knowledge instead: crashes stay *undetected* (the
        #: node a silent zombie whose readings are already gone) until the
        #: next heartbeat sweep notices the missing liveness bit.
        self.detector = detector
        self._undetected: dict[int, int] = {}
        #: Flight-event id of each pending crash's injection, so the
        #: eventual ``detect.miss`` can chain to it explicitly.
        self._crash_events: dict[int, int] = {}
        #: Explicit cause for injections applied *on behalf of* another
        #: event (a regional outage's expanded crashes chain to the outage).
        self._injection_cause: int | None = None
        self._epoch = 0
        self._rng = make_rng(seed)
        self.dropped_edges: set[tuple[int, int]] = set()

    @property
    def undetected_dead(self) -> frozenset[int]:
        """Nodes that crashed but whose failure has not been detected yet.

        They still sit in the spanning tree (silent, with destroyed
        readings); :func:`~repro.faults.run_faulty_stream` drops their
        sensor updates, since a dead sensor reads nothing.
        """
        return frozenset(self._undetected)

    # ------------------------------------------------------------------ #
    # Epoch driver
    # ------------------------------------------------------------------ #
    def step(
        self, epoch: int, extra_events: Sequence[FaultEvent] = ()
    ) -> FaultReport:
        """Apply epoch ``epoch``'s events (scripted, extra, then stochastic),
        repair the tree, and report what happened.

        ``extra_events`` lets callers feed in events produced elsewhere —
        e.g. a :class:`~repro.workloads.ChurnStream` running in explicit
        event mode.  A quiet epoch skips the repair pass entirely: a static
        field cannot heal or break on its own, and detached survivors are
        reconsidered by the full repair the next event triggers.
        """
        telemetry = self.network.telemetry
        if telemetry.enabled and telemetry.flight is not None:
            # Each epoch's causal chains start fresh; only explicit links
            # (pending-crash ids) cross the boundary.
            telemetry.flight.new_epoch()
        events = list(self.script.events_at(epoch))
        events.extend(extra_events)
        events.extend(self._stochastic_events())
        crashed: list[int] = []
        rejoined: list[int] = []
        dropped: list[tuple[int, int]] = []
        restored: list[tuple[int, int]] = []
        flaps: list[int] = []
        self._epoch = epoch
        for event in events:
            self._apply(event, crashed, rejoined, dropped, restored, flaps)

        detection_bits = 0
        detection_messages = 0
        detected: tuple[int, ...] = ()
        latencies: tuple[int, ...] = ()
        detector = self.detector
        if detector is not None and detector.sweep_due(epoch):
            # The sweep is a standing cost: it is charged whether or not
            # anything is wrong — that is the price of knowing.
            detection_bits, detection_messages = detector.charge_sweep(
                self.network, set(self._undetected)
            )
            detected, latencies = self._detect_pending(epoch)

        # A flap (crash and rejoin both inside one detection window) never
        # touches the tree, so it does not force a repair pass on its own.
        revivals = len(rejoined) - len(flaps)
        # A dead root always forces the repair pass: the election + seeded
        # re-attachment it triggers is the fail-over (the root's silence is
        # self-announcing — its children expect the epoch tick from it — so
        # even a charged detector learns of it immediately and for free;
        # what is charged is the election response itself).
        root_dead = not self.network.is_alive(self.network.root_id)
        if detector is None:
            needs_repair = bool(crashed or rejoined or dropped or restored)
        else:
            needs_repair = bool(
                detected or revivals or dropped or restored or root_dead
            )
        if detector is not None and needs_repair and self._undetected:
            # A repair pass doubles as a liveness probe: its adoption
            # handshakes and pointer flips cannot complete against dead
            # nodes, so running one reveals every pending crash — at the
            # repair's already-charged cost, not the heartbeat's.  Without
            # this, a zombie would take part in the repair as a live
            # transmitter, quietly ending its detection window for free.
            probed, probe_latencies = self._detect_pending(epoch)
            detected = detected + probed
            latencies = latencies + probe_latencies
        if needs_repair:
            if (
                isinstance(self.repair, TreeRepair)
                and self.repair.election is None
            ):
                repair = self.repair.repair(self.network, election=self.election)
            else:
                repair = self.repair.repair(self.network)
        else:
            repair = _noop_repair()
        return FaultReport(
            epoch=epoch,
            crashed=tuple(crashed),
            rejoined=tuple(rejoined),
            dropped_links=tuple(dropped),
            restored_links=tuple(restored),
            repair=repair,
            applied_events=len(events),
            detection_bits=detection_bits,
            detection_messages=detection_messages,
            detected=detected,
            detection_latencies=latencies,
            flapped=tuple(flaps),
        )

    def _detect_pending(self, epoch: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Reveal every pending crash: kill, clear, report with latencies."""
        if not self._undetected:
            return (), ()
        victims = sorted(self._undetected)
        latencies = tuple(epoch - self._undetected[node] for node in victims)
        telemetry = self.network.telemetry
        for node, latency in zip(victims, latencies):
            self.network.kill_node(node)
            if telemetry.enabled:
                telemetry.event(
                    "detect.miss",
                    node=node,
                    cause=self._crash_events.pop(node, None),
                    epoch=epoch,
                    latency=latency,
                )
        self._undetected.clear()
        return tuple(victims), latencies

    def _emit_injection(self, fault: str, node: int | None, **attributes) -> int | None:
        """Record a ``fault.injected`` flight event (``None`` when disabled)."""
        telemetry = self.network.telemetry
        if not telemetry.enabled:
            return None
        return telemetry.event(
            "fault.injected",
            node=node,
            cause=self._injection_cause,
            epoch=self._epoch,
            fault=fault,
            **attributes,
        )

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def _apply(
        self,
        event: FaultEvent,
        crashed: list[int],
        rejoined: list[int],
        dropped: list[tuple[int, int]],
        restored: list[tuple[int, int]],
        flaps: list[int],
    ) -> None:
        network = self.network
        if isinstance(event, RootCrash):
            # The current root dies, whoever that is.  No detection window:
            # the root's silence at the epoch tick is observed by its own
            # children for free (like link failures), and the charged
            # response — election, re-rooting, re-attachment — runs in this
            # epoch's repair pass.
            node_id = network.root_id
            if not network.is_alive(node_id):
                return  # a double blow in one epoch changes nothing
            network.kill_node(node_id, allow_root=True)
            crashed.append(node_id)
            self._emit_injection("RootCrash", node_id)
        elif isinstance(event, NodeCrash):
            node_id = event.node_id
            if not network.is_alive(node_id) or node_id in self._undetected:
                return
            if node_id == network.root_id:
                # A crash is a crash: a script written before a fail-over
                # (or background churn) may hit the node that meanwhile won
                # an election.  Whoever is root dies root-style — applied
                # immediately, detection-free, election to follow.
                network.kill_node(node_id, allow_root=True)
            elif self.detector is None:
                network.kill_node(node_id)
            else:
                # The node dies *now* — readings and scratch state are gone
                # — but nobody knows until a heartbeat sweep misses it, so
                # the alive-mask (and the repair) waits for detection.
                node = network.node(node_id)
                node.clear_items()
                node.reset_scratch()
                self._undetected[node_id] = self._epoch
                event_id = self._emit_injection(
                    "NodeCrash", node_id, detected=False
                )
                if event_id is not None:
                    self._crash_events[node_id] = event_id
                crashed.append(node_id)
                return
            crashed.append(node_id)
            self._emit_injection("NodeCrash", node_id, detected=True)
        elif isinstance(event, NodeRejoin):
            node_id = event.node_id
            if node_id in self._undetected:
                # A flap: the node rebooted inside the detection window.
                # Its parent never missed a heartbeat, the tree is intact —
                # only the readings changed.
                del self._undetected[node_id]
                self._crash_events.pop(node_id, None)
                node = network.node(node_id)
                node.clear_items()
                node.add_items(event.items)
                rejoined.append(node_id)
                flaps.append(node_id)
                self._emit_injection("NodeRejoin", node_id, flap=True)
            elif not network.is_alive(node_id):
                network.revive_node(node_id)
                node = network.node(node_id)
                node.clear_items()
                node.add_items(event.items)
                rejoined.append(node_id)
                self._emit_injection("NodeRejoin", node_id, flap=False)
        elif isinstance(event, RegionalOutage):
            outage_id = self._emit_injection(
                "RegionalOutage", event.center, radius=event.radius
            )
            previous_cause = self._injection_cause
            if outage_id is not None:
                self._injection_cause = outage_id
            try:
                for crash in expand_regional_outage(
                    network.graph, event, protect=(network.root_id,)
                ):
                    self._apply(crash, crashed, rejoined, dropped, restored, flaps)
            finally:
                self._injection_cause = previous_cause
        elif isinstance(event, LinkDrop):
            edge = event.edge
            if network.graph.has_edge(*edge):
                network.graph.remove_edge(*edge)
                self.dropped_edges.add(edge)
                dropped.append(edge)
                self._emit_injection("LinkDrop", None, u=edge[0], v=edge[1])
        elif isinstance(event, LinkRestore):
            edge = event.edge
            if edge in self.dropped_edges:
                network.graph.add_edge(*edge)
                self.dropped_edges.discard(edge)
                restored.append(edge)
                self._emit_injection("LinkRestore", None, u=edge[0], v=edge[1])
        else:
            raise ConfigurationError(f"unknown fault event {event!r}")

    def _stochastic_events(self) -> list[FaultEvent]:
        """Draw this epoch's random events (deterministic in the seed).

        Nodes are visited in ascending id order so twin engines with equal
        seeds inject identical faults regardless of execution mode.
        """
        events: list[FaultEvent] = []
        network = self.network
        rng = self._rng
        if self.crash_rate > 0.0:
            undetected = self._undetected
            for node_id in network.alive_node_ids():
                if node_id == network.root_id or node_id in undetected:
                    continue
                if rng.random() < self.crash_rate:
                    events.append(NodeCrash(node_id))
        if self.rejoin_rate > 0.0:
            for node_id in network.dead_node_ids():
                if rng.random() < self.rejoin_rate:
                    events.append(
                        NodeRejoin(
                            node_id,
                            items=(rng.randint(0, self.rejoin_value_max),),
                        )
                    )
        if self.link_drop_rate > 0.0:
            for u, v in sorted(
                tuple(sorted(edge)) for edge in network.graph.edges()
            ):
                if rng.random() < self.link_drop_rate:
                    events.append(LinkDrop(u, v))
        return events


def _noop_repair() -> RepairResult:
    return RepairResult(
        strategy="noop",
        rebuilt=False,
        parent_changed=(),
        child_losses=(),
        removed=(),
        detached=(),
        control_bits=0,
        control_messages=0,
        rounds=0,
    )
