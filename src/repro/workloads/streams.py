"""Time-evolving (streaming) workloads.

The one-shot generators in :mod:`repro.workloads.generators` produce a single
snapshot of readings.  Continuous monitoring — the regime the streaming engine
targets — needs readings that *evolve* epoch by epoch, so each class below is
a stateful stream: :meth:`~StreamWorkload.initial` yields the epoch-0
assignment and :meth:`~StreamWorkload.step` yields only the nodes whose
readings changed in the current epoch (an empty item list marks a node that
went offline).  Four qualitatively different dynamics are provided:

* ``drift`` — each epoch a small fraction of sensors take a bounded random
  walk step, the classic slowly-varying temperature/light trace;
* ``burst`` — long quiet stretches punctuated by a correlated jump of a
  node subset (an event passing through the field), stressing the engine's
  ability to fall back to near-recompute traffic during the burst;
* ``churn`` — sensors fail and rejoin with fresh readings, changing the
  *population* rather than just the values (COUNT answers must track it);
* ``seasonal`` — every reading follows a shared sinusoid plus per-node phase,
  so *all* nodes change a little every epoch, the worst case for per-node
  change detection and the best case for delta encoding.

All streams are deterministic in their ``seed``; values are non-negative
integers bounded by ``max_value``, matching the one-shot generators.
"""

from __future__ import annotations

import abc
import math

from repro._util.randomness import make_rng
from repro._util.validation import require_non_negative, require_positive, require_probability
from repro.exceptions import ConfigurationError
from repro.faults.events import NodeCrash, NodeRejoin


class StreamWorkload(abc.ABC):
    """A deterministic per-epoch update process over ``num_nodes`` sensors."""

    name = "stream"

    def __init__(self, num_nodes: int, max_value: int = 1 << 16, seed: int | None = 0) -> None:
        require_positive(num_nodes, "num_nodes")
        require_non_negative(max_value, "max_value")
        self.num_nodes = num_nodes
        self.max_value = max_value
        self.seed = seed
        self._rng = make_rng(seed)

    def _clamp(self, value: float) -> int:
        return max(0, min(self.max_value, int(round(value))))

    @abc.abstractmethod
    def initial(self) -> dict[int, list[int]]:
        """The epoch-0 reading of every node (node id → item list)."""

    @abc.abstractmethod
    def step(self, epoch: int) -> dict[int, list[int]]:
        """Advance one epoch; return only the nodes whose readings changed.

        An empty list means the node currently holds no reading (offline).
        ``epoch`` is informational — streams advance their own state on every
        call, so :meth:`step` must be called once per epoch, in order.
        """


class DriftStream(StreamWorkload):
    """A fraction of sensors take a small bounded random-walk step each epoch."""

    name = "drift"

    def __init__(
        self,
        num_nodes: int,
        max_value: int = 1 << 16,
        seed: int | None = 0,
        drift_fraction: float = 0.05,
        step_fraction: float = 0.02,
    ) -> None:
        super().__init__(num_nodes, max_value=max_value, seed=seed)
        self.drift_fraction = require_probability(drift_fraction, "drift_fraction")
        if step_fraction <= 0:
            raise ConfigurationError(
                f"step_fraction must be positive, got {step_fraction}"
            )
        self.step_fraction = step_fraction
        self._values: list[int] = []

    def initial(self) -> dict[int, list[int]]:
        self._values = [
            self._rng.randint(0, self.max_value) for _ in range(self.num_nodes)
        ]
        return {node: [value] for node, value in enumerate(self._values)}

    def step(self, epoch: int) -> dict[int, list[int]]:
        del epoch
        sigma = self.step_fraction * self.max_value
        updates: dict[int, list[int]] = {}
        for node in range(self.num_nodes):
            if self._rng.random() >= self.drift_fraction:
                continue
            moved = self._clamp(self._values[node] + self._rng.gauss(0.0, sigma))
            if moved != self._values[node]:
                self._values[node] = moved
                updates[node] = [moved]
        return updates


class BurstStream(StreamWorkload):
    """Quiet background with periodic correlated jumps of a node subset.

    Every ``burst_period`` epochs a fresh subset of ``burst_fraction`` of the
    nodes jumps up by ``burst_offset_fraction`` of the range, stays elevated
    for ``burst_length`` epochs and then returns to its base reading.
    """

    name = "burst"

    def __init__(
        self,
        num_nodes: int,
        max_value: int = 1 << 16,
        seed: int | None = 0,
        burst_period: int = 10,
        burst_length: int = 3,
        burst_fraction: float = 0.2,
        burst_offset_fraction: float = 0.3,
    ) -> None:
        super().__init__(num_nodes, max_value=max_value, seed=seed)
        require_positive(burst_period, "burst_period")
        require_positive(burst_length, "burst_length")
        if burst_length >= burst_period:
            raise ConfigurationError("burst_length must be smaller than burst_period")
        self.burst_period = burst_period
        self.burst_length = burst_length
        self.burst_fraction = require_probability(burst_fraction, "burst_fraction")
        self.burst_offset_fraction = require_probability(
            burst_offset_fraction, "burst_offset_fraction"
        )
        self._base: list[int] = []
        self._burst_set: set[int] = set()
        self._clock = 0

    def initial(self) -> dict[int, list[int]]:
        self._base = [
            self._rng.randint(0, self.max_value) for _ in range(self.num_nodes)
        ]
        self._clock = 0
        return {node: [value] for node, value in enumerate(self._base)}

    def step(self, epoch: int) -> dict[int, list[int]]:
        del epoch
        self._clock += 1
        phase = self._clock % self.burst_period
        updates: dict[int, list[int]] = {}
        if phase == 0:
            # Burst begins: pick a fresh subset and lift it.
            count = max(1, int(self.burst_fraction * self.num_nodes))
            self._burst_set = set(self._rng.sample(range(self.num_nodes), count))
            offset = self.burst_offset_fraction * self.max_value
            for node in sorted(self._burst_set):
                updates[node] = [self._clamp(self._base[node] + offset)]
        elif phase == self.burst_length and self._burst_set:
            # Burst ends: everyone returns to base.
            for node in sorted(self._burst_set):
                updates[node] = [self._base[node]]
            self._burst_set = set()
        return updates


class ChurnStream(StreamWorkload):
    """Sensors fail and rejoin: population changes dominate value changes.

    Each epoch every node independently toggles with probability
    ``churn_rate``: an online node goes offline and an offline node rejoins
    with a fresh uniform reading.  Node 0 — the root in the default network
    construction — is pinned online so the query engine always has an
    answering node.

    Two fault models are supported.  In the default *compatibility mode*
    (``emit_events=False``) churn is silent: an offline node's update is an
    empty item list and a rejoin is a plain value update, so the network
    topology never changes — the engine merely sees readings vanish.  With
    ``emit_events=True`` the stream instead emits explicit
    :class:`~repro.faults.NodeCrash` / :class:`~repro.faults.NodeRejoin`
    events (collected via :meth:`pop_fault_events`) for the
    :class:`~repro.faults.FaultEngine` to apply, and :meth:`step` returns no
    entry for churned nodes at all — the fault engine owns item loss and
    fresh readings.  Both modes draw identical randomness, so one seed
    reproduces the same churn trajectory either way.
    """

    name = "churn"

    def __init__(
        self,
        num_nodes: int,
        max_value: int = 1 << 16,
        seed: int | None = 0,
        churn_rate: float = 0.05,
        emit_events: bool = False,
    ) -> None:
        super().__init__(num_nodes, max_value=max_value, seed=seed)
        self.churn_rate = require_probability(churn_rate, "churn_rate")
        self.emit_events = emit_events
        self._values: list[int] = []
        self._online: list[bool] = []
        self._pending_events: list[object] = []

    def initial(self) -> dict[int, list[int]]:
        self._values = [
            self._rng.randint(0, self.max_value) for _ in range(self.num_nodes)
        ]
        self._online = [True] * self.num_nodes
        self._pending_events = []
        return {node: [value] for node, value in enumerate(self._values)}

    def step(self, epoch: int) -> dict[int, list[int]]:
        del epoch
        updates: dict[int, list[int]] = {}
        for node in range(self.num_nodes):
            if self._rng.random() >= self.churn_rate:
                continue
            if node == 0:
                continue  # the root stays online
            if self._online[node]:
                self._online[node] = False
                if self.emit_events:
                    self._pending_events.append(NodeCrash(node))
                else:
                    updates[node] = []
            else:
                self._online[node] = True
                self._values[node] = self._rng.randint(0, self.max_value)
                if self.emit_events:
                    self._pending_events.append(
                        NodeRejoin(node, items=(self._values[node],))
                    )
                else:
                    updates[node] = [self._values[node]]
        return updates

    def pop_fault_events(self) -> list[object]:
        """Return (and clear) the fault events produced by the last step.

        Empty unless ``emit_events=True``.  The fault-aware stream runner
        (:func:`~repro.faults.run_faulty_stream`) calls this each epoch and
        hands the events to the fault engine.
        """
        events, self._pending_events = self._pending_events, []
        return events

    def online_count(self) -> int:
        """Number of currently-online sensors (ground truth for tests)."""
        return sum(self._online)


class SeasonalStream(StreamWorkload):
    """Every reading follows a shared sinusoid with per-node phase and noise.

    All nodes move a little every epoch — dense small changes, the regime
    where delta encoding (not change suppression) carries the savings.
    """

    name = "seasonal"

    def __init__(
        self,
        num_nodes: int,
        max_value: int = 1 << 16,
        seed: int | None = 0,
        period: int = 24,
        amplitude_fraction: float = 0.1,
        noise_fraction: float = 0.005,
    ) -> None:
        super().__init__(num_nodes, max_value=max_value, seed=seed)
        require_positive(period, "period")
        self.period = period
        self.amplitude_fraction = require_probability(
            amplitude_fraction, "amplitude_fraction"
        )
        self.noise_fraction = require_probability(noise_fraction, "noise_fraction")
        self._base: list[int] = []
        self._phase: list[float] = []
        self._values: list[int] = []
        self._clock = 0

    def _reading(self, node: int) -> int:
        wave = math.sin(2.0 * math.pi * (self._clock / self.period + self._phase[node]))
        noise = self._rng.gauss(0.0, self.noise_fraction * self.max_value)
        return self._clamp(
            self._base[node] + self.amplitude_fraction * self.max_value * wave + noise
        )

    def initial(self) -> dict[int, list[int]]:
        margin = int(self.amplitude_fraction * self.max_value)
        self._base = [
            self._rng.randint(margin, max(margin, self.max_value - margin))
            for _ in range(self.num_nodes)
        ]
        self._phase = [self._rng.random() for _ in range(self.num_nodes)]
        self._clock = 0
        self._values = [self._reading(node) for node in range(self.num_nodes)]
        return {node: [value] for node, value in enumerate(self._values)}

    def step(self, epoch: int) -> dict[int, list[int]]:
        del epoch
        self._clock += 1
        updates: dict[int, list[int]] = {}
        for node in range(self.num_nodes):
            reading = self._reading(node)
            if reading != self._values[node]:
                self._values[node] = reading
                updates[node] = [reading]
        return updates


STREAM_WORKLOADS: dict[str, type[StreamWorkload]] = {
    DriftStream.name: DriftStream,
    BurstStream.name: BurstStream,
    ChurnStream.name: ChurnStream,
    SeasonalStream.name: SeasonalStream,
}
"""Name → stream class map used by the experiment harness and the benchmarks."""


def make_stream(
    name: str,
    num_nodes: int,
    max_value: int = 1 << 16,
    seed: int | None = 0,
    **params,
) -> StreamWorkload:
    """Instantiate a named stream workload."""
    if name not in STREAM_WORKLOADS:
        raise ConfigurationError(
            f"unknown stream workload {name!r}; known: {sorted(STREAM_WORKLOADS)}"
        )
    return STREAM_WORKLOADS[name](
        num_nodes, max_value=max_value, seed=seed, **params
    )
