"""The sensor-network simulator.

:class:`SensorNetwork` ties together a topology, the sensor nodes with their
input items, a rooted spanning tree, a radio model and the communication
ledger.  Protocols interact with the network exclusively through

* :meth:`send` — transmit a payload of an explicitly declared size over a
  graph edge (charged to the ledger, filtered through the radio model), and
* the node objects — for *local* computation only.

This mirrors the paper's model (Section 2.1): the root can only initiate
protocols and read back results; all costs are incurred edge by edge.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import networkx as nx

from repro._util.validation import require_non_negative
from repro.exceptions import ConfigurationError, EmptyNetworkError, TopologyError
from repro.network.accounting import CommunicationLedger, LedgerSnapshot
from repro.network.message import Message
from repro.network.node import SensorNode
from repro.network.radio import RadioModel, ReliableRadio
from repro.network.spanning_tree import SpanningTree, bfs_tree, bounded_degree_tree
from repro.network.topology import build_topology


class SensorNetwork:
    """A simulated sensor network holding integer items at each node."""

    def __init__(
        self,
        graph: nx.Graph,
        root: int = 0,
        radio: RadioModel | None = None,
        tree: SpanningTree | None = None,
        degree_bound: int | None = 3,
        ledger: CommunicationLedger | None = None,
    ) -> None:
        if root not in graph:
            raise TopologyError(f"root {root} is not a node of the graph")
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise TopologyError("sensor network graph must be connected")
        self.graph = graph
        self.root_id = root
        self.radio = radio if radio is not None else ReliableRadio()
        self.ledger = ledger if ledger is not None else CommunicationLedger()
        self._nodes: dict[int, SensorNode] = {
            node_id: SensorNode(node_id=node_id, is_root=(node_id == root))
            for node_id in graph.nodes()
        }
        self.degree_bound = degree_bound
        if tree is not None:
            tree.validate(graph)
            self.tree = tree
        else:
            self.tree = self._build_tree()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_items(
        cls,
        items: Sequence[int],
        topology: str | nx.Graph = "grid",
        root: int = 0,
        radio: RadioModel | None = None,
        degree_bound: int | None = 3,
        seed: int | None = 0,
    ) -> "SensorNetwork":
        """Build a network with one item per node.

        ``topology`` is either a prebuilt graph with exactly ``len(items)``
        nodes or the name of a generator from
        :mod:`repro.network.topology`.
        """
        if len(items) == 0:
            raise EmptyNetworkError("cannot build a network from zero items")
        if isinstance(topology, nx.Graph):
            graph = topology
        else:
            graph = build_topology(topology, len(items), seed=seed)
        if graph.number_of_nodes() < len(items):
            raise ConfigurationError(
                f"topology has {graph.number_of_nodes()} nodes but "
                f"{len(items)} items were supplied"
            )
        network = cls(
            graph, root=root, radio=radio, degree_bound=degree_bound
        )
        node_ids = sorted(graph.nodes())
        for node_id, value in zip(node_ids, items):
            network._nodes[node_id].add_item(value)
        return network

    def _build_tree(self) -> SpanningTree:
        if self.degree_bound is None:
            return bfs_tree(self.graph, self.root_id)
        return bounded_degree_tree(
            self.graph, self.root_id, max_degree=self.degree_bound
        )

    _UNSET = object()

    def rebuild_tree(self, degree_bound: object = _UNSET) -> SpanningTree:
        """Rebuild the spanning tree, optionally changing the degree bound.

        Pass ``degree_bound=None`` explicitly to switch to an unbounded BFS
        tree; omit the argument to keep the current bound.
        """
        if degree_bound is not SensorNetwork._UNSET:
            self.degree_bound = degree_bound  # type: ignore[assignment]
        self.tree = self._build_tree()
        return self.tree

    # ------------------------------------------------------------------ #
    # Node / item access
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def root(self) -> SensorNode:
        return self._nodes[self.root_id]

    def node(self, node_id: int) -> SensorNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node id {node_id}") from None

    def nodes(self) -> Iterator[SensorNode]:
        """Iterate over nodes in id order."""
        for node_id in sorted(self._nodes):
            yield self._nodes[node_id]

    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    def assign_items(self, per_node_items: dict[int, Iterable[int]]) -> None:
        """Replace the items of the listed nodes (others keep theirs)."""
        for node_id, values in per_node_items.items():
            node = self.node(node_id)
            node.clear_items()
            node.add_items(values)

    def clear_items(self) -> None:
        """Remove every item from every node."""
        for node in self._nodes.values():
            node.clear_items()

    def all_items(self) -> list[int]:
        """Ground-truth multiset of all items, for verification only.

        Protocols must never call this — it bypasses the communication model.
        The test-suite and the experiment harness use it to check protocol
        outputs against the true answer.
        """
        items: list[int] = []
        for node in self.nodes():
            items.extend(node.items)
        return items

    def total_items(self) -> int:
        """Ground-truth value of N = |X| (verification only)."""
        return sum(node.item_count for node in self._nodes.values())

    def max_item(self) -> int:
        """Ground-truth max(X) (verification only)."""
        items = self.all_items()
        if not items:
            raise EmptyNetworkError("network holds no items")
        return max(items)

    def reset_scratch(self) -> None:
        """Clear per-protocol scratch state on every node."""
        for node in self._nodes.values():
            node.reset_scratch()

    # ------------------------------------------------------------------ #
    # Communication
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: int,
        receiver: int,
        payload: object,
        size_bits: int,
        protocol: str = "unknown",
        require_edge: bool = True,
    ) -> Message:
        """Transmit ``payload`` from ``sender`` to ``receiver``.

        The transmission is filtered through the radio model (which may retry
        or duplicate it); every attempt is charged to the ledger.  The
        delivered :class:`Message` is returned so the caller can hand it to the
        receiving node's logic.
        """
        require_non_negative(size_bits, "size_bits")
        if sender not in self._nodes or receiver not in self._nodes:
            raise ConfigurationError(
                f"send between unknown nodes {sender} -> {receiver}"
            )
        if require_edge and not self.graph.has_edge(sender, receiver):
            raise TopologyError(
                f"nodes {sender} and {receiver} are not neighbours; "
                "multi-hop delivery must be routed explicitly"
            )
        outcome = self.radio.transmit(sender, receiver)
        charged_attempts = max(outcome.attempts, outcome.copies_delivered)
        for _ in range(charged_attempts):
            self.ledger.charge(sender, receiver, size_bits, protocol=protocol)
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            size_bits=size_bits,
            protocol=protocol,
            metadata={"copies_delivered": outcome.copies_delivered},
        )
        return message

    def send_up(
        self, node_id: int, payload: object, size_bits: int, protocol: str = "unknown"
    ) -> Message | None:
        """Send from ``node_id`` to its tree parent (``None`` at the root)."""
        parent = self.tree.parent[node_id]
        if parent is None:
            return None
        return self.send(node_id, parent, payload, size_bits, protocol=protocol)

    def send_down(
        self, node_id: int, payload: object, size_bits: int, protocol: str = "unknown"
    ) -> list[Message]:
        """Send the same payload from ``node_id`` to each of its tree children."""
        return [
            self.send(node_id, child, payload, size_bits, protocol=protocol)
            for child in self.tree.children[node_id]
        ]

    # ------------------------------------------------------------------ #
    # Measurement helpers
    # ------------------------------------------------------------------ #
    def reset_ledger(self) -> None:
        """Clear the communication counters (items and tree are preserved)."""
        self.ledger.reset()
        self.radio.reset()

    def measure(self, run: Callable[["SensorNetwork"], object]) -> tuple[object, "LedgerSnapshot"]:
        """Run a protocol callable against a fresh ledger and return (result, snapshot)."""
        self.reset_ledger()
        result = run(self)
        return result, self.ledger.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"SensorNetwork(nodes={self.num_nodes}, root={self.root_id}, "
            f"items={self.total_items()}, tree_height={self.tree.height})"
        )
