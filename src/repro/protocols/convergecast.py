"""Convergecast: leaves-to-root aggregation over the spanning tree.

The TAG idea (and the paper's Fact 2.1) is that a node does not forward raw
data; it combines its children's partial aggregates with its own local value
and sends a single partial aggregate to its parent.  The generic traversal
below is parameterised by

* ``local_value`` — the node's own contribution (computed locally, free),
* ``combine`` — the aggregation operator (must be associative and commutative
  for the result to be independent of child ordering),
* ``size_bits`` — the wire size of a partial aggregate, either a constant or
  a callable evaluated on the value actually sent (so adaptive encodings are
  charged faithfully).

Two execution paths implement the same traversal, selected by
``network.execution``:

* *batched* (default) — walks the :class:`~repro.network.flat_tree.FlatTree`
  arrays, collects every upward transmission of the sweep, and charges them
  in one :meth:`~repro.network.SensorNetwork.send_up_tree` call.  This is
  what lets the simulator run 100k-node fields.
* *per-edge* — the reference implementation: one
  :meth:`~repro.network.SensorNetwork.send` per tree edge.

Both visit nodes, combine partials and draw radio randomness in exactly the
same order, so they produce bit-for-bit identical ledgers and results (the
equivalence test-suite enforces this across topologies and radio models).
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.network.simulator import SensorNetwork

T = TypeVar("T")


def convergecast(
    network: SensorNetwork,
    local_value: Callable[..., T],
    combine: Callable[[T, T], T],
    size_bits: int | Callable[[T], int],
    protocol: str = "convergecast",
) -> T:
    """Aggregate ``local_value`` over all nodes, returning the root's total.

    ``local_value`` receives the :class:`~repro.network.SensorNode`; the
    traversal visits nodes bottom-up so every child has produced its partial
    aggregate before its parent combines it.  The number of synchronous rounds
    consumed equals the tree height.
    """
    if network.execution == "per-edge":
        return _convergecast_per_edge(
            network, local_value, combine, size_bits, protocol
        )
    return _convergecast_batched(network, local_value, combine, size_bits, protocol)


def _convergecast_batched(
    network: SensorNetwork,
    local_value: Callable[..., T],
    combine: Callable[[T, T], T],
    size_bits: int | Callable[[T], int],
    protocol: str,
) -> T:
    flat = network.flat_tree
    nodes = network.node_map
    node_ids = flat.node_ids
    parent = flat.parent
    child_start = flat.child_start
    child_end = flat.child_end
    child_index = flat.child_index
    values: list[T | None] = [None] * flat.num_nodes
    # Every non-root node sends exactly once, in bottom-up order — the edge
    # sequence is the precomputed flat.up_links; only the sizes are dynamic.
    # An adaptive size callable is invoked exactly as on the per-edge path:
    # once per transmitting (non-root) node, in the same order.
    sizes: list[int] = []
    append_size = sizes.append
    adaptive = callable(size_bits)
    for position in flat.bottom_up:
        value = local_value(nodes[node_ids[position]])
        start = child_start[position]
        end = child_end[position]
        if start != end:
            for slot in range(start, end):
                value = combine(value, values[child_index[slot]])
        values[position] = value
        if adaptive and parent[position] >= 0:
            append_size(size_bits(value))
    if not adaptive:
        sizes = [size_bits] * len(flat.up_links)
    network.send_batch(flat.up_links, sizes, protocol=protocol, require_edge=False)
    network.ledger.advance_round(flat.height)
    return values[0]  # the root has canonical index 0


def _convergecast_per_edge(
    network: SensorNetwork,
    local_value: Callable[..., T],
    combine: Callable[[T, T], T],
    size_bits: int | Callable[[T], int],
    protocol: str,
) -> T:
    tree = network.tree
    partial: dict[int, T] = {}
    for node_id in tree.nodes_bottom_up():
        node = network.node(node_id)
        value = local_value(node)
        for child in tree.children[node_id]:
            value = combine(value, partial.pop(child))
        partial[node_id] = value
        parent = tree.parent[node_id]
        if parent is not None:
            bits = size_bits(value) if callable(size_bits) else size_bits
            network.send(node_id, parent, value, bits, protocol=protocol)
    network.ledger.advance_round(tree.height)
    return partial[network.root_id]
