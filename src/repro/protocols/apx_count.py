"""APX_COUNT — the α-counting protocol of Fact 2.2.

Each node folds its (predicate-matching) items into a small LogLog sketch;
sketches are merged register-wise up the spanning tree; the root reads off the
cardinality estimate.  Per Durand–Flajolet, with ``m`` registers the estimate
is essentially unbiased (α < 10⁻⁶) with relative standard deviation
``σ ≈ 1.30/√m``, and a sketch occupies ``m · O(log log N)`` bits — the
exponential saving over exact counting that Section 4 of the paper builds on.

Two counting modes are supported:

* ``"multiset"`` — every item contributes fresh randomness, so duplicates are
  counted (this realises the paper's APX_COUNT of |X|).  Each invocation uses
  a fresh salt so repeated runs (REP_COUNTP) are independent.
* ``"distinct"`` — items contribute the hash of their value, so duplicates
  collapse (this is the approximate COUNT DISTINCT of Section 5, and it also
  makes the protocol duplicate-insensitive at the transport level).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._util.randomness import make_rng
from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.protocols.predicates import AllItemsPredicate, Predicate
from repro.sketches.hashing import hash64
from repro.sketches.hyperloglog import HyperLogLogSketch
from repro.sketches.loglog import LogLogSketch

_SALT_BITS = 32  # broadcast alongside the query so nodes agree on the hash salt

_SKETCH_TYPES = {
    "loglog": LogLogSketch,
    "hyperloglog": HyperLogLogSketch,
}


@dataclass(frozen=True)
class ApproxCountResult:
    """Root-side outcome of one APX_COUNT invocation."""

    estimate: float
    relative_sigma: float
    num_registers: int
    sketch_bits: int


class ApproxCountProtocol:
    """Distributed LogLog/HyperLogLog counting over the spanning tree.

    Args:
        num_registers: sketch size ``m`` (power of two).  Larger means lower
            variance and proportionally more bits per message.
        mode: ``"multiset"`` to count items with multiplicity, ``"distinct"``
            to count distinct values.
        sketch: ``"loglog"`` (the paper's reference [3]) or ``"hyperloglog"``.
        predicate: restrict counting to matching items (APX_COUNTP).
        seed: master seed; successive invocations derive fresh salts from it,
            so repeating the protocol yields independent estimates.
        max_expected_count: upper bound on the count used to size the register
            field width (defaults to 2³⁰, i.e. register width 5 bits).
    """

    def __init__(
        self,
        num_registers: int = 64,
        mode: str = "multiset",
        sketch: str = "loglog",
        predicate: Predicate | None = None,
        view: ItemView = raw_items,
        seed: int | random.Random | None = 0,
        max_expected_count: int = 1 << 30,
    ) -> None:
        require_positive(num_registers, "num_registers")
        if mode not in ("multiset", "distinct"):
            raise ConfigurationError(f"unknown counting mode {mode!r}")
        if sketch not in _SKETCH_TYPES:
            raise ConfigurationError(
                f"unknown sketch type {sketch!r}; known: {sorted(_SKETCH_TYPES)}"
            )
        self.num_registers = num_registers
        self.mode = mode
        self.sketch_type = sketch
        self.predicate = predicate if predicate is not None else AllItemsPredicate()
        self._view = view
        self._rng = make_rng(seed)
        self.max_expected_count = max_expected_count

    # ------------------------------------------------------------------ #
    def _fresh_salt(self) -> int:
        return self._rng.getrandbits(48)

    def _empty_sketch(self, salt: int):
        sketch_cls = _SKETCH_TYPES[self.sketch_type]
        return sketch_cls(num_registers=self.num_registers, salt=salt)

    def _local_sketch(
        self, node: SensorNode, salt: int, predicate: Predicate, view: ItemView
    ):
        sketch = self._empty_sketch(salt)
        matching = [value for value in view(node) if predicate(value)]
        if self.mode == "distinct":
            for value in matching:
                sketch.add_item(value)
        else:
            # Fresh per-(node, item, salt) randomness so every item counts once
            # per invocation and invocations are mutually independent.
            node_rng = random.Random(hash64(node.node_id * 1_000_003 + salt, salt=salt))
            for _ in matching:
                sketch.add_random(node_rng)
        return sketch

    @property
    def relative_sigma(self) -> float:
        """The σ of Definition 2.1 for the configured sketch size."""
        return self._empty_sketch(salt=0).relative_sigma

    def run(
        self,
        network: SensorNetwork,
        predicate: Predicate | None = None,
        view: ItemView | None = None,
    ) -> ProtocolResult:
        """Execute one α-counting invocation; ``value`` is an :class:`ApproxCountResult`.

        ``predicate`` and ``view`` override the defaults configured at
        construction for this invocation only (REP_COUNTP reuses one protocol
        object across many probes with different predicates).
        """
        effective_predicate = predicate if predicate is not None else self.predicate
        effective_view = view if view is not None else self._view
        salt = self._fresh_salt()
        sketch_bits = self._empty_sketch(salt).serialized_bits(self.max_expected_count)
        with MeteredRun(network) as metered:
            broadcast(
                network,
                {"query": "APX_COUNT", "salt": salt, "predicate": effective_predicate},
                _SALT_BITS + effective_predicate.encoded_bits(),
                protocol="APX_COUNT",
            )
            merged = convergecast(
                network,
                lambda node: self._local_sketch(
                    node, salt, effective_predicate, effective_view
                ),
                lambda a, b: a.merge(b),
                sketch_bits,
                protocol="APX_COUNT",
            )
            result = ApproxCountResult(
                estimate=merged.estimate(),
                relative_sigma=merged.relative_sigma,
                num_registers=self.num_registers,
                sketch_bits=sketch_bits,
            )
        return metered.result(result)
