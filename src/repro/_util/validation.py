"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import numbers

from repro.exceptions import ConfigurationError


def require_integer(value: object, name: str) -> int:
    """Return ``value`` as ``int``; raise :class:`ConfigurationError` otherwise.

    Booleans are rejected even though they are ``int`` subclasses, because a
    ``True`` slipping in where an item count is expected is always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    return int(value)


def require_positive(value: object, name: str) -> int:
    """Return ``value`` as a strictly positive ``int``."""
    as_int = require_integer(value, name)
    if as_int <= 0:
        raise ConfigurationError(f"{name} must be positive, got {as_int}")
    return as_int


def require_non_negative(value: object, name: str) -> int:
    """Return ``value`` as a non-negative ``int``."""
    as_int = require_integer(value, name)
    if as_int < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {as_int}")
    return as_int


def require_probability(value: object, name: str) -> float:
    """Return ``value`` as a float in the closed interval ``[0, 1]``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    as_float = float(value)
    if not 0.0 <= as_float <= 1.0:
        raise ConfigurationError(
            f"{name} must lie in [0, 1], got {as_float}"
        )
    return as_float
