"""Tests for the deterministic hash functions used by sketches."""

from repro.sketches.hashing import hash64, hash_to_unit, leading_rank


class TestHash64:
    def test_deterministic(self):
        assert hash64(12345) == hash64(12345)

    def test_salt_changes_value(self):
        assert hash64(12345, salt=1) != hash64(12345, salt=2)

    def test_range_is_64_bits(self):
        for value in range(200):
            hashed = hash64(value)
            assert 0 <= hashed < (1 << 64)

    def test_no_trivial_collisions(self):
        values = {hash64(value) for value in range(10_000)}
        assert len(values) == 10_000

    def test_avalanche_bias_is_small(self):
        # Flipping the input by one should change roughly half the output bits.
        flips = []
        for value in range(500):
            xor = hash64(value) ^ hash64(value + 1)
            flips.append(bin(xor).count("1"))
        mean_flips = sum(flips) / len(flips)
        assert 24 < mean_flips < 40


class TestHashToUnit:
    def test_unit_interval(self):
        for value in range(300):
            u = hash_to_unit(value)
            assert 0.0 <= u < 1.0

    def test_roughly_uniform(self):
        values = [hash_to_unit(value, salt=9) for value in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55
        below_quarter = sum(1 for value in values if value < 0.25) / len(values)
        assert 0.2 < below_quarter < 0.3


class TestLeadingRank:
    def test_zero_value(self):
        assert leading_rank(0, width=8) == 9

    def test_full_value_has_rank_one(self):
        assert leading_rank((1 << 64) - 1) == 1

    def test_geometric_distribution_shape(self):
        # Rank k should occur with probability ~2^-k over uniform hashes.
        ranks = [leading_rank(hash64(value, salt=3)) for value in range(20_000)]
        fraction_rank1 = sum(1 for rank in ranks if rank == 1) / len(ranks)
        fraction_rank2 = sum(1 for rank in ranks if rank == 2) / len(ranks)
        assert 0.45 < fraction_rank1 < 0.55
        assert 0.2 < fraction_rank2 < 0.3

    def test_smaller_width(self):
        assert leading_rank(1, width=4) == 4
