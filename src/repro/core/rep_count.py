"""REP_COUNTP — repetition and averaging of the α-counting protocol.

Fig. 2's subroutine: invoke ``r`` independent instances of APX_COUNT restricted
to a predicate and return the average.  By Lemma 4.1 (Chebyshev), the average
of ``r`` runs deviates from the true count ``g`` by more than ``t + α_c g``
with probability at most ``σ² / (r t²)``.

The paper sets ``r = ceil(2q)`` for the initial size estimate and
``r = ceil(32q)`` for the binary-search probes, with ``q = log(M − m) / ε``.
Those constants make the union bound of Theorem 4.5 go through but are far
larger than a simulation needs; :class:`RepetitionPolicy` therefore exposes
the multipliers and an optional cap.  ``RepetitionPolicy.paper()`` reproduces
the pseudocode exactly; ``RepetitionPolicy.practical()`` (the default used by
the benchmarks) keeps the same structure with a bounded number of repetitions
so large sweeps finish in reasonable time.  Experiment E9 quantifies the
effect of the cap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util.validation import require_positive
from repro.exceptions import ConfigurationError
from repro.network.simulator import SensorNetwork
from repro.protocols.apx_count import ApproxCountProtocol
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.predicates import AllItemsPredicate, Predicate


@dataclass(frozen=True)
class RepetitionPolicy:
    """How many APX_COUNT repetitions REP_COUNTP performs.

    Attributes:
        count_multiplier: multiplier of ``q`` for the initial COUNT estimate
            (the paper uses 2).
        probe_multiplier: multiplier of ``q`` for each binary-search probe
            (the paper uses 32).
        cap: optional upper bound on the repetitions of a single REP_COUNTP
            call; ``None`` reproduces the paper's counts verbatim.
        floor: lower bound on repetitions (at least one run is always made).
    """

    count_multiplier: float = 2.0
    probe_multiplier: float = 32.0
    cap: int | None = None
    floor: int = 1

    def __post_init__(self) -> None:
        if self.count_multiplier <= 0 or self.probe_multiplier <= 0:
            raise ConfigurationError("repetition multipliers must be positive")
        require_positive(self.floor, "floor")
        if self.cap is not None:
            require_positive(self.cap, "cap")
            if self.cap < self.floor:
                raise ConfigurationError("cap must be at least the floor")

    @classmethod
    def paper(cls) -> "RepetitionPolicy":
        """The constants of Fig. 2, with no cap."""
        return cls(count_multiplier=2.0, probe_multiplier=32.0, cap=None)

    @classmethod
    def practical(cls, cap: int = 8) -> "RepetitionPolicy":
        """Same structure as the paper but with at most ``cap`` repetitions."""
        return cls(count_multiplier=2.0, probe_multiplier=32.0, cap=cap)

    def _bounded(self, raw: float) -> int:
        repetitions = max(self.floor, int(math.ceil(raw)))
        if self.cap is not None:
            repetitions = min(repetitions, self.cap)
        return repetitions

    def count_repetitions(self, q: float) -> int:
        """Repetitions for the initial REP_COUNTP(·, TRUE) size estimate."""
        return self._bounded(self.count_multiplier * max(q, 1.0))

    def probe_repetitions(self, q: float) -> int:
        """Repetitions for one binary-search probe REP_COUNTP(·, "< y")."""
        return self._bounded(self.probe_multiplier * max(q, 1.0))


class RepeatedApproxCount:
    """REP_COUNTP(r, P): the average of ``r`` independent APX_COUNT runs."""

    def __init__(
        self,
        counter: ApproxCountProtocol,
        view: ItemView = raw_items,
    ) -> None:
        self._counter = counter
        self._view = view

    def run(
        self,
        network: SensorNetwork,
        repetitions: int,
        predicate: Predicate | None = None,
    ) -> ProtocolResult:
        """Run ``repetitions`` independent counts of items matching ``predicate``.

        The result's ``value`` is the averaged estimate (a float).
        """
        require_positive(repetitions, "repetitions")
        effective_predicate = predicate if predicate is not None else AllItemsPredicate()
        with MeteredRun(network) as metered:
            total = 0.0
            for _ in range(repetitions):
                run_result = self._counter.run(
                    network, predicate=effective_predicate, view=self._view
                )
                total += run_result.value.estimate
            average = total / repetitions
        return metered.result(average)

    @property
    def relative_sigma(self) -> float:
        """σ of a single underlying APX_COUNT invocation."""
        return self._counter.relative_sigma
