"""Locally-computable predicates for the COUNTP protocol.

Section 3.1 of the paper requires that a predicate handed to COUNTP

* can be evaluated by each node on its own items (no communication),
* can be described in ``O(C_COUNT(N))`` bits so broadcasting it does not
  dominate the cost of the counting protocol itself.

Every predicate therefore knows its own encoding size
(:meth:`Predicate.encoded_bits`), which the broadcast phase of COUNTP charges
per tree edge.  The deterministic median only ever uses strict threshold
predicates ("< y") whose description is one value of the input domain — the
``O(log N)`` bits Theorem 3.2 accounts for.  The polyloglog algorithm probes
thresholds over the *logarithm* domain, whose descriptions are exponentially
shorter; the adaptive encoding below is what makes that saving visible in the
measured traffic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro._util.bits import fixed_width_bits, varint_bits
from repro.exceptions import PredicateError

# Small constant opcode identifying the predicate type on the wire.
_OPCODE_BITS = 2


class Predicate(abc.ABC):
    """A predicate on item values, evaluable locally and encodable compactly."""

    @abc.abstractmethod
    def __call__(self, value: int) -> bool:
        """Evaluate the predicate on one item value."""

    @abc.abstractmethod
    def encoded_bits(self) -> int:
        """Number of bits needed to broadcast this predicate's description."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable description, e.g. ``"< 17"``."""

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}({self.describe()})"


@dataclass(frozen=True)
class AllItemsPredicate(Predicate):
    """The TRUE predicate: ``COUNTP(X, TRUE)`` is just ``COUNT(X)``."""

    def __call__(self, value: int) -> bool:
        return True

    def encoded_bits(self) -> int:
        return _OPCODE_BITS

    def describe(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class LessThanPredicate(Predicate):
    """The strict threshold predicate ``"< threshold"`` used by the median search.

    ``domain_max`` is the known upper bound on item values (the paper's X̄);
    when provided the threshold is encoded with a fixed-width field, otherwise
    a self-delimiting encoding is charged.  The threshold may be fractional
    (the binary search probes midpoints like ``y + 1/2``); one extra bit
    encodes the half, and one more the sign — the search radius of Fig. 1
    extends slightly past the value range, so probes below zero are legal
    (they simply match nothing).
    """

    threshold: float
    domain_max: int | None = None

    def __post_init__(self) -> None:
        doubled = self.threshold * 2
        if abs(doubled - round(doubled)) > 1e-9:
            raise PredicateError(
                "threshold must be an integer or an integer plus one half, "
                f"got {self.threshold}"
            )

    def __call__(self, value: int) -> bool:
        return value < self.threshold

    def encoded_bits(self) -> int:
        integer_part = abs(int(self.threshold))
        half_and_sign_bits = 2
        if self.domain_max is not None:
            if integer_part > self.domain_max:
                # A probe outside the known domain is legal (it matches either
                # everything or nothing) but must still be encodable; charge
                # its own width.
                return _OPCODE_BITS + varint_bits(integer_part) + half_and_sign_bits
            return _OPCODE_BITS + fixed_width_bits(self.domain_max) + half_and_sign_bits
        return _OPCODE_BITS + varint_bits(integer_part) + half_and_sign_bits

    def describe(self) -> str:
        return f"< {self.threshold:g}"


@dataclass(frozen=True)
class PowerThresholdPredicate(Predicate):
    """The predicate ``value < 2^exponent + offset`` described only by its exponent.

    Algorithm APX_MEDIAN2 (Line 3.4 of Fig. 4) counts the items below the
    dyadic boundary ``2^{\\hat\\mu}``.  Because the boundary is a power of two,
    the predicate's description is just the exponent — ``O(log log X̄)`` bits —
    which is what keeps the whole protocol polyloglog.  ``offset`` allows the
    boundary to be shifted by a known constant (the library uses ``-1`` for its
    ``floor(log2(x + 1))`` length transform).
    """

    exponent: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise PredicateError(
                f"exponent must be non-negative, got {self.exponent}"
            )

    @property
    def threshold(self) -> int:
        return (1 << self.exponent) + self.offset

    def __call__(self, value: int) -> bool:
        return value < self.threshold

    def encoded_bits(self) -> int:
        return _OPCODE_BITS + varint_bits(self.exponent) + 2

    def describe(self) -> str:
        return f"< 2^{self.exponent}{self.offset:+d}"


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """The dyadic-interval membership predicate ``low <= value < high``.

    Used by Algorithm APX_MEDIAN2 (Line 3.2/3.3) when nodes decide whether
    they stay active in the next zoom-in iteration.  Nodes evaluate it locally
    after the root broadcasts the current interval.
    """

    low: int
    high: int
    domain_max: int | None = None

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise PredicateError(
                f"invalid range [{self.low}, {self.high})"
            )

    def __call__(self, value: int) -> bool:
        return self.low <= value < self.high

    def encoded_bits(self) -> int:
        if self.domain_max is not None:
            return _OPCODE_BITS + 2 * fixed_width_bits(self.domain_max)
        return _OPCODE_BITS + varint_bits(self.low) + varint_bits(self.high)

    def describe(self) -> str:
        return f"in [{self.low}, {self.high})"
