"""Charged failure detection: heartbeats, latency, zombies and accounting."""

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultEngine,
    FaultScript,
    HeartbeatDetector,
    NodeCrash,
    NodeRejoin,
    TreeRepair,
    run_faulty_stream,
)
from repro.faults.detection import detector_from_config
from repro.network.radio import LossyRadio
from repro.network.simulator import SensorNetwork
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import CountQuery
from repro.workloads.faults import crash_storm_script
from repro.workloads.streams import DriftStream


def fresh_network(num_nodes=36, **kwargs):
    return SensorNetwork.from_items([0] * num_nodes, topology="grid", **kwargs)


class TestDetectorConfig:
    def test_period_must_be_positive(self):
        with pytest.raises(Exception):
            HeartbeatDetector(period=0)

    def test_sweep_schedule(self):
        detector = HeartbeatDetector(period=3)
        assert [detector.sweep_due(epoch) for epoch in range(7)] == [
            True, False, False, True, False, False, True,
        ]

    def test_latency_formulas(self):
        assert HeartbeatDetector(period=1).worst_case_latency() == 0
        assert HeartbeatDetector(period=4).worst_case_latency() == 3
        assert HeartbeatDetector(period=4).expected_latency() == 1.5

    def test_from_config(self):
        assert detector_from_config(None) is None
        assert detector_from_config(3).period == 3
        detector = HeartbeatDetector(period=2)
        assert detector_from_config(detector) is detector
        with pytest.raises(ConfigurationError):
            detector_from_config("often")
        with pytest.raises(ConfigurationError):
            detector_from_config(True)


class TestChargedSweeps:
    def test_sweep_charges_one_heartbeat_per_tree_edge(self):
        network = fresh_network(16)
        detector = HeartbeatDetector(period=1)
        bits, messages = detector.charge_sweep(network, silent=set())
        assert bits == detector.heartbeat_bits * (network.num_nodes - 1)
        assert messages == network.num_nodes - 1
        per_protocol = network.ledger.per_protocol_bits()
        assert per_protocol["faults:heartbeat"] == bits

    def test_silent_nodes_send_nothing_but_their_children_still_pay(self):
        network = fresh_network(16)
        detector = HeartbeatDetector(period=1)
        silent = {5}
        bits, _ = detector.charge_sweep(network, silent=silent)
        assert bits == detector.heartbeat_bits * (network.num_nodes - 2)
        # node 5's own children transmitted toward the zombie
        child = network.tree.children[5][0] if network.tree.children[5] else None
        if child is not None:
            assert network.ledger.traffic(child).bits_sent > 0

    def test_quiet_epochs_still_pay_the_standing_cost(self):
        network = fresh_network(16)
        faults = FaultEngine(network, detector=HeartbeatDetector(period=2))
        costs = [faults.step(epoch).detection_bits for epoch in range(4)]
        assert costs[0] > 0 and costs[2] > 0  # sweep epochs
        assert costs[1] == 0 and costs[3] == 0  # off-cycle epochs
        assert all(
            not faults.step(epoch).had_faults for epoch in range(4, 6)
        )


class TestDetectionSemantics:
    def test_crash_detected_at_next_sweep_with_real_latency(self):
        network = fresh_network(25)
        script = FaultScript()
        script.add(3, NodeCrash(7))
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=4)
        )
        for epoch in range(4):
            report = faults.step(epoch)
        # physically dead at 3 — readings gone, still in the tree, undetected
        assert report.crashed == (7,)
        assert report.detected == ()
        assert not report.repair.changed_anything
        assert network.is_alive(7)
        assert 7 in network.tree.parent
        assert 7 in faults.undetected_dead
        assert network.node(7).items == []
        # the epoch-4 sweep misses the heartbeat: detection, kill, repair
        report = faults.step(4)
        assert report.detected == (7,)
        assert report.detection_latencies == (1,)
        assert not network.is_alive(7)
        assert 7 not in network.tree.parent
        assert faults.undetected_dead == frozenset()

    def test_period_one_matches_oracle_except_heartbeat_bits(self):
        traces = {}
        for detector in (None, HeartbeatDetector(period=1)):
            network = fresh_network(36)
            network.clear_items()
            engine = ContinuousQueryEngine(network, epsilon=0.05)
            engine.register("count", CountQuery())
            script = crash_storm_script(
                network.node_ids(), epoch=2, fraction=0.2, seed=0, rejoin_epoch=5
            )
            faults = FaultEngine(
                network, script=script, repair=TreeRepair(), detector=detector
            )
            traces[detector is None] = run_faulty_stream(
                engine, DriftStream(36, seed=0), faults, epochs=8
            )
        oracle, paid = traces[True], traces[False]
        assert paid.total_repair_bits == oracle.total_repair_bits
        assert paid.total_query_bits == oracle.total_query_bits
        assert oracle.total_detection_bits == 0
        assert paid.total_detection_bits > 0
        assert paid.mean_detection_latency == 0.0
        assert [record.answers for record in paid] == [
            record.answers for record in oracle
        ]

    def test_flap_inside_the_window_never_touches_the_tree(self):
        network = fresh_network(25)
        script = FaultScript()
        script.add(1, NodeCrash(9))
        script.add(2, NodeRejoin(9, items=(123,)))
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=8)
        )
        parent_before = dict(network.tree.parent)
        reports = [faults.step(epoch) for epoch in range(4)]
        assert reports[1].crashed == (9,)
        assert reports[2].rejoined == (9,)
        assert all(report.detected == () for report in reports)
        assert all(not report.repair.changed_anything for report in reports)
        assert network.tree.parent == parent_before
        assert network.node(9).items == [123]
        assert network.is_alive(9)

    def test_flap_readings_reach_the_root(self):
        """A flapped node's replacement readings must re-synchronise.

        The flap leaves the tree untouched, so no repair marks the node
        dirty — the runner surfaces the rejoin items as that epoch's
        update, otherwise the pre-crash summary would be served forever.
        """
        network = fresh_network(25)
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.0)
        engine.register("count", CountQuery())
        script = FaultScript()
        script.add(2, NodeCrash(9))
        script.add(3, NodeRejoin(9, items=(77, 78)))
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=16)
        )
        trace = run_faulty_stream(
            engine, DriftStream(25, seed=0), faults, epochs=6
        )
        # after the flap the COUNT answer tracks the attached truth exactly
        # (epsilon 0): the two replacement readings are in the answer
        assert trace[3].errors["count"] == 0.0
        assert trace[5].errors["count"] == 0.0
        assert network.node(9).items == [77, 78]

    def test_lost_heartbeats_do_not_abort_the_sweep(self):
        from repro.network.radio import LossyRadio

        network = fresh_network(
            36, radio=LossyRadio(loss_rate=0.5, max_retries=1, seed=5)
        )
        detector = HeartbeatDetector(period=1)
        bits, messages = detector.charge_sweep(network, silent=set())
        # with 50% loss and one retry, some heartbeats die permanently;
        # the sweep still completes, charging the delivered links (a
        # permanently lost transmission charges nothing, matching send())
        assert bits > 0 and messages > 0
        assert bits == detector.heartbeat_bits * messages

    def test_zombie_cannot_be_recrashed(self):
        network = fresh_network(25)
        script = FaultScript()
        script.add(1, NodeCrash(9))
        script.add(2, NodeCrash(9))
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=5)
        )
        reports = [faults.step(epoch) for epoch in range(3)]
        assert reports[1].crashed == (9,)
        assert reports[2].crashed == ()

    def test_detection_works_through_lossy_radios(self):
        network = fresh_network(25, radio=LossyRadio(loss_rate=0.3, seed=1))
        script = FaultScript()
        script.add(1, NodeCrash(13))
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=2)
        )
        for epoch in range(3):
            report = faults.step(epoch)
        assert report.detected == (13,)
        # retries inflate the heartbeat bill beyond the lossless floor
        lossless = HeartbeatDetector(period=2).heartbeat_bits * 24
        assert report.detection_bits > 0


class TestSeparateAccounting:
    def test_detection_repair_and_query_bits_are_disjoint_columns(self):
        network = fresh_network(36)
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.05)
        engine.register("count", CountQuery())
        script = crash_storm_script(
            network.node_ids(), epoch=2, fraction=0.2, seed=0, rejoin_epoch=5
        )
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=2)
        )
        trace = run_faulty_stream(
            engine, DriftStream(36, seed=0), faults, epochs=8
        )
        assert trace.total_detection_bits > 0
        for record in trace:
            assert record.total_bits == (
                record.repair_bits + record.query_bits + record.detection_bits
            )
        per_protocol = network.ledger.per_protocol_bits()
        assert per_protocol["faults:heartbeat"] == trace.total_detection_bits

    def test_stale_zombie_answers_show_the_latency_cost(self):
        """During the detection window the COUNT answer overcounts the dead."""
        network = fresh_network(49)
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.0)
        engine.register("count", CountQuery())
        script = crash_storm_script(
            network.node_ids(), epoch=3, fraction=0.2, seed=0
        )
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=4)
        )
        trace = run_faulty_stream(
            engine, DriftStream(49, seed=0), faults, epochs=6
        )
        crashed = trace[3].crashes
        assert crashed > 0
        # epoch 3: dead sensors' stale summaries still counted at the root
        assert trace[3].errors["count"] == pytest.approx(crashed)
        # epoch 4: sweep detects, repair evicts, the answer snaps back
        assert trace[4].detected == crashed
        assert trace[4].errors["count"] == 0.0

    def test_repair_during_window_probes_pending_crashes(self):
        """A repair pass reveals zombies: handshakes need acks a corpse
        cannot send, so no zombie ever takes part in a repair as a live
        transmitter."""
        from repro.faults import LinkDrop

        network = fresh_network(25)
        victim = 7
        tree_parent = network.tree.parent[victim]
        script = FaultScript()
        script.add(1, NodeCrash(victim))
        # a tree-link drop elsewhere forces a repair at epoch 2, mid-window
        other = next(
            node
            for node, parent in network.tree.parent.items()
            if parent is not None and node != victim and parent != victim
        )
        script.add(2, LinkDrop(other, network.tree.parent[other]))
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=8)
        )
        faults.step(0)
        faults.step(1)
        assert victim in faults.undetected_dead
        sent_before = network.ledger.traffic(victim).bits_sent
        report = faults.step(2)
        # the repair probed the zombie: detected with real latency, dead,
        # out of the tree — and it transmitted nothing after its crash
        assert victim in report.detected
        assert report.detection_latencies[report.detected.index(victim)] == 1
        assert not network.is_alive(victim)
        assert victim not in network.tree.parent
        assert network.ledger.traffic(victim).bits_sent == sent_before

    def test_repair_messages_exclude_heartbeats(self):
        network = fresh_network(25)
        network.clear_items()
        engine = ContinuousQueryEngine(network, epsilon=0.05)
        engine.register("count", CountQuery())
        faults = FaultEngine(network, detector=HeartbeatDetector(period=1))
        trace = run_faulty_stream(
            engine, DriftStream(25, seed=0), faults, epochs=3
        )
        # no faults at all: every sweep charges heartbeats, repair stays zero
        for record in trace:
            assert record.repair_bits == 0
            assert record.repair_messages == 0
            assert record.detection_bits > 0

    def test_detection_latency_column_aggregates(self):
        network = fresh_network(25)
        script = FaultScript()
        script.add(1, NodeCrash(7))
        script.add(2, NodeCrash(11))
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=4)
        )
        for epoch in range(5):
            report = faults.step(epoch)
        assert report.detected == (7, 11)
        assert report.detection_latencies == (3, 2)


class TestEquivalenceUnderDetection:
    def test_detector_runs_are_ledger_identical_across_paths(self):
        snapshots = []
        for mode in ("batched", "per-edge"):
            network = fresh_network(
                36, radio=LossyRadio(loss_rate=0.25, seed=2), execution=mode
            )
            script = crash_storm_script(
                network.node_ids(), epoch=1, fraction=0.2, seed=2, rejoin_epoch=4
            )
            faults = FaultEngine(
                network, script=script, detector=HeartbeatDetector(period=2)
            )
            for epoch in range(6):
                faults.step(epoch)
            snapshots.append((network.ledger.snapshot(), dict(network.tree.parent)))
        (left, left_tree), (right, right_tree) = snapshots
        assert left.per_node_bits == right.per_node_bits
        assert left.per_protocol_bits == right.per_protocol_bits
        assert left.rounds == right.rounds
        assert left_tree == right_tree
