"""Deterministic random-number-generator plumbing.

All randomized components of the library (the LogLog sketches, the lossy radio
model, workload generators, gossip protocols) take an explicit seed or
``random.Random`` instance so experiments are reproducible.  These helpers
centralise the seed-to-generator conversion and the derivation of independent
per-node generators from a single experiment seed.
"""

from __future__ import annotations

import random
from typing import Sequence


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` built from ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged so
    state is shared intentionally), or ``None`` for an OS-seeded generator.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rngs(seed: int | random.Random | None, count: int) -> list[random.Random]:
    """Derive ``count`` statistically independent generators from one seed.

    Each derived generator gets its own seed drawn from the parent, so the
    per-node randomness used by e.g. the geometric-sampling counting protocol
    is independent across nodes but still reproducible from the single
    experiment seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = make_rng(seed)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]


def choose_without_replacement(
    rng: random.Random, population: Sequence[int], k: int
) -> list[int]:
    """Sample ``k`` distinct elements from ``population`` using ``rng``."""
    if k > len(population):
        raise ValueError(
            f"cannot sample {k} items from population of {len(population)}"
        )
    return rng.sample(list(population), k)
