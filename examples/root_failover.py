"""Root fail-over: the query node dies and the field elects a successor.

Run with::

    python examples/root_failover.py

A 400-node sensor field answers standing COUNT and MEDIAN queries over
drifting readings when, at epoch 3, the query root itself crashes — the one
failure earlier versions of the simulator refused to model.  The fault
engine responds inside the same epoch, every step billed through the radio
models:

1. **election** (`faults:election`) — candidate ids converge up the
   surviving tree fragments, the highest surviving id floods the alive
   component as the winner, and the winner reverses the parent pointers on
   the path to its fragment's old top;
2. **re-attachment** (`faults:repair`) — the other fragments of the dead
   root re-attach to the re-rooted tree as units, through the ordinary
   adoption handshakes;
3. **recovery** (`stream:*`) — the streaming engine migrates its summary
   caches along the reversed root path, so only repaired paths retransmit
   and the epoch after the handover costs zero bits again.

A second run pins the repair policy to ``strategy="rebuild"``: the same
charged election, followed by tearing the tree down, flooding a fresh BFS
construction and recomputing every summary — what the fail-over machinery
saves over the naive charged response (E13 in
``benchmarks/bench_faults.py`` asserts the fail-over never costs more).
"""

from __future__ import annotations

from repro import (
    ContinuousQueryEngine,
    CountQuery,
    FaultEngine,
    MedianQuery,
    SensorNetwork,
    TreeRepair,
    run_faulty_stream,
)
from repro.analysis.report import format_table
from repro.workloads import DriftStream, root_failover_script

NUM_NODES = 400
EPOCHS = 10
DOMAIN = 1 << 16
EPSILON = 0.1
CRASH_EPOCH = 3


def run(strategy: str):
    network = SensorNetwork.from_items(
        [0] * NUM_NODES, topology="random_geometric", seed=0, degree_bound=None
    )
    network.clear_items()
    engine = ContinuousQueryEngine(network, epsilon=EPSILON)
    engine.register("count", CountQuery())
    engine.register("median", MedianQuery(universe_size=DOMAIN, compression=256))
    script = root_failover_script(network.node_ids(), crash_epoch=CRASH_EPOCH)
    faults = FaultEngine(network, script=script, repair=TreeRepair(strategy=strategy))
    stream = DriftStream(NUM_NODES, max_value=DOMAIN, seed=3, drift_fraction=0.03)
    trace = run_faulty_stream(engine, stream, faults, epochs=EPOCHS)
    return network, trace


def main() -> None:
    network, trace = run("incremental")

    rows = []
    for record in trace:
        event = ""
        if record.new_root is not None:
            event = f"root died -> {record.new_root} elected"
        rows.append(
            [
                record.epoch,
                event,
                record.attached,
                record.election_bits,
                record.repair_bits,
                record.query_bits,
                record.total_bits,
                record.answers["count"],
                record.truths.get("count", ""),
            ]
        )
    print(format_table(
        [
            "epoch",
            "event",
            "attached",
            "election",
            "repair",
            "query",
            "total bits",
            "COUNT",
            "truth",
        ],
        rows,
        title=(
            "Root fail-over, fully accounted "
            "(total = election + repair + query bits per epoch)"
        ),
    ))
    print()
    print(
        f"the field now answers to node {network.root_id} "
        f"(the highest id that survived); decomposition holds on every "
        f"epoch: "
        + str(all(
            r.total_bits
            == r.repair_bits + r.query_bits + r.detection_bits + r.election_bits
            for r in trace
        ))
    )

    _, naive_trace = run("rebuild")
    print()
    print(format_table(
        ["response", "fault-epoch bits", "election", "repair", "total bits"],
        [
            [
                "fail-over (re-root + migrate)",
                trace.fault_epoch_bits,
                trace.total_election_bits,
                trace.total_repair_bits,
                trace.total_bits,
            ],
            [
                "rebuild + recompute",
                naive_trace.fault_epoch_bits,
                naive_trace.total_election_bits,
                naive_trace.total_repair_bits,
                naive_trace.total_bits,
            ],
        ],
        title="Surviving the loss of the query node, two ways",
    ))
    savings = naive_trace.fault_epoch_bits / max(1, trace.fault_epoch_bits)
    print()
    print(
        f"both responses pay the identical charged election; the fail-over "
        f"spends {savings:.1f}x fewer bits\noverall because only the "
        "reversed root path and the re-attached fragments retransmit."
    )


if __name__ == "__main__":
    main()
