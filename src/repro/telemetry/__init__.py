"""Unified telemetry: span tracing, metrics, and JSONL export.

The paper's contribution is a *cost measure* — per-node communication
complexity — and this package is the repository's single instrumentation
substrate for observing it.  Three pieces:

* :mod:`repro.telemetry.recorder` — the :class:`TelemetryRecorder`
  protocol behind every profiling hook, and the :data:`NULL_RECORDER`
  default that makes instrumentation free when disabled;
* :mod:`repro.telemetry.spans` — the :class:`SpanTracer`: nested, timed
  spans around each phase of the epoch pipeline, with exact per-span
  ledger deltas metered through :class:`~repro.network.LedgerMark`;
* :mod:`repro.telemetry.metrics` — the :class:`MetricsRegistry` of
  counters/gauges/histograms with Prometheus-text and markdown renderers.

:mod:`repro.telemetry.export` handles JSONL files, and
:mod:`repro.telemetry.records` holds :class:`EpochRecordBase`, the shared
base of the streaming and fault per-epoch records.

The causal diagnosis layer builds on those three:

* :mod:`repro.telemetry.flight` — the :class:`FlightRecorder`: a bounded
  ring of structured causal events (``fault.injected`` → ``detect.miss``
  → ``election`` / ``repair.*`` → ``cache.evict`` …), each linked by
  ``cause_event_id``;
* :mod:`repro.telemetry.attribution` — :class:`CostAttribution`: per-node
  cumulative bits on the dense paths, and a
  :class:`~repro.sketches.QDigest` + top-k hotspot compression of each
  epoch's per-node distribution in the million-node regime;
* :mod:`repro.telemetry.diagnose` — :func:`diagnose`: rolling median/MAD
  anomaly detection over the epoch series plus backwards causal-chain
  walks, rendered as "why" reports (CLI: ``scripts/diagnose.py``).

The epoch pipeline emits a stable span vocabulary: ``epoch`` wraps each
fault-runner step, with ``detect`` / ``election`` / ``repair`` / ``stream``
phases nested inside and one ``convergecast`` span per standing query.  The
vectorized paths reuse the same names (so phase tables line up across
execution modes) and add two of their own under ``stream``:
``shard.sweep`` (the fan-out of subtree slices to shard workers) and
``shard.merge`` (the single per-epoch fold of worker ledgers into the
network ledger).

Install a tracer on a network to light everything up::

    tracer = SpanTracer()
    network.telemetry = tracer          # binds the network's ledger
    trace = run_faulty_stream(engine, stream, faults, telemetry=tracer)
    tracer.write_jsonl("telemetry.jsonl")
    print(tracer.metrics.render_markdown())

The cardinal rule, enforced by the overhead-guard test: telemetry
*observes* the cost model and never charges a bit into it.
"""

from repro.telemetry.attribution import (
    ATTRIBUTION_MODES,
    CostAttribution,
    EpochAttribution,
)
from repro.telemetry.diagnose import (
    Anomaly,
    Diagnosis,
    build_series,
    diagnose,
    rolling_mad_anomalies,
    verdict,
)
from repro.telemetry.export import (
    dumps_line,
    load_jsonl,
    read_jsonl,
    split_by_type,
    write_jsonl,
)
from repro.telemetry.flight import (
    CONTEXT_KINDS,
    EVENT_KINDS,
    FlightEvent,
    FlightRecorder,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    HistogramState,
    MetricsRegistry,
)
from repro.telemetry.records import EpochRecordBase, TraceSerialization, json_safe
from repro.telemetry.recorder import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    NullSpan,
    TelemetryRecorder,
    as_recorder,
)
from repro.telemetry.spans import Span, SpanTracer, phases_payload

__all__ = [
    "ATTRIBUTION_MODES",
    "Anomaly",
    "CONTEXT_KINDS",
    "CostAttribution",
    "DEFAULT_BUCKETS",
    "Diagnosis",
    "EVENT_KINDS",
    "EpochAttribution",
    "EpochRecordBase",
    "FlightEvent",
    "FlightRecorder",
    "HistogramState",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_SPAN",
    "NullRecorder",
    "NullSpan",
    "Span",
    "SpanTracer",
    "TelemetryRecorder",
    "TraceSerialization",
    "as_recorder",
    "build_series",
    "diagnose",
    "dumps_line",
    "json_safe",
    "load_jsonl",
    "phases_payload",
    "read_jsonl",
    "rolling_mad_anomalies",
    "split_by_type",
    "verdict",
    "write_jsonl",
]
