"""Tests for topology generators."""

import networkx as nx
import pytest

from repro.exceptions import TopologyError
from repro.network.topology import (
    TOPOLOGY_BUILDERS,
    balanced_tree_topology,
    build_topology,
    erdos_renyi_topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    random_tree_topology,
    ring_topology,
    single_hop_topology,
    star_topology,
)


class TestLineAndRing:
    def test_line_structure(self):
        graph = line_topology(5)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4
        assert max(dict(graph.degree()).values()) == 2

    def test_single_node_line(self):
        assert line_topology(1).number_of_nodes() == 1

    def test_ring_has_no_leaves(self):
        graph = ring_topology(6)
        assert all(degree == 2 for _, degree in graph.degree())

    def test_small_ring_degenerates_to_line(self):
        assert ring_topology(2).number_of_edges() == 1


class TestStarAndClique:
    def test_star_centre_degree(self):
        graph = star_topology(10)
        degrees = dict(graph.degree())
        assert max(degrees.values()) == 9
        assert sorted(graph.nodes()) == list(range(10))

    def test_single_hop_is_complete(self):
        graph = single_hop_topology(6)
        assert graph.number_of_edges() == 15


class TestGrid:
    def test_square_grid(self):
        graph = grid_topology(4)
        assert graph.number_of_nodes() == 16
        assert nx.is_connected(graph)

    def test_rectangular_grid(self):
        graph = grid_topology(2, 5)
        assert graph.number_of_nodes() == 10
        # corner nodes have degree 2
        assert dict(graph.degree())[0] == 2

    def test_grid_node_labels_are_row_major(self):
        graph = grid_topology(3, 3)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 3)
        assert not graph.has_edge(0, 4)


class TestRandomTopologies:
    def test_random_geometric_is_connected(self):
        graph = random_geometric_topology(50, seed=3)
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 50

    def test_random_geometric_reproducible(self):
        a = random_geometric_topology(30, seed=11)
        b = random_geometric_topology(30, seed=11)
        assert set(a.edges()) == set(b.edges())

    def test_random_geometric_single_node(self):
        assert random_geometric_topology(1).number_of_nodes() == 1

    def test_random_geometric_rejects_bad_radius(self):
        with pytest.raises(TopologyError):
            random_geometric_topology(10, radius=-1.0)

    def test_random_tree_is_tree(self):
        graph = random_tree_topology(40, seed=5)
        assert nx.is_tree(graph)

    def test_erdos_renyi_connected(self):
        graph = erdos_renyi_topology(40, 0.15, seed=2)
        assert nx.is_connected(graph)


class TestBalancedTree:
    def test_node_count(self):
        graph = balanced_tree_topology(2, 3)
        assert graph.number_of_nodes() == 15
        assert nx.is_tree(graph)

    def test_height_zero_is_single_node(self):
        assert balanced_tree_topology(3, 0).number_of_nodes() == 1

    def test_negative_height_rejected(self):
        with pytest.raises(TopologyError):
            balanced_tree_topology(2, -1)


class TestBuildTopology:
    @pytest.mark.parametrize("name", sorted(TOPOLOGY_BUILDERS))
    def test_every_registered_builder_yields_connected_graph(self, name):
        graph = build_topology(name, 20, seed=1)
        assert nx.is_connected(graph)

    def test_unknown_name_rejected(self):
        with pytest.raises(TopologyError):
            build_topology("moebius", 10)

    def test_zero_nodes_rejected(self):
        with pytest.raises(Exception):
            line_topology(0)
