"""Exact COUNT DISTINCT over the spanning tree.

To report the exact number of distinct values, a node cannot compress its
subtree's data below (roughly) one bit per possible value or ``log C(X̄, d)``
bits for ``d`` distinct values — duplicates can only be eliminated if the node
knows *which* values have already been counted.  The natural exact protocol
therefore convergecasts the *set* of distinct values seen in each subtree.

Theorem 5.1 shows this is not an artefact of the naive protocol: any exact
protocol (even randomized) transfers Ω(n) bits through some node in the worst
case.  The experiment harness (E7) runs this protocol on the adversarial
Set-Disjointness instances of :mod:`repro.distinct.disjointness` and measures
the linear growth directly, alongside the O(log log n) approximate protocol.
"""

from __future__ import annotations

from repro._util.bits import fixed_width_bits, varint_bits
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast


class ExactDistinctCountProtocol:
    """Exact distinct counting by shipping value sets up the tree.

    ``domain_max`` (the paper's X̄), when provided, lets partial sets be encoded
    as whichever is smaller of an explicit value list and a bitmap over the
    domain; the accounting charges that minimum, which is the honest cost of
    the best simple exact encoding.
    """

    def __init__(
        self, domain_max: int | None = None, view: ItemView = raw_items
    ) -> None:
        self._domain_max = domain_max
        self._view = view

    def _set_bits(self, values: frozenset[int]) -> int:
        if not values:
            return 1
        listing = sum(
            fixed_width_bits(self._domain_max) if self._domain_max is not None
            else varint_bits(value)
            for value in values
        ) + varint_bits(len(values))
        if self._domain_max is not None:
            bitmap = self._domain_max + 1
            return min(listing, bitmap)
        return listing

    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute the protocol; the result's ``value`` is the exact distinct count."""
        with MeteredRun(network) as metered:
            broadcast(
                network, {"query": "COUNT_DISTINCT"}, 4, protocol="COUNT_DISTINCT"
            )

            def local(node: SensorNode) -> frozenset[int]:
                return frozenset(self._view(node))

            merged = convergecast(
                network,
                local,
                lambda a, b: a | b,
                self._set_bits,
                protocol="COUNT_DISTINCT",
            )
            answer = len(merged)
        return metered.result(answer)
