"""Durand–Flajolet LogLog counting.

This is the α-counting protocol behind the paper's Fact 2.2: with ``m``
registers the estimate has negligible bias (α < 10⁻⁶ for reasonable m) and
relative standard deviation ``σ ≈ 1.30 / sqrt(m)``, while the sketch occupies
only ``m`` registers of ``O(log log N)`` bits each.

Two usage modes matter for the reproduction:

* **Counting items / nodes** (the paper's COUNT and COUNTP): each contributor
  adds a *fresh random* 64-bit value (its own coin flips) so that every item is
  counted, including duplicates.  Use :meth:`add_random`.
* **Counting distinct values** (Section 5): each contributor adds the *hash of
  its item*, so duplicates collapse.  Use :meth:`add_item`.

Sketches merge by elementwise max, which makes the protocol order- and
duplicate-insensitive with respect to the communication subsystem — the
property Considine et al. and Nath et al. rely on and which our robustness
tests exercise with the duplicating radio model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro._util.bits import bit_width
from repro._util.validation import require_positive
from repro.sketches.hashing import hash64, leading_rank

# Asymptotic constant of the LogLog estimator (Durand & Flajolet 2003).
_ALPHA_INFINITY = 0.39701
# Relative standard error constant: sigma ~= 1.30 / sqrt(m).
LOGLOG_SIGMA_CONSTANT = 1.30


def loglog_alpha(num_registers: int) -> float:
    """Bias-correction constant ``alpha_m`` of the LogLog estimator."""
    return _ALPHA_INFINITY * (1.0 - 0.31 / num_registers) if num_registers >= 2 else 0.5


def loglog_relative_sigma(num_registers: int) -> float:
    """Relative standard deviation of a LogLog estimate with ``m`` registers."""
    return LOGLOG_SIGMA_CONSTANT / math.sqrt(num_registers)


@dataclass
class LogLogSketch:
    """A LogLog cardinality sketch with ``num_registers`` registers."""

    num_registers: int = 64
    salt: int = 0
    registers: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.num_registers, "num_registers")
        if self.num_registers & (self.num_registers - 1):
            raise ValueError(
                f"num_registers must be a power of two, got {self.num_registers}"
            )
        if not self.registers:
            self.registers = [0] * self.num_registers
        if len(self.registers) != self.num_registers:
            raise ValueError("register list length does not match num_registers")

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def _add_hash(self, hashed: int) -> None:
        index = hashed & (self.num_registers - 1)
        remainder = hashed >> self.num_registers.bit_length() - 1
        rank = leading_rank(remainder, width=64 - (self.num_registers.bit_length() - 1))
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_item(self, value: int) -> None:
        """Add a value by hash — duplicates of the same value collapse."""
        self._add_hash(hash64(value, salt=self.salt))

    def add_random(self, rng: random.Random) -> None:
        """Add one fresh random contribution — every call increments the count."""
        self._add_hash(rng.getrandbits(64))

    # ------------------------------------------------------------------ #
    # Combination and queries
    # ------------------------------------------------------------------ #
    def merge(self, other: "LogLogSketch") -> "LogLogSketch":
        """Return the register-wise max combination (order/duplicate insensitive)."""
        if other.num_registers != self.num_registers:
            raise ValueError("cannot merge sketches with different register counts")
        if other.salt != self.salt:
            raise ValueError("cannot merge sketches built with different salts")
        merged = LogLogSketch(num_registers=self.num_registers, salt=self.salt)
        merged.registers = [max(a, b) for a, b in zip(self.registers, other.registers)]
        return merged

    def merge_in_place(self, other: "LogLogSketch") -> None:
        """Fold ``other`` into this sketch without allocating a new one."""
        if other.num_registers != self.num_registers:
            raise ValueError("cannot merge sketches with different register counts")
        if other.salt != self.salt:
            raise ValueError("cannot merge sketches built with different salts")
        self.registers = [max(a, b) for a, b in zip(self.registers, other.registers)]

    def estimate(self) -> float:
        """LogLog cardinality estimate ``alpha_m * m * 2^(mean register)``."""
        if all(register == 0 for register in self.registers):
            return 0.0
        mean_rank = sum(self.registers) / self.num_registers
        raw = loglog_alpha(self.num_registers) * self.num_registers * 2.0 ** mean_rank
        # Small-range regime: when many registers are still empty the raw
        # estimator is badly biased; fall back to linear counting.
        zero_registers = self.registers.count(0)
        if zero_registers > 0 and raw < 2.5 * self.num_registers:
            return self.num_registers * math.log(self.num_registers / zero_registers)
        return raw

    @property
    def relative_sigma(self) -> float:
        """Relative standard deviation promised by Fact 2.2 for this ``m``."""
        return loglog_relative_sigma(self.num_registers)

    def serialized_bits(self, max_expected_count: int = 1 << 30) -> int:
        """Bits to transmit the sketch: ``m`` registers of ``O(log log N)`` bits."""
        max_rank = int(math.ceil(math.log2(max(2, max_expected_count)))) + 4
        return self.num_registers * bit_width(max_rank)

    def changed_registers(self, other: "LogLogSketch") -> int:
        """Number of register positions where this sketch differs from ``other``."""
        if other.num_registers != self.num_registers:
            raise ValueError("cannot compare sketches with different register counts")
        return sum(1 for a, b in zip(self.registers, other.registers) if a != b)

    def delta_bits(
        self, previous: "LogLogSketch", max_expected_count: int = 1 << 30
    ) -> int:
        """Bits to transmit this sketch to a receiver holding ``previous``.

        Registers only ever grow, so shipping the (index, new value) pairs of
        the changed registers — plus a small count header — reconstructs the
        sketch exactly.  Under a slowly-changing stream most registers are
        already saturated and the delta is a handful of bits, versus the ``m``
        registers :meth:`serialized_bits` charges for a full retransmission.
        """
        index_bits = bit_width(max(1, self.num_registers - 1))
        max_rank = int(math.ceil(math.log2(max(2, max_expected_count)))) + 4
        register_bits = bit_width(max_rank)
        changed = self.changed_registers(previous)
        # The count header must be able to say "all m registers changed".
        return changed * (index_bits + register_bits) + bit_width(self.num_registers)

    def copy(self) -> "LogLogSketch":
        clone = LogLogSketch(num_registers=self.num_registers, salt=self.salt)
        clone.registers = list(self.registers)
        return clone
