"""Per-epoch measurement records for the streaming engines.

The one-shot protocols report a single :class:`~repro.protocols.ProtocolResult`;
a continuous query instead produces a *trace*: one record per epoch carrying
the answers, the communication charged that epoch (ledger deltas), the energy
those bits cost under an :class:`~repro.network.EnergyModel`, and the
suppression statistics that explain *why* the traffic is what it is.  The
benchmarks and :mod:`repro.analysis.experiments` consume traces to quantify
incremental-versus-recompute savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Iterator

from repro.network.accounting import LedgerSnapshot
from repro.network.energy import EnergyModel
from repro.telemetry.records import EpochRecordBase, TraceSerialization


@dataclass(frozen=True)
class EpochRecord(EpochRecordBase):
    """Everything measured during one epoch of a streaming engine.

    Inherits the shared measurement fields and the ``to_dict()`` /
    ``to_jsonl()`` serializers from
    :class:`~repro.telemetry.EpochRecordBase`.
    """

    record_type: ClassVar[str] = "epoch"

    #: Total bits charged this epoch (all queries together).
    bits: int = 0
    answers: dict[str, Any] = field(default_factory=dict)
    per_query_bits: dict[str, int] = field(default_factory=dict)


@dataclass
class StreamingTrace(TraceSerialization):
    """The epoch-by-epoch history of one engine run."""

    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[EpochRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> EpochRecord:
        return self.records[index]

    @property
    def total_bits(self) -> int:
        return sum(record.bits for record in self.records)

    @property
    def total_messages(self) -> int:
        return sum(record.messages for record in self.records)

    @property
    def total_rounds(self) -> int:
        return sum(record.rounds for record in self.records)

    @property
    def total_energy_nj(self) -> float:
        return sum(record.energy_nj for record in self.records)

    def bits_per_epoch(self) -> list[int]:
        return [record.bits for record in self.records]

    def answers_for(self, name: str) -> list[Any]:
        """The per-epoch answer series of one registered query."""
        return [record.answers.get(name) for record in self.records]

    def steady_state_bits(self, warmup: int = 1) -> float:
        """Mean bits per epoch after the first ``warmup`` epochs.

        The first epoch ships full summaries from every node (nothing is
        cached yet), so steady-state traffic is the meaningful figure for
        sustained monitoring.
        """
        tail = self.records[warmup:]
        if not tail:
            return 0.0
        return sum(record.bits for record in tail) / len(tail)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"StreamingTrace(epochs={len(self.records)}, "
            f"total_bits={self.total_bits}, total_messages={self.total_messages})"
        )


def build_epoch_record(
    epoch: int,
    answers: dict[str, Any],
    before: LedgerSnapshot,
    after: LedgerSnapshot,
    num_nodes: int,
    energy_model: EnergyModel,
    dirty_nodes: int,
    transmissions: int,
    suppressions: int,
    query_names: list[str] | None = None,
    protocol_prefix: str = "stream",
) -> EpochRecord:
    """Assemble an :class:`EpochRecord` from two ledger snapshots.

    Every transmitted bit is also received once, so the epoch's energy is
    ``bits · (tx + amp + rx)`` plus the idle cost of keeping ``num_nodes``
    radios on for the epoch's rounds.
    """
    bits = after.total_bits - before.total_bits
    rounds = after.rounds - before.rounds
    energy_nj = (
        bits
        * (
            energy_model.transmit_nj_per_bit
            + energy_model.amplifier_nj_per_bit
            + energy_model.receive_nj_per_bit
        )
        + energy_model.idle_nj_per_round * rounds * num_nodes
    )
    per_query_bits: dict[str, int] = {}
    for name in query_names or []:
        label = f"{protocol_prefix}:{name}"
        per_query_bits[name] = after.per_protocol_bits.get(
            label, 0
        ) - before.per_protocol_bits.get(label, 0)
    return EpochRecord(
        epoch=epoch,
        answers=dict(answers),
        bits=bits,
        messages=after.messages - before.messages,
        rounds=rounds,
        energy_nj=energy_nj,
        dirty_nodes=dirty_nodes,
        transmissions=transmissions,
        suppressions=suppressions,
        per_query_bits=per_query_bits,
    )
