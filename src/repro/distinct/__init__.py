"""COUNT DISTINCT — Section 5 of the paper.

* :mod:`repro.distinct.exact` — an exact distinct-counting protocol.  Exact
  answers force nodes to forward (a representation of) the set of values seen
  in their subtree, so some node communicates Ω(n) bits in the worst case —
  the behaviour Theorem 5.1 proves unavoidable.
* :mod:`repro.distinct.approximate` — LogLog-based approximate distinct
  counting with O(log log n) bits per node (the contrast the paper draws).
* :mod:`repro.distinct.disjointness` — the reduction from Two-Party Set
  Disjointness used in the proof of Theorem 5.1, implemented as an adversarial
  instance generator plus the reduction protocol itself, so the lower-bound
  argument can be exercised end to end.
"""

from repro.distinct.approximate import ApproxDistinctCountProtocol
from repro.distinct.disjointness import (
    DisjointnessInstance,
    make_disjoint_instance,
    make_intersecting_instance,
    solve_disjointness_via_count_distinct,
)
from repro.distinct.exact import ExactDistinctCountProtocol

__all__ = [
    "ApproxDistinctCountProtocol",
    "DisjointnessInstance",
    "make_disjoint_instance",
    "make_intersecting_instance",
    "solve_disjointness_via_count_distinct",
    "ExactDistinctCountProtocol",
]
