"""Tests for the workload generators."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.generators import (
    WORKLOAD_GENERATORS,
    adversarial_near_median_values,
    all_equal_values,
    bimodal_values,
    clustered_values,
    correlated_field_values,
    generate_workload,
    sequential_values,
    uniform_values,
    zipf_values,
)


class TestGeneralProperties:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_GENERATORS))
    def test_count_and_bounds(self, name):
        values = generate_workload(name, 200, max_value=10_000, seed=3)
        assert len(values) == 200
        assert all(isinstance(value, int) for value in values)
        assert all(0 <= value <= 10_000 for value in values)

    @pytest.mark.parametrize("name", sorted(WORKLOAD_GENERATORS))
    def test_deterministic_in_seed(self, name):
        a = generate_workload(name, 100, max_value=5_000, seed=7)
        b = generate_workload(name, 100, max_value=5_000, seed=7)
        assert a == b

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_workload("weird", 10)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_values(0)


class TestSpecificShapes:
    def test_uniform_spans_range(self):
        values = uniform_values(2000, max_value=1000, seed=1)
        assert min(values) < 100 and max(values) > 900

    def test_sequential_is_sorted_and_spans(self):
        values = sequential_values(50, max_value=980)
        assert values == sorted(values)
        assert values[0] == 0 and values[-1] == 980

    def test_all_equal(self):
        values = all_equal_values(30, max_value=100)
        assert len(set(values)) == 1

    def test_zipf_is_duplicate_heavy(self):
        values = zipf_values(1000, max_value=10_000, distinct=64, seed=2)
        assert len(set(values)) <= 64
        most_common_count = max(values.count(v) for v in set(values))
        assert most_common_count > 1000 / 64  # head is heavier than uniform

    def test_zipf_exponent_validated(self):
        with pytest.raises(ConfigurationError):
            zipf_values(10, exponent=0)

    def test_clustered_concentration(self):
        values = clustered_values(500, max_value=100_000, clusters=3, seed=3)
        # Values should occupy only a small fraction of the domain.
        assert len(set(value // 1000 for value in values)) < 30

    def test_bimodal_has_two_modes(self):
        values = bimodal_values(1000, max_value=10_000, seed=4)
        low = sum(1 for value in values if value < 2_000)
        high = sum(1 for value in values if value > 8_000)
        assert low + high == len(values)
        assert low > 300 and high > 300

    def test_adversarial_dense_centre(self):
        values = adversarial_near_median_values(1000, max_value=100_000, seed=5)
        centre_band = sum(1 for value in values if abs(value - 50_000) <= 50)
        assert centre_band > 300

    def test_correlated_field_neighbours_are_similar(self):
        side = 20
        values = correlated_field_values(side * side, max_value=10_000, seed=6)
        horizontal_diffs = []
        for row in range(side):
            for col in range(side - 1):
                horizontal_diffs.append(
                    abs(values[row * side + col] - values[row * side + col + 1])
                )
        random_pairs = [abs(values[i] - values[-(i + 1)]) for i in range(side)]
        assert sum(horizontal_diffs) / len(horizontal_diffs) < sum(random_pairs) / len(
            random_pairs
        )


class TestStormUnderChurn:
    def test_combines_storm_and_churn(self):
        from repro.workloads.faults import storm_under_churn_script

        script = storm_under_churn_script(
            list(range(50)),
            epochs=10,
            storm_epoch=4,
            storm_fraction=0.2,
            rejoin_epoch=8,
            churn_rate=0.05,
            seed=3,
        )
        from repro.faults.events import NodeCrash, NodeRejoin

        storm_crashes = [
            event
            for event in script.events_at(4)
            if isinstance(event, NodeCrash)
        ]
        assert len(storm_crashes) >= 0.2 * 49 - 1
        assert any(
            isinstance(event, NodeRejoin) for event in script.events_at(8)
        )
        churn_epochs = [
            epoch
            for epoch in range(1, 10)
            if epoch not in (4, 8) and script.events_at(epoch)
        ]
        assert churn_epochs, "background churn should hit some epochs"
        assert all(
            event.node_id != 0
            for epoch in range(10)
            for event in script.events_at(epoch)
            if hasattr(event, "node_id")
        )

    def test_deterministic_in_seed(self):
        from repro.workloads.faults import storm_under_churn_script

        first = storm_under_churn_script(list(range(30)), epochs=6, storm_epoch=2, seed=9)
        second = storm_under_churn_script(list(range(30)), epochs=6, storm_epoch=2, seed=9)
        for epoch in range(7):
            assert first.events_at(epoch) == second.events_at(epoch)
