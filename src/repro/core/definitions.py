"""Reference definitions from Section 2.3 of the paper.

These are *centralised* (non-distributed) functions.  They exist so the
distributed protocols can be verified: every test compares a protocol's output
against :func:`reference_median` / :func:`reference_order_statistic`, or checks
the (α, β) conditions with :func:`is_approximate_order_statistic`.

Notation (Notation 2.2): for a multiset X and a number y,

    ℓ_X(y) = |{ x ∈ X : x < y }|

Definition 2.3: y is a k-order statistic of X iff ℓ(y) < k and ℓ(y + 1) ≥ k.
The median is the N/2-order statistic.

Definition 2.4: y is a k (α, β)-order statistic iff there exists y' with
ℓ(y') < k(1 + α), ℓ(y' + 1) ≥ k(1 − α), and |y − y'| ≤ β · max(X).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Sequence

from repro.exceptions import ConfigurationError, EmptyNetworkError


def rank(items: Sequence[int], threshold: float) -> int:
    """The rank function ℓ_X(y): number of items strictly smaller than ``threshold``."""
    ordered = sorted(items)
    return bisect_left(ordered, threshold)


def is_order_statistic(items: Sequence[int], k: float, candidate: float) -> bool:
    """Check Definition 2.3: ℓ(y) < k and ℓ(y + 1) ≥ k."""
    if not items:
        raise EmptyNetworkError("order statistics of an empty multiset are undefined")
    return rank(items, candidate) < k and rank(items, candidate + 1) >= k


def is_median(items: Sequence[int], candidate: float) -> bool:
    """Check whether ``candidate`` is a median (the N/2-order statistic)."""
    return is_order_statistic(items, len(items) / 2.0, candidate)


def reference_order_statistic(items: Sequence[int], k: float) -> int:
    """Return the smallest integer k-order statistic of ``items``.

    For ``k`` in ``(0, N]`` a valid order statistic always exists among the
    item values themselves: it is the ``ceil(k)``-th smallest item.
    """
    if not items:
        raise EmptyNetworkError("order statistics of an empty multiset are undefined")
    if k <= 0 or k > len(items):
        raise ConfigurationError(
            f"k must lie in (0, {len(items)}], got {k}"
        )
    ordered = sorted(items)
    index = max(0, math.ceil(k) - 1)
    return ordered[index]


def reference_median(items: Sequence[int]) -> int:
    """The paper's median: the N/2-order statistic (lower median for even N)."""
    return reference_order_statistic(items, len(items) / 2.0)


def approximate_order_statistic_interval(
    items: Sequence[int], k: float, alpha: float
) -> tuple[float, float]:
    """Return the closed interval of values y' satisfying Definition 2.4's rank test.

    A number y' satisfies ℓ(y') < k(1 + α) and ℓ(y' + 1) ≥ k(1 − α).  Because
    ℓ is non-decreasing, the admissible set is an interval ``[low, high]``:

    * ``low`` is the smallest value with at least ``k(1 − α)`` items strictly
      below ``low + 1`` — i.e. the ``ceil(k(1 − α))``-th smallest item (or
      ``-inf`` when ``k(1 − α) ≤ 0``);
    * ``high`` is the largest value with fewer than ``k(1 + α)`` items strictly
      below it — i.e. the ``floor-above`` item at position ``ceil(k(1 + α))``
      (or ``+inf`` when ``k(1 + α) > N``).
    """
    if not items:
        raise EmptyNetworkError("order statistics of an empty multiset are undefined")
    ordered = sorted(items)
    n = len(ordered)
    lower_rank = k * (1.0 - alpha)
    upper_rank = k * (1.0 + alpha)

    if lower_rank <= 0:
        low: float = float("-inf")
    else:
        index = min(n - 1, max(0, math.ceil(lower_rank) - 1))
        low = float(ordered[index])

    if upper_rank > n:
        high: float = float("inf")
    else:
        # The first item whose strict-below count reaches k(1+α) caps the
        # interval: any y' at or below that item still has ℓ(y') < k(1+α).
        index = min(n - 1, max(0, math.ceil(upper_rank) - 1))
        high = float(ordered[index])
    return low, high


def is_approximate_order_statistic(
    items: Sequence[int],
    k: float,
    candidate: float,
    alpha: float,
    beta: float,
) -> bool:
    """Check Definition 2.4 for ``candidate`` as a k (α, β)-order statistic."""
    if not items:
        raise EmptyNetworkError("order statistics of an empty multiset are undefined")
    if alpha < 0 or beta < 0:
        raise ConfigurationError("alpha and beta must be non-negative")
    low, high = approximate_order_statistic_interval(items, k, alpha)
    slack = beta * max(items)
    return candidate >= low - slack and candidate <= high + slack


def is_approximate_median(
    items: Sequence[int], candidate: float, alpha: float, beta: float
) -> bool:
    """Check whether ``candidate`` is an (α, β)-median (Definition 2.4 with k = N/2)."""
    return is_approximate_order_statistic(
        items, len(items) / 2.0, candidate, alpha, beta
    )
