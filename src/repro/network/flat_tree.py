"""Flat-array spanning-tree representation for the batched execution core.

:class:`~repro.network.spanning_tree.SpanningTree` describes the tree with
per-node dictionaries, which is convenient for construction and validation
but expensive to traverse: every protocol walk re-sorts the node set by depth
and chases parent/children pointers through hash lookups.  :class:`FlatTree`
freezes one spanning tree into contiguous arrays indexed by a *canonical
index* — the node's position in the top-down level order — so the batched
protocol implementations can sweep whole levels with array indexing only:

* ``parent[i]`` is the canonical index of node ``i``'s parent (``-1`` at the
  root, which always has canonical index 0),
* the children of node ``i`` are ``child_index[child_start[i]:child_end[i]]``,
  in the same order as ``SpanningTree.children`` (so combine orders match the
  per-edge traversals exactly),
* ``bottom_up`` lists canonical indices in exactly the order of
  :meth:`SpanningTree.nodes_bottom_up`, and the canonical order itself *is*
  :meth:`SpanningTree.nodes_top_down`,
* ``level_spans[d]`` is the half-open span of depth-``d`` nodes in canonical
  order, so level sweeps are contiguous slices,
* ``up_links`` / ``down_links`` are the tree's edge sequences as
  ``(sender, receiver)`` node-id pairs, in exactly the order the per-edge
  convergecast and broadcast sweeps transmit them — computed on first use
  and then shared, so full-tree batched sweeps ship a ready-made link list
  to ``SensorNetwork.send_batch`` while repair-heavy runs that never sweep
  the full tree do not pay for them.

**Representation.**  When numpy is installed (the ``fast`` extra) the
structural arrays — ``parent``, ``depth``, ``child_start``, ``child_end``,
``child_index``, ``bottom_up`` — are contiguous ``int64`` buffers, which is
what lets the vectorized execution path sweep a million-node level as one
array expression.  Without numpy they are plain Python lists with identical
contents (:mod:`repro._util.fastpath` warns once per feature on fallback).
Everything that crosses back into id-keyed code — ``node_ids``,
``level_spans``, ``up_links``/``down_links``, :meth:`parent_id` — is always
built from Python ints, so ledgers, radios and traces never see a numpy
scalar regardless of representation.  The per-edge reference path keeps
consuming those id-level views, which is how the randomized ledger
cross-checks stay bit-for-bit meaningful.

The representation is immutable by convention: it is built once per spanning
tree (``SensorNetwork.flat_tree`` caches it and rebuilds only when the tree
object changes) and shared by every batched traversal.  Because instances
are immutable, the lazy ``up_links``/``down_links`` caches live on the
instance: :meth:`rewire` returns a *new* ``FlatTree`` with both caches
unset, so a rewire can never serve stale link lists to a subsequent sweep
(``tests/test_vectorized.py`` pins this with a rewire-then-sweep regression
test).  Fault repair is the one producer of *slightly different* trees at
high frequency, so it does not rebuild from scratch: :meth:`FlatTree.rewire`
re-spans the arrays around a set of pointer flips, removals and insertions
in one linear pass — no re-validation, no depth sort — and the repaired
network installs the result via :meth:`~repro.network.SensorNetwork.set_tree`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro._util.fastpath import np as _np
from repro.exceptions import ConfigurationError, TopologyError
from repro.network.spanning_tree import SpanningTree

#: Below this size the vectorised re-span costs more than it saves.
_NUMPY_REWIRE_MIN_NODES = 512

#: Structural array slots, in canonical order (used by ``to_lists``).
_ARRAY_SLOTS = (
    "parent",
    "depth",
    "child_start",
    "child_end",
    "child_index",
    "bottom_up",
)


class FlatTree:
    """Array-of-structs view of a rooted spanning tree."""

    __slots__ = (
        "root_id",
        "num_nodes",
        "height",
        "node_ids",
        "parent",
        "depth",
        "child_start",
        "child_end",
        "child_index",
        "bottom_up",
        "level_spans",
        "_index",
        "_ids_array",
        "_up_links",
        "_down_links",
    )

    def __init__(self, tree: SpanningTree) -> None:
        order = tree.nodes_top_down()
        index = {node: position for position, node in enumerate(order)}
        num_nodes = len(order)
        parent = [0] * num_nodes
        depth = [0] * num_nodes
        child_start = [0] * num_nodes
        child_end = [0] * num_nodes
        child_index: list[int] = []
        for position, node in enumerate(order):
            depth[position] = tree.depth[node]
            node_parent = tree.parent[node]
            parent[position] = -1 if node_parent is None else index[node_parent]
            child_start[position] = len(child_index)
            child_index.extend(index[child] for child in tree.children[node])
            child_end[position] = len(child_index)

        height = depth[-1] if num_nodes else 0
        level_spans: list[tuple[int, int]] = []
        start = 0
        for level in range(height + 1):
            end = start
            while end < num_nodes and depth[end] == level:
                end += 1
            level_spans.append((start, end))
            start = end

        bottom_up = [index[node] for node in tree.nodes_bottom_up()]
        self._install(
            root_id=tree.root,
            node_ids=order,
            parent=parent,
            depth=depth,
            child_start=child_start,
            child_end=child_end,
            child_index=child_index,
            bottom_up=bottom_up,
            level_spans=level_spans,
            index=index,
        )

    def _install(
        self,
        root_id: int,
        node_ids: list[int],
        parent,
        depth,
        child_start,
        child_end,
        child_index,
        bottom_up,
        level_spans: list[tuple[int, int]],
        index: dict[int, int] | None,
    ) -> None:
        """Adopt the structural arrays, promoting them to int64 buffers.

        numpy arrays are the primary representation when numpy is available;
        the pure-Python fallback keeps the same contents as lists.  Inputs
        may be lists or arrays — whichever the producing code path built.
        """
        self.root_id = root_id
        self.num_nodes = len(node_ids)
        self.height = len(level_spans) - 1 if level_spans else 0
        self.node_ids = node_ids
        self.level_spans = level_spans
        if _np is not None:
            parent = _np.ascontiguousarray(parent, dtype=_np.int64)
            depth = _np.ascontiguousarray(depth, dtype=_np.int64)
            child_start = _np.ascontiguousarray(child_start, dtype=_np.int64)
            child_end = _np.ascontiguousarray(child_end, dtype=_np.int64)
            child_index = _np.ascontiguousarray(child_index, dtype=_np.int64)
            bottom_up = _np.ascontiguousarray(bottom_up, dtype=_np.int64)
        self.parent = parent
        self.depth = depth
        self.child_start = child_start
        self.child_end = child_end
        self.child_index = child_index
        self.bottom_up = bottom_up
        self._index = index
        self._ids_array = None
        self._up_links = None
        self._down_links = None

    # ------------------------------------------------------------------ #
    # Derived views (lazy, immutable once built)
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> dict[int, int]:
        """Node id → canonical position.  Built lazily: the vectorized path
        never touches it, and at a million nodes the dict alone costs more
        to build than a whole fused epoch."""
        if self._index is None:
            self._index = {
                node: position for position, node in enumerate(self.node_ids)
            }
        return self._index

    @property
    def ids_array(self):
        """``node_ids`` as an int64 buffer (numpy mode only).

        The vectorized kernels use it to translate canonical positions to
        node ids wholesale (``ids_array[positions]``) when charging ledgers.
        """
        if self._ids_array is None:
            if _np is None:
                raise ConfigurationError(
                    "FlatTree.ids_array requires numpy (the 'fast' extra)"
                )
            self._ids_array = _np.asarray(self.node_ids, dtype=_np.int64)
        return self._ids_array

    @property
    def up_links(self) -> list[tuple[int, int]]:
        """Every child→parent edge, in the order the bottom-up sweep sends.

        Tree edges are static, so the link sequence is computed once on
        first use and shared by every traversal instead of rebuilt per
        protocol run.  Always plain ``(int, int)`` tuples — this is the
        id-level view the per-edge reference path and the radio models
        consume.
        """
        if self._up_links is None:
            if _np is not None and self.num_nodes > 1:
                ids = self.ids_array
                positions = self.bottom_up[self.parent[self.bottom_up] >= 0]
                senders = ids[positions].tolist()
                receivers = ids[self.parent[positions]].tolist()
                self._up_links = list(zip(senders, receivers))
            else:
                order = self.node_ids
                parent = self.parent
                self._up_links = [
                    (order[position], order[parent[position]])
                    for position in self.bottom_up
                    if parent[position] >= 0
                ]
        return self._up_links

    @property
    def down_links(self) -> list[tuple[int, int]]:
        """Every parent→child edge, in the order the top-down sweep sends."""
        if self._down_links is None:
            if _np is not None and self.num_nodes > 1:
                ids = self.ids_array
                counts = self.child_end - self.child_start
                senders = ids[_np.repeat(
                    _np.arange(self.num_nodes, dtype=_np.int64), counts
                )].tolist()
                receivers = ids[self.child_index].tolist()
                self._down_links = list(zip(senders, receivers))
            else:
                order = self.node_ids
                child_start = self.child_start
                child_end = self.child_end
                child_index = self.child_index
                self._down_links = [
                    (node, order[child])
                    for position, node in enumerate(order)
                    for child in child_index[child_start[position] : child_end[position]]
                ]
        return self._down_links

    @classmethod
    def from_spanning_tree(cls, tree: SpanningTree) -> "FlatTree":
        """Build the flat representation after validating ``tree``'s structure.

        Runs :meth:`SpanningTree.check_invariants` first — parent pointers,
        child lists and depths must be mutually consistent — so a malformed
        tree (e.g. produced by a buggy incremental repair) raises
        :class:`~repro.exceptions.TopologyError` here instead of silently
        corrupting every batched sweep built on the arrays.
        """
        tree.check_invariants()
        return cls(tree)

    @classmethod
    def from_arrays(cls, parent_ids: Sequence[int], root_id: int = 0) -> "FlatTree":
        """Build a flat tree directly from a parent-id array, no SpanningTree.

        ``parent_ids[i]`` is the parent *id* of node ``i`` (ids are the dense
        range ``0..n-1``), ``-1`` exactly at ``root_id``.  This is the
        million-node constructor: it never materialises per-node dicts, so a
        1M-node balanced tree flattens in milliseconds instead of the seconds
        a ``SpanningTree`` round-trip costs.  Depths are derived by pointer
        doubling-style waves, which also catches cycles (no convergence
        within ``n`` levels raises :class:`~repro.exceptions.TopologyError`).

        Requires numpy; use :meth:`from_spanning_tree` on the pure-Python
        fallback.
        """
        from repro._util.fastpath import require_numpy

        np = require_numpy("FlatTree.from_arrays")
        parents = np.ascontiguousarray(parent_ids, dtype=np.int64)
        num_nodes = int(parents.shape[0])
        if num_nodes == 0:
            raise TopologyError("cannot build a FlatTree over zero nodes")
        if not 0 <= root_id < num_nodes or parents[root_id] != -1:
            raise TopologyError(
                f"root {root_id} must be in range and have parent -1"
            )
        if int((parents == -1).sum()) != 1:
            raise TopologyError("exactly one node (the root) may have parent -1")
        if ((parents < -1) | (parents >= num_nodes)).any():
            raise TopologyError("parent ids out of range")

        # Depth by pointer doubling: ``hop[i]`` is an ancestor of ``i`` and
        # ``depth_of_id[i]`` the hop count to it; squaring the hop pointer
        # each round grounds every node at the root in O(log height) whole-
        # array passes.  A cycle never grounds and is caught by the bound.
        ids = np.arange(num_nodes, dtype=np.int64)
        depth_of_id = np.where(ids == root_id, 0, 1).astype(np.int64)
        hop = parents.copy()
        hop[root_id] = root_id
        for _ in range(num_nodes.bit_length() + 2):
            if bool((hop == root_id).all()):
                break
            depth_of_id = depth_of_id + depth_of_id[hop]
            hop = hop[hop]
        else:
            raise TopologyError("parent pointers do not reach the root (cycle?)")

        order = np.lexsort((np.arange(num_nodes, dtype=np.int64), depth_of_id))
        depth = depth_of_id[order]
        pos_of_id = np.empty(num_nodes, dtype=np.int64)
        pos_of_id[order] = np.arange(num_nodes, dtype=np.int64)
        parent = np.where(
            parents[order] >= 0, pos_of_id[parents[order]], -1
        ).astype(np.int64)

        height = int(depth[-1])
        bounds = np.searchsorted(depth, np.arange(height + 2, dtype=np.int64))
        level_spans = [
            (int(bounds[level]), int(bounds[level + 1]))
            for level in range(height + 1)
        ]
        child_positions = np.argsort(parent[1:], kind="stable") + 1
        child_counts = np.bincount(parent[1:], minlength=num_nodes)
        child_end = np.cumsum(child_counts)
        child_start = child_end - child_counts
        bottom_up = np.concatenate(
            [
                np.arange(start, end, dtype=np.int64)
                for start, end in reversed(level_spans)
            ]
        )

        flat = object.__new__(cls)
        flat._install(
            root_id=root_id,
            node_ids=order.tolist(),
            parent=parent,
            depth=depth,
            child_start=child_start,
            child_end=child_end,
            child_index=child_positions,
            bottom_up=bottom_up,
            level_spans=level_spans,
            index=None,
        )
        return flat

    # ------------------------------------------------------------------ #
    # Incremental re-span
    # ------------------------------------------------------------------ #
    def rewire(
        self,
        removed: Iterable[int] = (),
        reparented: Mapping[int, int] | None = None,
        depths: Mapping[int, int] | None = None,
    ) -> "FlatTree":
        """Build the flat view of a patched tree without a full rebuild.

        ``removed`` lists node ids dropped from the tree (crashed or
        detached), ``reparented`` maps every node whose parent pointer
        changed — including nodes *entering* the tree — to its new parent
        id, and ``depths`` gives the new depth of every node whose depth may
        have changed (every reparented node, plus fragment members that kept
        their parent but moved with their unit).  Nodes in neither mapping
        keep their position relative to their level.

        The canonical order (by level, ascending id within a level) is
        reassembled by merging each level's surviving run with its sorted
        insertions, so the result is *identical* to
        ``FlatTree.from_spanning_tree`` on the patched tree — one linear
        pass, no depth sort, no invariant re-validation.  The root can be
        neither removed nor reparented.  The result is a *new* ``FlatTree``
        whose ``up_links``/``down_links`` caches start unset.
        """
        reparented = {} if reparented is None else reparented
        depths = {} if depths is None else depths
        for node in reparented:
            if node not in depths:
                raise ConfigurationError(
                    f"reparented node {node} has no entry in depths; every "
                    "parent change must supply the node's new depth"
                )
        if self.root_id in reparented or self.root_id in depths:
            raise ConfigurationError("the root cannot be reparented or moved")
        displaced = set(removed)
        if displaced and not displaced.isdisjoint(depths):
            raise ConfigurationError(
                "removed and depths overlap; a node cannot both leave the "
                "tree and take a new position in it"
            )
        displaced.update(depths)

        insertions: dict[int, list[int]] = {}
        for node, level in depths.items():
            insertions.setdefault(level, []).append(node)
        for members in insertions.values():
            members.sort()

        if _np is not None and self.num_nodes >= _NUMPY_REWIRE_MIN_NODES:
            return self._rewire_numpy(displaced, reparented, insertions)
        return self._rewire_python(displaced, reparented, insertions)

    def _rewire_python(
        self,
        displaced: set[int],
        reparented: Mapping[int, int],
        insertions: dict[int, list[int]],
    ) -> "FlatTree":
        old_order = self.node_ids
        old_spans = self.level_spans
        old_index = self.index
        old_parent = self.parent
        max_level = max(
            len(old_spans) - 1, max(insertions) if insertions else 0
        )
        # Walk the old canonical order once, splicing each level's sorted
        # arrivals into its surviving run.  ``old_to_new`` / ``new_to_old``
        # record the position translation so survivors' parent pointers can
        # later be translated with pure list indexing — a survivor's parent
        # is itself a survivor, since a moved parent moves its whole subtree
        # (their depths all change) and a removed parent removes or
        # reparents its children.
        order: list[int] = []
        new_to_old: list[int] = []
        old_to_new = [-1] * self.num_nodes
        level_spans: list[tuple[int, int]] = []
        for level in range(max_level + 1):
            begin = len(order)
            start, end = old_spans[level] if level < len(old_spans) else (0, 0)
            arrivals = insertions.get(level)
            if arrivals is None:
                for position in range(start, end):
                    node = old_order[position]
                    if node not in displaced:
                        old_to_new[position] = len(order)
                        new_to_old.append(position)
                        order.append(node)
            else:
                slot = 0
                pending = len(arrivals)
                for position in range(start, end):
                    node = old_order[position]
                    if node in displaced:
                        continue
                    while slot < pending and arrivals[slot] < node:
                        new_to_old.append(-1)
                        order.append(arrivals[slot])
                        slot += 1
                    old_to_new[position] = len(order)
                    new_to_old.append(position)
                    order.append(node)
                for node in arrivals[slot:]:
                    new_to_old.append(-1)
                    order.append(node)
            level_spans.append((begin, len(order)))
        # A valid tree has contiguous depths, so only trailing levels can
        # empty out (a repair that truncated the deepest fragments).
        while level_spans and level_spans[-1][0] == level_spans[-1][1]:
            level_spans.pop()

        num_nodes = len(order)
        index = {node: position for position, node in enumerate(order)}
        parent = [-1] * num_nodes
        depth = [0] * num_nodes
        for level, (start, end) in enumerate(level_spans):
            if level:
                depth[start:end] = [level] * (end - start)
        # Children bucketed by parent in canonical-position order: within a
        # level positions ascend by id, so each bucket comes out in exactly
        # the ascending-id order SpanningTree keeps its child lists in.
        # Survivors translate their parent through the position maps; only
        # arrivals (the damage) need id-level resolution.
        buckets: list[list[int]] = [[] for _ in range(num_nodes)]
        get_reparented = reparented.get
        for position in range(1, num_nodes):
            old_position = new_to_old[position]
            if old_position >= 0:
                parent_position = old_to_new[old_parent[old_position]]
            else:
                node = order[position]
                parent_id = get_reparented(node)
                if parent_id is None:
                    parent_id = old_order[old_parent[old_index[node]]]
                parent_position = index[parent_id]
            parent[position] = parent_position
            buckets[parent_position].append(position)
        child_start = [0] * num_nodes
        child_end = [0] * num_nodes
        child_index: list[int] = []
        for position in range(num_nodes):
            child_start[position] = len(child_index)
            child_index.extend(buckets[position])
            child_end[position] = len(child_index)

        height = len(level_spans) - 1
        bottom_up: list[int] = []
        for level in range(height, -1, -1):
            start, end = level_spans[level]
            bottom_up.extend(range(start, end))

        rewired = object.__new__(FlatTree)
        rewired._install(
            root_id=self.root_id,
            node_ids=order,
            parent=parent,
            depth=depth,
            child_start=child_start,
            child_end=child_end,
            child_index=child_index,
            bottom_up=bottom_up,
            level_spans=level_spans,
            index=index,
        )
        return rewired

    def _rewire_numpy(
        self,
        displaced: set[int],
        reparented: Mapping[int, int],
        insertions: dict[int, list[int]],
    ) -> "FlatTree":
        """Vectorised re-span; produces exactly the arrays of the pure path."""
        np = _np
        old_order = self.node_ids
        old_parent = self.parent
        old_index = self.index
        old_spans = self.level_spans
        old_order_np = self.ids_array
        old_parent_np = np.asarray(old_parent, dtype=np.int64)

        keep = np.ones(self.num_nodes, dtype=bool)
        displaced_positions = [
            old_index[node] for node in displaced if node in old_index
        ]
        if displaced_positions:
            keep[np.asarray(displaced_positions, dtype=np.int64)] = False

        max_level = max(
            len(old_spans) - 1, max(insertions) if insertions else 0
        )
        order_parts: list = []
        origin_parts: list = []
        level_spans: list[tuple[int, int]] = []
        begin = 0
        for level in range(max_level + 1):
            start, end = old_spans[level] if level < len(old_spans) else (0, 0)
            surviving = np.nonzero(keep[start:end])[0]
            if start:
                surviving = surviving + start
            level_nodes = old_order_np[surviving]
            level_origin = surviving
            arrivals = insertions.get(level)
            if arrivals:
                arrival_nodes = np.asarray(arrivals, dtype=np.int64)
                level_nodes = np.concatenate([level_nodes, arrival_nodes])
                level_origin = np.concatenate(
                    [level_origin, np.full(len(arrivals), -1, dtype=np.int64)]
                )
                sorter = np.argsort(level_nodes)  # ids are unique per level
                level_nodes = level_nodes[sorter]
                level_origin = level_origin[sorter]
            size = int(level_nodes.shape[0])
            level_spans.append((begin, begin + size))
            begin += size
            order_parts.append(level_nodes)
            origin_parts.append(level_origin)
        while level_spans and level_spans[-1][0] == level_spans[-1][1]:
            level_spans.pop()
            order_parts.pop()
            origin_parts.pop()

        order_np = np.concatenate(order_parts)
        new_to_old = np.concatenate(origin_parts)
        num_nodes = int(order_np.shape[0])
        old_to_new = np.full(self.num_nodes, -1, dtype=np.int64)
        survivors = new_to_old >= 0
        old_to_new[new_to_old[survivors]] = np.nonzero(survivors)[0]

        # Survivors translate their parent pointer wholesale (a survivor's
        # parent is itself a survivor); only arrivals resolve through ids.
        parent_np = np.full(num_nodes, -1, dtype=np.int64)
        survivor_mask = survivors.copy()
        survivor_mask[0] = False  # the root keeps parent -1
        parent_np[survivor_mask] = old_to_new[
            old_parent_np[new_to_old[survivor_mask]]
        ]
        order_list = order_np.tolist()
        index = {node: position for position, node in enumerate(order_list)}
        get_reparented = reparented.get
        for position in np.nonzero(~survivors)[0].tolist():
            node = order_list[position]
            parent_id = get_reparented(node)
            if parent_id is None:
                parent_id = old_order[old_parent[old_index[node]]]
            parent_np[position] = index[parent_id]

        lengths = [end - start for start, end in level_spans]
        depth_np = np.repeat(
            np.arange(len(level_spans), dtype=np.int64), lengths
        )
        # Children grouped by parent, position-ascending within each group —
        # a stable argsort of the parent column is exactly the bucket pass.
        child_positions = np.argsort(parent_np[1:], kind="stable") + 1
        child_counts = np.bincount(parent_np[1:], minlength=num_nodes)
        child_end_np = np.cumsum(child_counts)
        child_start_np = child_end_np - child_counts
        bottom_up_np = np.concatenate(
            [
                np.arange(start, end, dtype=np.int64)
                for start, end in reversed(level_spans)
            ]
        )

        rewired = object.__new__(FlatTree)
        rewired._install(
            root_id=self.root_id,
            node_ids=order_list,
            parent=parent_np,
            depth=depth_np,
            child_start=child_start_np,
            child_end=child_end_np,
            child_index=child_positions,
            bottom_up=bottom_up_np,
            level_spans=level_spans,
            index=index,
        )
        return rewired

    # ------------------------------------------------------------------ #
    # Convenience accessors (traversals index the arrays directly)
    # ------------------------------------------------------------------ #
    def children_of(self, position: int) -> list[int]:
        """Canonical indices of the children of the node at ``position``.

        Always a plain list of Python ints (hot paths slice ``child_index``
        directly); iteration order matches ``SpanningTree.children``.
        """
        span = self.child_index[self.child_start[position] : self.child_end[position]]
        return span.tolist() if hasattr(span, "tolist") else span

    def parent_id(self, node_id: int) -> int | None:
        """The parent *node id* of ``node_id`` (``None`` at the root)."""
        parent_position = self.parent[self.index[node_id]]
        return None if parent_position < 0 else self.node_ids[parent_position]

    def nodes_bottom_up(self) -> Iterator[int]:
        """Node ids in the same order as ``SpanningTree.nodes_bottom_up``."""
        node_ids = self.node_ids
        return (node_ids[position] for position in self.bottom_up)

    def nodes_top_down(self) -> list[int]:
        """Node ids in the same order as ``SpanningTree.nodes_top_down``."""
        return list(self.node_ids)

    def to_lists(self) -> dict[str, list]:
        """Every structural array as a plain Python list, keyed by slot name.

        Representation-independent view for equality assertions: two flat
        trees describe the same tree iff their ``to_lists()`` match, whether
        each side is numpy-backed or pure Python.
        """
        arrays: dict[str, list] = {
            "node_ids": list(self.node_ids),
            "level_spans": list(self.level_spans),
        }
        for slot in _ARRAY_SLOTS:
            value = getattr(self, slot)
            arrays[slot] = value.tolist() if hasattr(value, "tolist") else list(value)
        return arrays

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"FlatTree(nodes={self.num_nodes}, height={self.height}, "
            f"root={self.root_id})"
        )
