"""E4 — Section 3.4: exact k-order statistics at the same O((log N)^2) cost.

Reproduces the observation that the Fig. 1 binary search answers any rank,
not just the median, with no change in complexity: the per-node cost is flat
across the whole quantile range and every answer is exact.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_order_statistic_sweep
from repro.analysis.report import format_table
from repro.core.definitions import reference_order_statistic
from repro.workloads.generators import generate_workload

QUANTILES = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)
NUM_ITEMS = 400


def test_order_statistics_across_quantiles(benchmark):
    records = run_once(
        benchmark, run_order_statistic_sweep, NUM_ITEMS, quantiles=QUANTILES
    )
    items = generate_workload("uniform", NUM_ITEMS, max_value=NUM_ITEMS * NUM_ITEMS, seed=0)

    rows = []
    for record in records:
        quantile = record.extra["quantile"]
        expected = reference_order_statistic(items, quantile * NUM_ITEMS)
        rows.append([
            quantile,
            int(record.answer),
            expected,
            int(record.answer) == expected,
            record.extra["probes"],
            record.max_node_bits,
        ])
    print()
    print(format_table(
        ["quantile", "answer", "reference", "exact?", "probes", "max bits/node"],
        rows,
        title="E4  Section 3.4 — exact order statistics (N = 400)",
    ))

    assert all(row[3] for row in rows)
    costs = [record.max_node_bits for record in records]
    benchmark.extra_info["cost_range_across_quantiles"] = (min(costs), max(costs))
    # The cost does not depend on which rank is queried.
    assert max(costs) <= 1.5 * min(costs)
