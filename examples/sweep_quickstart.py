"""Sweep quickstart: declare a study as a spec, run it, hit the cache.

Run with::

    python examples/sweep_quickstart.py

Every multi-scenario study in this repository runs through the declarative
sweep harness (``repro.sweeps``, docs/SWEEPS.md).  This example declares a
tiny streaming study — the E10 incremental-vs-recompute comparison swept
over workload × seed — expands it into a run matrix, executes the cells
through the cached runner, and prints the markdown report.  It then

1. re-runs the identical spec and shows that **zero** cells execute (every
   result is recalled from the content-addressed cache), and
2. grows the workload axis by one value and shows that exactly the new
   cells execute — editing a spec only ever pays for what changed.

The builtin specs (``python scripts/sweep.py list``) are the same idea at
study scale.
"""

from __future__ import annotations

import tempfile

from repro.sweeps import SweepSpec, render_markdown, run_sweep

BASE = {"n": 36, "epochs": 6, "epsilon": 0.1, "topology": "grid"}


def spec_with(workloads: tuple) -> SweepSpec:
    return SweepSpec(
        name="quickstart",
        experiment="streaming",
        axes={"workload": workloads, "seed": (0, 1)},
        base=BASE,
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="sweep-quickstart-") as cache:
        spec = spec_with(("drift", "burst"))
        print(f"spec {spec.name!r}: axes workload x seed -> "
              f"{len(spec.expand())} cells\n")

        result = run_sweep(spec, cache_dir=cache)
        print(render_markdown(result.payload()))

        rerun = run_sweep(spec, cache_dir=cache)
        print(
            f"re-run of the unchanged spec: {rerun.executed} executed, "
            f"{rerun.cached} cached (a pure cache recall)"
        )

        grown = run_sweep(spec_with(("drift", "burst", "churn")), cache_dir=cache)
        print(
            f"after adding the 'churn' workload: {grown.executed} new cell(s) "
            f"executed, {grown.cached} recalled unchanged"
        )


if __name__ == "__main__":
    main()
