"""The flight recorder: a bounded ring of structured causal events.

Spans answer *how much* each phase cost; the flight recorder answers *why*.
Every noteworthy state transition of the resilient pipeline — a fault
injection, a heartbeat miss, an adoption handshake, a rebuild fallback, an
election, a cache eviction, a delta burst, a suppression flip — is recorded
as one :class:`FlightEvent` carrying ``(epoch, node, parent_span_id,
cause_event_id)``, so a cost spike at epoch 37 can be walked backwards to
the regional outage at epoch 35 that caused it.

The recorder is a **ring buffer**: at most ``capacity`` events are retained
and older ones are silently dropped (counted in :attr:`FlightRecorder.dropped`),
so a million-node storm cannot turn the observability layer into the memory
hog.  Events are emitted through
:meth:`repro.telemetry.TelemetryRecorder.event` behind the existing
``telemetry.enabled`` gate — with no flight recorder attached the hook is a
single ``None`` check, and with telemetry disabled it is never reached.

**Causality.**  An emitter may pass an explicit ``cause`` event id; when it
does not, the recorder fills in :attr:`FlightRecorder.context_cause` — the
most recent *context-setting* event (:data:`CONTEXT_KINDS`: injections,
detections, elections, rebuild fallbacks).  The fault engine resets the
context at each epoch's start, so the default chains read exactly as the
pipeline executes: injection → detection → election / repair → eviction /
delta burst.  :mod:`repro.telemetry.diagnose` walks these chains backwards
to print "why" reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import ConfigurationError
from repro.telemetry.records import json_safe

#: The event taxonomy (``FlightEvent.kind`` values) the pipeline emits.
#:
#: ``fault.injected``    a fault event hit the network (attribute ``fault``
#:                       names the event class; an outage's expanded crashes
#:                       chain to the outage via ``cause_event_id``);
#: ``detect.miss``       a heartbeat sweep (or repair probe) noticed a
#:                       crashed node's silence (attribute ``latency``);
#: ``repair.adoption``   an orphan unit re-attached through the adoption
#:                       handshake (``node`` is the re-rooted contact);
#: ``repair.rebuild``    the repair fell back to a full BFS rebuild;
#: ``election``          a root fail-over completed (old/new root attrs);
#: ``cache.evict``       the streaming layer evicted cached summaries
#:                       (per pair on the reference path, aggregated with a
#:                       ``count`` attribute on the vectorized paths);
#: ``delta.burst``       an epoch's query traffic jumped far above its
#:                       trailing baseline;
#: ``suppression.flip``  the ε-suppression rule changed state between
#:                       epochs (everything-quiet ↔ something-transmitting).
EVENT_KINDS = (
    "fault.injected",
    "detect.miss",
    "repair.adoption",
    "repair.rebuild",
    "election",
    "cache.evict",
    "delta.burst",
    "suppression.flip",
)

#: Kinds that become the default ``cause`` of subsequent events (see the
#: module docstring): what the epoch *learned or decided*, not every
#: individual consequence.
CONTEXT_KINDS = frozenset(
    {"fault.injected", "detect.miss", "election", "repair.rebuild"}
)


@dataclass
class FlightEvent:
    """One recorded causal event."""

    event_id: int
    kind: str
    #: The epoch the event belongs to (``None`` outside any epoch context).
    epoch: int | None
    #: The node the event is about (``None`` for aggregate events).
    node: int | None
    #: The innermost open span when the event fired (links events into the
    #: span tree of the same trace file).
    parent_span_id: int | None
    #: The event that caused this one (``None`` for root causes).
    cause_event_id: int | None
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe dict — one ``"type": "event"`` JSONL line."""
        return {
            "type": "event",
            "event_id": self.event_id,
            "kind": self.kind,
            "epoch": self.epoch,
            "node": self.node,
            "parent_span_id": self.parent_span_id,
            "cause_event_id": self.cause_event_id,
            "attributes": {
                key: json_safe(value) for key, value in self.attributes.items()
            },
        }


class FlightRecorder:
    """A bounded ring buffer of :class:`FlightEvent` records.

    ``capacity`` bounds retained events (oldest dropped first); event ids
    keep counting monotonically across drops, so ``cause_event_id`` links
    stay unambiguous even when their target has been evicted from the ring.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._ring: deque[FlightEvent] = deque(maxlen=capacity)
        self._next_id = 1
        #: Events evicted by the ring bound (for honesty in reports).
        self.dropped = 0
        #: Default ``cause`` for events recorded without one; maintained by
        #: :meth:`record` (context kinds) and reset per epoch by the fault
        #: engine via :meth:`new_epoch`.
        self.context_cause: int | None = None

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events(self) -> list[FlightEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def new_epoch(self) -> None:
        """Reset the causal context (each epoch's chains start fresh)."""
        self.context_cause = None

    def record(
        self,
        kind: str,
        *,
        epoch: int | None = None,
        node: int | None = None,
        parent_span_id: int | None = None,
        cause: int | None = None,
        **attributes: Any,
    ) -> int:
        """Append one event; returns its id.

        ``cause=None`` inherits :attr:`context_cause` — except for
        ``fault.injected`` events, which are causal *roots* unless the
        emitter chains them explicitly (a regional outage's expanded
        crashes do).
        """
        if cause is None and kind != "fault.injected":
            cause = self.context_cause
        event = FlightEvent(
            event_id=self._next_id,
            kind=kind,
            epoch=epoch,
            node=node,
            parent_span_id=parent_span_id,
            cause_event_id=cause,
            attributes=attributes,
        )
        self._next_id += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        if kind in CONTEXT_KINDS:
            self.context_cause = event.event_id
        return event.event_id

    def events_of(self, kind: str) -> list[FlightEvent]:
        """Retained events of one kind, oldest first."""
        return [event for event in self._ring if event.kind == kind]

    def iter_dicts(self) -> Iterator[dict]:
        """JSON-safe dicts for every retained event (oldest first)."""
        for event in self._ring:
            yield event.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"FlightRecorder(events={len(self._ring)}, "
            f"capacity={self.capacity}, dropped={self.dropped})"
        )
