"""Push-sum gossip aggregation (Kempe, Dobra, Gehrke).

The paper cites gossip-based aggregation [6] as the best previously known
randomized approach to order statistics: ``O((log N)³)`` bits per node under
ideal mixing.  This module provides the push-sum substrate; the gossip median
baseline (:mod:`repro.baselines.gossip_median`) runs a binary search whose
rank probes are answered by push-sum instead of a tree convergecast.

Push-sum maintains a (sum, weight) pair per node.  In every round each node
splits its pair in half, keeps one half and sends the other to a uniformly
random neighbour.  The ratio sum/weight at every node converges to the global
average of the initial sums; seeding weights as 1 everywhere yields the
average, seeding weight 1 only at the root yields the global sum.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro._util.randomness import make_rng
from repro._util.validation import require_positive
from repro.network.node import SensorNode
from repro.network.simulator import SensorNetwork
from repro.protocols.base import MeteredRun, ProtocolResult

# Wire size of one push-sum message: two fixed-point numbers.
_PAIR_BITS = 2 * 32


@dataclass(frozen=True)
class PushSumOutcome:
    """Result of a push-sum run: the root's estimate and convergence data."""

    estimate: float
    rounds: int
    max_relative_spread: float


class PushSumGossip:
    """Average (or sum) computation by push-sum gossip."""

    def __init__(
        self,
        rounds: int | None = None,
        seed: int | random.Random | None = 0,
        target: str = "average",
    ) -> None:
        if target not in ("average", "sum"):
            raise ValueError(f"target must be 'average' or 'sum', got {target!r}")
        if rounds is not None:
            require_positive(rounds, "rounds")
        self.rounds = rounds
        self.target = target
        self._rng = make_rng(seed)

    def _default_rounds(self, network: SensorNetwork) -> int:
        # O(log² n) rounds suffice on well-mixing graphs; use a generous
        # multiple so line/grid topologies also converge in tests.
        n = max(2, network.num_nodes)
        return max(10, int(4 * math.log2(n) ** 2))

    def run(
        self,
        network: SensorNetwork,
        local_value: Callable[[SensorNode], float],
    ) -> ProtocolResult:
        """Run push-sum; ``value`` of the result is a :class:`PushSumOutcome`."""
        rounds = self.rounds if self.rounds is not None else self._default_rounds(network)
        with MeteredRun(network) as metered:
            sums: dict[int, float] = {}
            weights: dict[int, float] = {}
            for node in network.nodes():
                sums[node.node_id] = float(local_value(node))
                if self.target == "average":
                    weights[node.node_id] = 1.0
                else:
                    weights[node.node_id] = 1.0 if node.node_id == network.root_id else 0.0
            neighbours = {
                node_id: sorted(network.graph.neighbors(node_id))
                for node_id in network.node_ids()
            }
            for _ in range(rounds):
                incoming_sum = {node_id: 0.0 for node_id in sums}
                incoming_weight = {node_id: 0.0 for node_id in sums}
                for node_id in network.node_ids():
                    if not neighbours[node_id]:
                        incoming_sum[node_id] += sums[node_id]
                        incoming_weight[node_id] += weights[node_id]
                        continue
                    half_sum = sums[node_id] / 2.0
                    half_weight = weights[node_id] / 2.0
                    peer = self._rng.choice(neighbours[node_id])
                    network.send(
                        node_id, peer, (half_sum, half_weight), _PAIR_BITS,
                        protocol="PUSH_SUM",
                    )
                    incoming_sum[node_id] += half_sum
                    incoming_weight[node_id] += half_weight
                    incoming_sum[peer] += half_sum
                    incoming_weight[peer] += half_weight
                sums = incoming_sum
                weights = incoming_weight
                network.ledger.advance_round()
            estimates = {
                node_id: (sums[node_id] / weights[node_id]) if weights[node_id] > 0 else 0.0
                for node_id in sums
            }
            root_estimate = estimates[network.root_id]
            spread = 0.0
            positive = [value for value in estimates.values() if value != 0.0]
            if positive and root_estimate != 0.0:
                spread = (max(positive) - min(positive)) / abs(root_estimate)
            outcome = PushSumOutcome(
                estimate=root_estimate,
                rounds=rounds,
                max_relative_spread=spread,
            )
        return metered.result(outcome)
