"""Quickstart: build a small sensor network and ask it for aggregates.

Run with::

    python examples/quickstart.py

Demonstrates the three median protocols the paper contributes (Figs. 1, 2, 4)
next to the primitive TAG-style aggregates, and prints the per-node
communication cost of each query — the measure the paper is about.
"""

from __future__ import annotations

from repro import (
    ApproximateMedianProtocol,
    AverageProtocol,
    CountProtocol,
    DeterministicMedianProtocol,
    MaxProtocol,
    MinProtocol,
    PolyloglogMedianProtocol,
    SensorNetwork,
    reference_median,
)
from repro.analysis.report import format_table
from repro.workloads.generators import uniform_values


def main() -> None:
    # 225 sensors on a 15x15 grid, each holding one reading in [0, 100_000].
    readings = uniform_values(225, max_value=100_000, seed=42)
    network = SensorNetwork.from_items(readings, topology="grid")

    rows = []

    def run(name, protocol, answer_of=lambda outcome: outcome):
        network.reset_ledger()
        result = protocol.run(network)
        rows.append([name, answer_of(result.value), result.max_node_bits, result.rounds])
        return result

    run("MIN", MinProtocol())
    run("MAX", MaxProtocol())
    run("COUNT", CountProtocol())
    run("AVERAGE", AverageProtocol(), lambda outcome: round(outcome, 1))
    run("MEDIAN (Fig. 1, exact)", DeterministicMedianProtocol(), lambda o: o.median)
    run(
        "APX_MEDIAN (Fig. 2)",
        ApproximateMedianProtocol(epsilon=0.2, num_registers=256, seed=7),
        lambda o: o.value,
    )
    run(
        "APX_MEDIAN2 (Fig. 4)",
        PolyloglogMedianProtocol(beta=1 / 16, epsilon=0.25, num_registers=256, seed=7),
        lambda o: o.value,
    )

    print(format_table(
        ["query", "answer", "max bits per node", "rounds"],
        rows,
        title="Aggregate queries over a 15x15 sensor grid",
    ))
    print()
    print(f"Ground-truth median (centralised): {reference_median(readings)}")


if __name__ == "__main__":
    main()
