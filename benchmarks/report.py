"""Perf-trajectory gate: verify BENCH_*.json metrics against their floors.

Every benchmark writes a ``BENCH_<name>.json`` via
:func:`benchmarks.conftest.emit_bench_json` — problem size, wall-clock,
simulated bits, and named metrics each carrying the floor the benchmark
itself asserts.  CI uploads those files as artifacts (one per ``bench``
matrix leg) and runs this script over the collected set: it prints the
trajectory table and exits non-zero if any metric regressed below its
floor, so a savings ratio can never quietly decay.

Usage::

    python benchmarks/report.py [directory ...]

Directories are searched recursively for ``BENCH_*.json``; the default is
the current directory.  Each report is schema-checked first (headline
fields, metric shape, and the optional telemetry ``phases`` breakdown);
a malformed report fails the run before any floor is compared.
"""

from __future__ import annotations

import glob
import json
import os
import sys


def collect(paths: list[str]) -> list[dict]:
    """Load every BENCH_*.json under the given directories (recursively)."""
    reports = []
    for root in paths:
        pattern = os.path.join(root, "**", "BENCH_*.json")
        for path in sorted(glob.glob(pattern, recursive=True)):
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            payload["_path"] = path
            reports.append(payload)
    return reports


def validate_schema(report: dict) -> list[str]:
    """Schema-check one bench report; returns the list of problems.

    Required: ``name`` (str), ``n`` (int), ``wall_clock_s`` / ``bits``
    (numbers), ``metrics`` (dict of ``{"value": num, "floor": num|None}``).
    Optional: ``phases`` — the telemetry breakdown, one
    ``{"wall_s": num, "bits": num, ...}`` entry per pipeline phase —
    and ``anomaly``, the diagnosis verdict
    (``repro.telemetry.verdict``: ``anomalous_epochs`` list plus numeric
    ``attributed`` / ``unattributed`` counts).
    """
    problems = []
    where = report.get("_path", "?")
    if not isinstance(report.get("name"), str):
        problems.append(f"{where}: missing/invalid 'name'")
    if not isinstance(report.get("n"), int):
        problems.append(f"{where}: missing/invalid 'n'")
    for field in ("wall_clock_s", "bits"):
        if not isinstance(report.get(field), (int, float)):
            problems.append(f"{where}: missing/invalid '{field}'")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        problems.append(f"{where}: missing/invalid 'metrics'")
        metrics = {}
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or not isinstance(
            entry.get("value"), (int, float)
        ):
            problems.append(f"{where}: metric {name!r} lacks a numeric 'value'")
        elif entry.get("floor") is not None and not isinstance(
            entry["floor"], (int, float)
        ):
            problems.append(f"{where}: metric {name!r} has a non-numeric 'floor'")
    phases = report.get("phases")
    if phases is not None:
        if not isinstance(phases, dict) or not phases:
            problems.append(f"{where}: 'phases' must be a non-empty object")
        else:
            for phase, entry in phases.items():
                if not isinstance(entry, dict):
                    problems.append(f"{where}: phase {phase!r} is not an object")
                    continue
                for field in ("wall_s", "bits"):
                    if not isinstance(entry.get(field), (int, float)):
                        problems.append(
                            f"{where}: phase {phase!r} lacks a numeric {field!r}"
                        )
    anomaly = report.get("anomaly")
    if anomaly is not None:
        if not isinstance(anomaly, dict):
            problems.append(f"{where}: 'anomaly' must be an object")
        else:
            epochs = anomaly.get("anomalous_epochs")
            if not isinstance(epochs, list) or not all(
                isinstance(epoch, int) for epoch in epochs
            ):
                problems.append(
                    f"{where}: anomaly 'anomalous_epochs' must be a list of ints"
                )
            for field in ("attributed", "unattributed"):
                if not isinstance(anomaly.get(field), int):
                    problems.append(
                        f"{where}: anomaly lacks a numeric {field!r}"
                    )
    return problems


def render_phases(phases: dict) -> str:
    """One-line phase breakdown, heaviest phase first."""
    ordered = sorted(
        phases.items(), key=lambda item: -item[1].get("bits", 0)
    )
    return ", ".join(
        f"{name}={entry.get('bits', 0)}b/{entry.get('wall_s', 0.0)}s"
        for name, entry in ordered
    )


def main(argv: list[str]) -> int:
    roots = argv or ["."]
    reports = collect(roots)
    if not reports:
        print(f"no BENCH_*.json found under {roots}", file=sys.stderr)
        return 2

    schema_problems = []
    for report in reports:
        schema_problems.extend(validate_schema(report))
    if schema_problems:
        print("malformed bench report(s):", file=sys.stderr)
        for problem in schema_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 2

    failures = []
    print(f"{'bench':<12} {'n':>8} {'wall (s)':>9} {'bits':>14}  metrics")
    for report in reports:
        metrics = report.get("metrics", {})
        rendered = []
        for name, entry in sorted(metrics.items()):
            value = entry.get("value")
            floor = entry.get("floor")
            ok = floor is None or value is None or value >= floor
            status = "ok" if ok else "REGRESSED"
            rendered.append(f"{name}={value} (floor {floor}, {status})")
            if not ok:
                failures.append(
                    f"{report['name']}: {name} = {value} fell below "
                    f"its floor of {floor} ({report['_path']})"
                )
        print(
            f"{report.get('name', '?'):<12} {report.get('n', 0):>8} "
            f"{report.get('wall_clock_s', 0.0):>9} {report.get('bits', 0):>14}  "
            + ("; ".join(rendered) if rendered else "-")
        )
        phases = report.get("phases")
        if phases:
            print(f"{'':>12} phases: {render_phases(phases)}")
        anomaly = report.get("anomaly")
        if anomaly:
            print(
                f"{'':>12} anomaly: "
                f"epochs {anomaly.get('anomalous_epochs', [])}, "
                f"{anomaly.get('attributed', 0)} attributed, "
                f"{anomaly.get('unattributed', 0)} unattributed"
            )

    if failures:
        print("\nperformance regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(reports)} benchmark report(s) within their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
