"""Mergeable, delta-encodable summaries for standing queries.

A summary is the per-subtree partial state a standing query maintains: the
thing a node caches, compares against what it last transmitted, and — when
the change is large enough — re-sends to its parent.  Every summary supports
the same small protocol:

``merge``
    Combine two summaries into the summary of the union (associative and
    commutative, as convergecast requires).
``distance``
    A non-negative change measure, chosen per summary type so that replacing
    one summary by another at distance ``δ`` perturbs the root answer by at
    most ``δ`` (in the query's answer units).  The engine's ε-suppression
    rule compares this distance against a per-node slack.  A summary whose
    substitution effect cannot be bounded additively (the LogLog sketch,
    whose max-merge amplifies local drift) reports ∞ for any change and
    thereby opts out of suppression, keeping the contract vacuously true.
``same_as``
    Exact equality, used for zero-cost dirty detection.
``serialized_bits`` / ``delta_bits``
    Wire cost of a full transmission versus a delta against the receiver's
    cached copy.  Deltas are what make steady-state traffic proportional to
    change instead of summary size.

The heavy lifting is delegated to the existing sketches
(:class:`~repro.sketches.QDigest`, :class:`~repro.sketches.LogLogSketch`);
this module only wraps them behind the uniform streaming interface.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro._util.bits import signed_varint_bits, varint_bits
from repro.exceptions import ConfigurationError
from repro.sketches.loglog import LogLogSketch
from repro.sketches.qdigest import QDigest


class StreamSummary(abc.ABC):
    """Interface shared by all streaming summaries."""

    @abc.abstractmethod
    def merge(self, other: "StreamSummary") -> "StreamSummary":
        """Return the summary of the union of the two summarised multisets."""

    @abc.abstractmethod
    def distance(self, other: "StreamSummary") -> float:
        """Change measure bounding the root-answer perturbation (see module doc)."""

    @abc.abstractmethod
    def same_as(self, other: "StreamSummary") -> bool:
        """Exact state equality (stronger than ``distance() == 0``)."""

    @abc.abstractmethod
    def serialized_bits(self) -> int:
        """Wire cost of transmitting the summary from scratch."""

    @abc.abstractmethod
    def delta_bits(self, previous: "StreamSummary") -> int:
        """Wire cost of transmitting against a receiver caching ``previous``."""


class CountSummary(StreamSummary):
    """An exact item count — the summary behind COUNT and predicate counts."""

    __slots__ = ("count",)

    def __init__(self, count: int = 0) -> None:
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        self.count = count

    def merge(self, other: "CountSummary") -> "CountSummary":
        return CountSummary(self.count + other.count)

    def distance(self, other: "CountSummary") -> float:
        return abs(self.count - other.count)

    def same_as(self, other: "CountSummary") -> bool:
        return self.count == other.count

    def serialized_bits(self) -> int:
        return varint_bits(self.count) + 1

    def delta_bits(self, previous: "CountSummary") -> int:
        return signed_varint_bits(self.count - previous.count) + 1

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"CountSummary({self.count})"


class QuantileSummary(StreamSummary):
    """A q-digest wrapper: rank queries over the subtree's value multiset.

    The distance is the L1 difference of the stored dyadic counts, which
    upper-bounds the rank shift any substitution can cause — so a node that
    suppresses at distance ``≤ slack`` perturbs every rank estimate at the
    root by at most ``slack`` items.
    """

    __slots__ = ("digest",)

    def __init__(self, digest: QDigest) -> None:
        self.digest = digest

    @classmethod
    def from_values(
        cls, values: Iterable[int], universe_size: int, compression: int = 64
    ) -> "QuantileSummary":
        return cls(
            QDigest.from_values(
                values, universe_size=universe_size, compression=compression
            )
        )

    def merge(self, other: "QuantileSummary") -> "QuantileSummary":
        return QuantileSummary(self.digest.merge(other.digest))

    def distance(self, other: "QuantileSummary") -> float:
        return self.digest.count_distance(other.digest)

    def same_as(self, other: "QuantileSummary") -> bool:
        return (
            self.digest.total == other.digest.total
            and self.digest.counts == other.digest.counts
        )

    def serialized_bits(self) -> int:
        return self.digest.serialized_bits()

    def delta_bits(self, previous: "QuantileSummary") -> int:
        return self.digest.delta_bits(previous.digest)

    @property
    def total(self) -> int:
        return self.digest.total

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"QuantileSummary(total={self.digest.total}, size={self.digest.size})"


class DistinctSummary(StreamSummary):
    """A LogLog wrapper: approximate count-distinct over the subtree.

    Unlike the count and quantile summaries, a register change can never be
    suppressed: the root merges registers by max, so holding back even a
    small local-estimate shift can move the root estimate *multiplicatively*
    (and two sketches may estimate the same cardinality while summarising
    different value sets, corrupting deduplication higher up).  The distance
    is therefore 0 for identical registers and ∞ otherwise — the root sketch
    is always exact with respect to the nodes' current readings, and the only
    answer error is the sketch's own σ ≈ 1.30/√m.  Deltas stay cheap because
    a reading change typically moves one or two registers.
    """

    __slots__ = ("sketch", "max_expected_count")

    def __init__(self, sketch: LogLogSketch, max_expected_count: int = 1 << 30) -> None:
        self.sketch = sketch
        self.max_expected_count = max_expected_count

    @classmethod
    def from_values(
        cls,
        values: Iterable[int],
        num_registers: int = 64,
        salt: int = 0,
        max_expected_count: int = 1 << 30,
    ) -> "DistinctSummary":
        sketch = LogLogSketch(num_registers=num_registers, salt=salt)
        for value in values:
            sketch.add_item(value)
        return cls(sketch, max_expected_count=max_expected_count)

    def merge(self, other: "DistinctSummary") -> "DistinctSummary":
        return DistinctSummary(
            self.sketch.merge(other.sketch),
            max_expected_count=max(self.max_expected_count, other.max_expected_count),
        )

    def distance(self, other: "DistinctSummary") -> float:
        if self.sketch.registers == other.sketch.registers:
            return 0.0
        return float("inf")

    def same_as(self, other: "DistinctSummary") -> bool:
        return self.sketch.registers == other.sketch.registers

    def serialized_bits(self) -> int:
        return self.sketch.serialized_bits(self.max_expected_count)

    def delta_bits(self, previous: "DistinctSummary") -> int:
        return self.sketch.delta_bits(previous.sketch, self.max_expected_count)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"DistinctSummary(estimate={self.sketch.estimate():.1f})"
