"""Tests for RNG plumbing."""

import random

import pytest

from repro._util.randomness import choose_without_replacement, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_of_existing_generator(self):
        generator = random.Random(3)
        assert make_rng(generator) is generator

    def test_none_seed_is_allowed(self):
        value = make_rng(None).random()
        assert 0.0 <= value < 1.0


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_reproducible(self):
        first = [generator.random() for generator in spawn_rngs(42, 4)]
        second = [generator.random() for generator in spawn_rngs(42, 4)]
        assert first == second

    def test_children_are_independent_streams(self):
        children = spawn_rngs(42, 3)
        values = [generator.random() for generator in children]
        assert len(set(values)) == 3

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestChooseWithoutReplacement:
    def test_returns_distinct_elements(self):
        sample = choose_without_replacement(random.Random(0), list(range(20)), 10)
        assert len(sample) == len(set(sample)) == 10

    def test_rejects_oversized_sample(self):
        with pytest.raises(ValueError):
            choose_without_replacement(random.Random(0), [1, 2], 3)
