"""Causal diagnosis layer: flight recorder, cost attribution, diagnosis.

The load-bearing assertions mirror the layer's three promises:

* **attribution reconciles** — an epoch's summed per-node bit deltas equal
  exactly twice the epoch span's ledger delta (every charged bit touches a
  sender and a receiver), on the batched, vectorized and `VectorField`
  paths, crash epochs included;
* **diagnosis names the fault** — on a seeded storm, the flagged epochs
  are the scripted fault epochs (within detection latency) and at least
  90% of the causal chains root at the injected ``fault.injected`` event;
* **observing stays free** — with the flight recorder *and* attribution
  enabled at n = 100k, the run charges zero extra bits and stays within
  10% wall-clock of the null recorder, and at n = 1M the attribution sink
  holds no O(n) state (the q-digest + top-k bound).
"""

import importlib.util
import json
import time
from pathlib import Path

import pytest

from repro._util.fastpath import HAVE_NUMPY
from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultEngine,
    FaultScript,
    HeartbeatDetector,
    NodeCrash,
    RootCrash,
    RootElection,
    run_faulty_stream,
)
from repro.network.accounting import CommunicationLedger
from repro.network.simulator import SensorNetwork
from repro.streaming.engine import ContinuousQueryEngine
from repro.streaming.queries import CountQuery, MedianQuery
from repro.telemetry import (
    CONTEXT_KINDS,
    EVENT_KINDS,
    CostAttribution,
    FlightRecorder,
    NullRecorder,
    SpanTracer,
    diagnose,
    dumps_line,
    read_jsonl,
    rolling_mad_anomalies,
    split_by_type,
    verdict,
)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vectorized paths require the 'fast' extra (numpy)"
)

if HAVE_NUMPY:
    import numpy as np

DOMAIN = 1 << 12

REPO_ROOT = Path(__file__).resolve().parents[1]


def load_script(name):
    """Import a scripts/*.py CLI module by path (scripts is not a package)."""
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def storm_setup(num_nodes=36, execution="batched"):
    """A grid with crashes at epoch 3 and a root crash at epoch 6.

    The faults sit past the detector's ``min_history`` so the MAD detector
    is *allowed* to flag them — a storm at epoch 1 has no baseline yet.
    """
    network = SensorNetwork.from_items(
        [0] * num_nodes, topology="grid", execution=execution
    )
    network.clear_items()
    engine = ContinuousQueryEngine(network, epsilon=0.1)
    engine.register("count", CountQuery())
    if execution == "batched":
        engine.register(
            "median", MedianQuery(universe_size=DOMAIN, compression=64)
        )
    script = FaultScript(
        {3: [NodeCrash(7), NodeCrash(8)], 6: [RootCrash()]}
    )
    faults = FaultEngine(
        network,
        script=script,
        detector=HeartbeatDetector(period=2),
        election=RootElection(),
    )
    from repro.workloads.streams import DriftStream

    stream = DriftStream(num_nodes, max_value=DOMAIN, seed=3)
    return network, engine, stream, faults


def storm_run(execution="batched", epochs=12, **tracer_kwargs):
    tracer_kwargs.setdefault("flight", FlightRecorder())
    tracer_kwargs.setdefault("attribution", CostAttribution())
    network, engine, stream, faults = storm_setup(execution=execution)
    tracer = SpanTracer(**tracer_kwargs)
    trace = run_faulty_stream(
        engine, stream, faults, epochs=epochs, telemetry=tracer
    )
    if hasattr(engine, "close"):
        engine.close()
    return network, tracer, trace


class TestFlightRecorder:
    def test_ring_bounds_and_monotonic_ids(self):
        flight = FlightRecorder(capacity=4)
        for epoch in range(6):
            flight.record("cache.evict", epoch=epoch, node=epoch)
        assert len(flight) == 4
        assert flight.dropped == 2
        # Ids keep counting across drops: the survivors are events 3..6.
        assert [event.event_id for event in flight.events] == [3, 4, 5, 6]
        assert [event.epoch for event in flight.events] == [2, 3, 4, 5]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)

    def test_context_cause_inheritance(self):
        flight = FlightRecorder()
        fault = flight.record("fault.injected", epoch=0, node=7, fault="NodeCrash")
        miss = flight.record("detect.miss", epoch=0, node=7, cause=fault)
        evict = flight.record("cache.evict", epoch=0, node=3)
        # The eviction inherited the most recent context kind (the miss).
        assert flight.events[-1].cause_event_id == miss
        assert flight.events[1].cause_event_id == fault
        # Injections are causal roots: they never inherit the context.
        root = flight.record("fault.injected", epoch=0, node=9, fault="NodeCrash")
        assert flight.events[-1].cause_event_id is None
        # A new epoch resets the context entirely.
        flight.new_epoch()
        orphan = flight.record("cache.evict", epoch=1, node=4)
        assert flight.events[-1].cause_event_id is None
        assert {e.event_id for e in flight.events_of("fault.injected")} == {
            fault, root
        }
        assert evict != orphan

    def test_event_dicts_are_json_safe(self):
        flight = FlightRecorder()
        flight.record("election", epoch=2, node=5, old_root=0, participants=9)
        (record,) = list(flight.iter_dicts())
        assert record["type"] == "event"
        assert record["kind"] == "election"
        assert record["attributes"]["old_root"] == 0
        dumps_line(record)  # must not raise

    def test_taxonomy_is_closed(self):
        assert set(CONTEXT_KINDS) <= set(EVENT_KINDS)

    def test_tracer_event_carries_span_and_epoch_context(self):
        ledger = CommunicationLedger()
        tracer = SpanTracer(ledger=ledger, flight=FlightRecorder())
        with tracer.span("epoch", epoch=5) as span:
            with tracer.span("repair"):
                tracer.event("repair.adoption", node=3, adopter=1)
        (event,) = tracer.flight.events
        assert event.epoch == 5  # inherited from the enclosing epoch span
        assert event.parent_span_id is not None
        assert event.parent_span_id != span.span_id  # the repair span
        # Without a flight recorder, event() is an inert None.
        bare = SpanTracer()
        assert bare.event("cache.evict", node=1) is None


class TestCostAttribution:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            CostAttribution(mode="approximate")
        with pytest.raises(ConfigurationError):
            CostAttribution(top_k=0)
        with pytest.raises(ConfigurationError):
            CostAttribution(epsilon=0.0)

    def test_dense_fold_from_a_dict_ledger(self):
        ledger = CommunicationLedger()
        sink = CostAttribution(top_k=2)
        mark = ledger.mark()
        ledger.charge(1, 2, 100, protocol="stream:count")
        ledger.charge(2, 3, 40, protocol="faults:repair")
        sink.observe(0, ledger, mark)
        (record,) = sink.epochs
        assert record.mode == "dense"
        # Sender + receiver: every charged bit lands on two nodes.
        assert record.node_bits == 2 * 140
        assert record.touched == 3
        assert record.hotspots == [(2, 140), (1, 100)]
        assert record.quantiles["max"] == 140
        assert sink.top_hotspot(0) == (2, 140, 140 / 280)
        assert sink.epoch_record(1) is None

    def test_sketch_mode_holds_no_dense_state(self):
        ledger = CommunicationLedger()
        sink = CostAttribution(mode="sketch", top_k=2, epsilon=1 / 32)
        mark = ledger.mark()
        for node in range(1, 40):
            ledger.charge(node, 0, 8 * node, protocol="stream:count")
        sink.observe(0, ledger, mark)
        (record,) = sink.epochs
        assert record.mode == "sketch"
        assert record.digest is not None
        assert sink.cumulative is None  # the O(n) column never materialises
        assert len(record.hotspots) == 2
        assert record.hotspots[0][0] == 0  # the root received everything
        assert record.quantiles["max"] >= record.quantiles["p50"] > 0
        line = record.to_dict()
        assert line["type"] == "attribution"
        assert line["sketch_entries"] == record.digest.size
        # Bounded by hotspots + digest ranges, nowhere near the 40 nodes'
        # worth of per-node entries a dense fold would keep.
        assert sink.state_entries() == 2 + record.digest.size

    @needs_numpy
    def test_array_fold_matches_dict_fold(self):
        """The whole-array fast path and the dict path agree exactly."""
        from repro.network.accounting import ArrayLedger

        array_ledger = ArrayLedger(16)
        dict_ledger = CommunicationLedger()
        array_mark = array_ledger.mark()
        dict_mark = dict_ledger.mark()
        charges = [(1, 2, 64), (3, 2, 32), (5, 6, 8), (1, 0, 128)]
        for sender, receiver, size in charges:
            array_ledger.charge_array(
                np.asarray([sender]), np.asarray([receiver]),
                np.asarray([size]), protocol="stream:count",
            )
            dict_ledger.charge(sender, receiver, size, protocol="stream:count")
        fast, slow = CostAttribution(top_k=3), CostAttribution(top_k=3)
        fast.observe(0, array_ledger, array_mark)
        slow._fold_dict(0, dict_ledger.node_deltas_since(dict_mark))
        a, b = fast.epochs[0], slow.epochs[0]
        assert a.mode == b.mode == "dense"
        assert a.node_bits == b.node_bits == 2 * sum(c[2] for c in charges)
        assert a.touched == b.touched
        assert a.hotspots == b.hotspots
        assert a.quantiles == b.quantiles

    @needs_numpy
    def test_large_dict_fold_vectorized_matches_python_path(self, monkeypatch):
        from repro.telemetry import attribution as attribution_module

        rng = np.random.default_rng(5)
        nodes = rng.choice(50_000, 6_000, replace=False)
        values = rng.permutation(6_000) + 1  # distinct, so no tie-breaking
        deltas = {
            int(node): int(bits) for node, bits in zip(nodes, values)
        }
        vectorized, plain = CostAttribution(), CostAttribution()
        vectorized._fold_dict(0, deltas)
        monkeypatch.setattr(
            attribution_module, "VECTOR_DICT_FOLD_MIN", 10**9
        )
        plain._fold_dict(0, deltas)
        a, b = vectorized.epochs[0], plain.epochs[0]
        assert a.mode == b.mode == "dense"
        assert a.node_bits == b.node_bits
        assert a.touched == b.touched == 6_000
        assert a.hotspots == b.hotspots
        assert a.quantiles == b.quantiles

    @needs_numpy
    def test_large_dict_fold_sketch_mode_matches_python_path(self, monkeypatch):
        from repro.telemetry import attribution as attribution_module

        rng = np.random.default_rng(6)
        deltas = {
            int(node): int(bits)
            for node, bits in enumerate(rng.integers(1, 4096, 5_000))
        }
        vectorized = CostAttribution(mode="sketch")
        plain = CostAttribution(mode="sketch")
        vectorized._fold_dict(0, deltas)
        monkeypatch.setattr(
            attribution_module, "VECTOR_DICT_FOLD_MIN", 10**9
        )
        plain._fold_dict(0, deltas)
        a, b = vectorized.epochs[0], plain.epochs[0]
        assert a.mode == b.mode == "sketch"
        assert a.node_bits == b.node_bits
        assert a.touched == b.touched
        assert a.quantiles == b.quantiles
        assert vectorized.cumulative is None and plain.cumulative is None

    @needs_numpy
    def test_auto_mode_switches_to_sketch_above_dense_limit(self):
        from repro.network.accounting import ArrayLedger

        ledger = ArrayLedger(64)
        sink = CostAttribution(dense_limit=32, top_k=4)
        mark = ledger.mark()
        ledger.charge_array(
            np.arange(1, 33), np.zeros(32, dtype=np.int64),
            np.full(32, 16), protocol="stream:count",
        )
        sink.observe(0, ledger, mark)
        assert sink.epochs[0].mode == "sketch"
        assert sink.cumulative is None


class TestDetector:
    def test_flags_only_upward_spikes(self):
        series = {e: 100.0 for e in range(8)}
        series[5] = 3000.0
        series[6] = 1.0  # cheap epochs are good news, not anomalies
        flagged = rolling_mad_anomalies(series)
        assert [epoch for epoch, *_ in flagged] == [5]
        epoch, value, baseline, deviation = flagged[0]
        assert value == 3000.0 and baseline == 100.0 and deviation > 4

    def test_needs_min_history(self):
        # A spike at epoch 1 has no baseline to be anomalous against.
        assert rolling_mad_anomalies({0: 1.0, 1: 1000.0, 2: 1.0}) == []

    def test_periodic_heartbeat_parity_does_not_flag(self):
        # 64/0 alternation (a period-2 detector) must read as steady state,
        # even after a real spike widens the window's spread.
        series = {e: (64.0 if e % 2 == 0 else 0.0) for e in range(12)}
        series[5] = 5000.0
        flagged = rolling_mad_anomalies(series)
        assert [epoch for epoch, *_ in flagged] == [5]


class TestStormDiagnosis:
    """End-to-end on the batched path: spans + events + attribution."""

    def test_attribution_reconciles_with_epoch_spans(self):
        _, tracer, trace = storm_run()
        epochs = tracer.spans_named("epoch")
        assert len(tracer.attribution.epochs) == len(epochs) == len(trace)
        for span in epochs:
            record = tracer.attribution.epoch_record(span.attributes["epoch"])
            assert record.node_bits == 2 * span.bits
            if span.bits:
                assert record.touched > 0
                assert record.hotspots[0][1] == record.quantiles["max"]

    def test_flags_fault_epochs_and_names_the_injection(self):
        """The acceptance criterion: scripted faults get flagged and named.

        Crashes at epoch 3 (heartbeat period 2 -> paid for at epoch 4) and
        a root crash at epoch 6; at least 90% of the flagged epochs must
        chain back to a ``fault.injected`` root.
        """
        _, tracer, _ = storm_run()
        diagnosis = diagnose(list(tracer.iter_dicts()))
        flagged = {a.epoch for a in diagnosis.anomalies}
        assert flagged, "the storm must register as anomalous"
        # Every flag sits on a scripted fault epoch or inside detection
        # latency of one (crash at 3 detected at 4; root crash at 6).
        assert flagged <= {3, 4, 6}
        assert 6 in flagged  # the election epoch is the loudest
        assert not diagnosis.unattributed
        rooted = [
            a for a in diagnosis.anomalies
            if a.root_cause is not None
            and a.root_cause.get("kind") == "fault.injected"
        ]
        assert len(rooted) >= 0.9 * len(diagnosis.anomalies)
        summary = verdict(diagnosis)
        assert summary["unattributed"] == 0
        assert summary["root_cause_kinds"].get("fault.injected", 0) == len(rooted)
        # The rendered report names the faults in plain words.
        report = diagnosis.render()
        assert "RootCrash" in report
        assert "heartbeat miss" in report
        assert diagnosis.worst().attributed

    def test_detection_chain_links_miss_to_its_crash(self):
        _, tracer, _ = storm_run()
        flight = tracer.flight
        injections = {
            e.event_id: e for e in flight.events_of("fault.injected")
        }
        misses = flight.events_of("detect.miss")
        assert misses, "the heartbeat detector must report the crashes"
        for miss in misses:
            cause = injections.get(miss.cause_event_id)
            assert cause is not None
            assert cause.node == miss.node  # the miss names its crash
            assert miss.attributes["latency"] == miss.epoch - cause.epoch

    def test_jsonl_round_trip_preserves_the_diagnosis(self, tmp_path):
        _, tracer, _ = storm_run()
        path = tmp_path / "TELEMETRY_storm.jsonl"
        tracer.write_jsonl(path)
        records = list(read_jsonl(path))
        buckets = split_by_type(records)
        assert buckets["event"] and buckets["attribution"]
        assert len(buckets["attribution"]) == 12
        assert verdict(diagnose(records)) == verdict(
            diagnose(list(tracer.iter_dicts()))
        )

    def test_instrumented_run_charges_identical_bits(self):
        """The cardinal rule: flight + attribution never charge a bit."""
        _, _, traced = storm_run()
        network, engine, stream, faults = storm_setup()
        baseline = run_faulty_stream(engine, stream, faults, epochs=12)
        assert [r.total_bits for r in traced] == [
            r.total_bits for r in baseline
        ]


@needs_numpy
class TestVectorizedReconciliation:
    """Satellite: the causal layer on the numpy execution paths."""

    def test_vector_stream_engine_spans_reconcile_through_a_crash(self):
        from repro.streaming.vector_engine import VectorStreamEngine

        network = SensorNetwork.from_items(
            [0] * 64, topology="grid", execution="vectorized"
        )
        network.clear_items()
        engine = VectorStreamEngine(network, epsilon=0.1)
        engine.register("count", CountQuery())
        script = FaultScript({3: [NodeCrash(7), NodeCrash(21)]})
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=2)
        )
        from repro.workloads.streams import DriftStream

        stream = DriftStream(64, max_value=DOMAIN, seed=3)
        tracer = SpanTracer(
            flight=FlightRecorder(), attribution=CostAttribution()
        )
        trace = run_faulty_stream(
            engine, stream, faults, epochs=8, telemetry=tracer
        )
        engine.close()
        epochs = tracer.spans_named("epoch")
        assert len(epochs) == 8
        for span, record in zip(epochs, trace):
            assert span.bits == record.total_bits
            subtree = tracer.subtree_of(span)
            assert sum(s.exclusive_bits for s in subtree) == span.bits
            attributed = tracer.attribution.epoch_record(
                span.attributes["epoch"]
            )
            assert attributed.node_bits == 2 * span.bits
        assert tracer.flight.events_of("fault.injected")
        assert tracer.flight.events_of("detect.miss")

    def test_sharded_sweep_spans_carry_per_shard_breakdown(self):
        from repro.streaming.vector_engine import VectorStreamEngine

        network = SensorNetwork.from_items(
            [0] * 64, topology="grid", execution="sharded"
        )
        network.clear_items()
        engine = VectorStreamEngine(network, epsilon=0.1, shard_processes=0)
        engine.register("count", CountQuery())
        tracer = SpanTracer()
        network.telemetry = tracer
        engine.advance_epoch({node: [1, 2] for node in range(0, 64, 3)})
        engine.close()
        sweeps = tracer.spans_named("shard.sweep")
        assert sweeps
        for span in sweeps:
            nodes = span.attributes["shard_nodes"]
            assert nodes and all(int(count) > 0 for count in nodes.values())
            assert set(span.attributes["shard_bits"]) == set(nodes)
            assert span.attributes["dispatched"] == len(nodes)
        merges = tracer.spans_named("shard.merge")
        assert merges and all(
            s.attributes["shards"] >= 1 for s in merges if s.attributes
        )

    def test_vector_field_crash_epoch_reconciles(self):
        from repro.network.vector_field import VectorField

        tracer = SpanTracer(
            flight=FlightRecorder(), attribution=CostAttribution()
        )
        field = VectorField.balanced(512, branching=4, telemetry=tracer)
        field.register_count_query("count")
        rng = np.random.default_rng(11)
        field.advance_epoch(
            changed_positions=np.arange(512),
            new_counts=rng.integers(0, 50, 512),
        )
        for epoch in range(1, 6):
            if epoch == 3:
                field.crash(rng.choice(np.arange(1, 512), 25, replace=False))
            changed = rng.choice(512, 40, replace=False)
            field.advance_epoch(
                changed_positions=changed,
                new_counts=rng.integers(0, 50, 40),
            )
        epochs = tracer.spans_named("epoch")
        assert len(epochs) == len(field.records) == 6
        for span, record in zip(epochs, field.records):
            assert span.attributes["epoch"] == record["epoch"]
            assert span.bits == record["bits"]
            attributed = tracer.attribution.epoch_record(record["epoch"])
            assert attributed.node_bits == 2 * span.bits
        # The storm epoch carries its aggregate injection event, and the
        # engine recorded the detached-cache eviction it caused.
        (injection,) = tracer.flight.events_of("fault.injected")
        assert injection.attributes["count"] == 25
        diagnosis = diagnose(list(tracer.iter_dicts()))
        for anomaly in diagnosis.anomalies:
            assert anomaly.attributed

    @pytest.mark.slow
    def test_million_node_attribution_stays_sketched(self):
        """The memory bound: 1M nodes, zero O(n) attribution state."""
        from repro.network.vector_field import VectorField

        sink = CostAttribution(top_k=8, epsilon=1 / 64)
        tracer = SpanTracer(attribution=sink)
        field = VectorField.balanced(1_000_000, telemetry=tracer)
        field.register_count_query("count")
        rng = np.random.default_rng(5)
        field.advance_epoch(
            changed_positions=np.arange(1_000_000),
            new_counts=rng.integers(0, 50, 1_000_000),
        )
        churn = rng.choice(1_000_000, 10_000, replace=False)
        field.advance_epoch(
            changed_positions=churn,
            new_counts=rng.integers(0, 50, 10_000),
        )
        assert sink.cumulative is None
        assert all(record.mode == "sketch" for record in sink.epochs)
        # O(epochs * (k + 1/eps)) — permissively doubled, still ~5 orders
        # of magnitude under the 1M-entry dense column it must not keep.
        assert sink.state_entries() <= 2 * len(sink.epochs) * (8 + 64)
        for record in sink.epochs:
            assert record.digest is not None
            assert record.touched > 0


@needs_numpy
class TestOverheadGuard:
    """Flight + attribution enabled must observe for free at n = 100k."""

    # Smallest grid side with >= 100k nodes.
    GRID_SIDE = 317
    NUM_NODES = GRID_SIDE * GRID_SIDE
    EPOCHS = 4
    VECTOR_NODES = 100_000

    def run_pipeline(self, telemetry):
        """One storm-under-churn run of the full fault pipeline at ~100k."""
        from repro.streaming.vector_engine import VectorStreamEngine
        from repro.workloads.streams import DriftStream

        started = time.perf_counter()
        network = SensorNetwork.from_items(
            [0] * self.NUM_NODES, topology="grid", execution="vectorized"
        )
        network.clear_items()
        engine = VectorStreamEngine(network, epsilon=0.1)
        engine.register("count", CountQuery())
        script = FaultScript({2: [NodeCrash(7), NodeCrash(21)]})
        faults = FaultEngine(
            network, script=script, detector=HeartbeatDetector(period=2)
        )
        stream = DriftStream(self.NUM_NODES, max_value=DOMAIN, seed=3)
        run_faulty_stream(
            engine, stream, faults, epochs=self.EPOCHS, telemetry=telemetry
        )
        engine.close()
        elapsed = time.perf_counter() - started
        return network.ledger.total_bits, elapsed

    def run_vector_field(self, telemetry):
        """One pure-kernel VectorField run at exactly 100k nodes."""
        from repro.network.vector_field import VectorField

        rng = np.random.default_rng(9)
        field = VectorField.balanced(self.VECTOR_NODES, telemetry=telemetry)
        field.register_count_query("count")
        field.advance_epoch(
            changed_positions=np.arange(self.VECTOR_NODES),
            new_counts=rng.integers(0, 50, self.VECTOR_NODES),
        )
        for epoch in range(1, self.EPOCHS):
            if epoch == 2:
                field.crash(
                    rng.choice(
                        np.arange(1, self.VECTOR_NODES), 500, replace=False
                    )
                )
            churn = rng.choice(self.VECTOR_NODES, 1_000, replace=False)
            field.advance_epoch(
                changed_positions=churn,
                new_counts=rng.integers(0, 50, 1_000),
            )
        return field.ledger.total_bits

    def instrumented(self):
        return SpanTracer(
            flight=FlightRecorder(), attribution=CostAttribution()
        )

    @pytest.mark.slow
    def test_causal_layer_charges_zero_extra_bits(self):
        null_bits = self.run_vector_field(NullRecorder())
        traced_bits = self.run_vector_field(self.instrumented())
        assert traced_bits == null_bits

    @pytest.mark.slow
    def test_causal_layer_wall_clock_within_tolerance(self):
        # Interleaved single-shot with up to 3 attempts: each run is
        # seconds long, so scheduler noise is a small fraction of it and
        # one clean pair settles the verdict.
        for attempt in range(3):
            null_bits, null = self.run_pipeline(NullRecorder())
            traced_bits, traced = self.run_pipeline(self.instrumented())
            assert traced_bits == null_bits
            if traced <= null * 1.10:
                return
        pytest.fail(
            f"instrumented run took {traced:.4f}s vs {null:.4f}s baseline "
            f"(> 10% overhead)"
        )


class TestCliExitCodes:
    """scripts/diagnose.py and scripts/telemetry_report.py fail loudly."""

    def write_storm_trace(self, tmp_path):
        _, tracer, _ = storm_run()
        path = tmp_path / "TELEMETRY_storm.jsonl"
        tracer.write_jsonl(path)
        return path

    def test_diagnose_happy_path_and_strict(self, tmp_path, capsys):
        cli = load_script("diagnose")
        path = self.write_storm_trace(tmp_path)
        assert cli.main([str(path)]) == 0
        assert "crash" in capsys.readouterr().out.lower()
        assert cli.main([str(path), "--strict"]) == 0
        capsys.readouterr()
        assert cli.main([str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["unattributed"] == 0
        assert summary["anomalous_epochs"]

    def test_diagnose_strict_fails_on_unexplained_spike(self, tmp_path, capsys):
        cli = load_script("diagnose")
        path = tmp_path / "TELEMETRY_mystery.jsonl"
        spans = [
            {
                "type": "span",
                "name": "epoch",
                "attributes": {"epoch": epoch},
                "bits": 5000 if epoch == 5 else 100,
            }
            for epoch in range(8)
        ]
        path.write_text("".join(dumps_line(s) + "\n" for s in spans))
        assert cli.main([str(path), "--strict"]) == 1
        captured = capsys.readouterr()
        assert "no attributable cause chain" in captured.out
        assert "strict" in captured.err

    def test_diagnose_rejects_missing_empty_and_truncated(self, tmp_path):
        cli = load_script("diagnose")
        assert cli.main([str(tmp_path / "nope.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli.main([str(empty)]) == 2
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text('{"type": "span", "name": "epo')
        assert cli.main([str(truncated)]) == 2

    def test_report_rejects_missing_empty_and_truncated(self, tmp_path, capsys):
        cli = load_script("telemetry_report")
        assert cli.main([str(tmp_path / "nope.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli.main([str(empty)]) == 2
        assert "empty" in capsys.readouterr().err
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text(
            '{"type": "span", "name": "epoch", "bits": 5}\n{"type": "spa'
        )
        assert cli.main([str(truncated)]) == 2
        assert "truncated" in capsys.readouterr().err
        spanless = tmp_path / "spanless.jsonl"
        spanless.write_text('{"type": "event", "kind": "election"}\n')
        assert cli.main([str(spanless)]) == 1

    def test_report_renders_instrumented_trace(self, tmp_path, capsys):
        cli = load_script("telemetry_report")
        path = self.write_storm_trace(tmp_path)
        assert cli.main([str(path)]) == 0
        assert "Phase dashboard" in capsys.readouterr().out
