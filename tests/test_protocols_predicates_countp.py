"""Tests for predicates and the COUNTP protocol (Section 3.1)."""

import pytest

from repro.core.definitions import rank
from repro.exceptions import PredicateError
from repro.network.simulator import SensorNetwork
from repro.network.topology import line_topology
from repro.protocols.countp import CountPredicateProtocol
from repro.protocols.predicates import (
    AllItemsPredicate,
    LessThanPredicate,
    PowerThresholdPredicate,
    RangePredicate,
)


class TestAllItemsPredicate:
    def test_always_true(self):
        predicate = AllItemsPredicate()
        assert predicate(0) and predicate(10**9)

    def test_constant_encoding(self):
        assert AllItemsPredicate().encoded_bits() <= 4

    def test_describe(self):
        assert AllItemsPredicate().describe() == "TRUE"


class TestLessThanPredicate:
    def test_strictness(self):
        predicate = LessThanPredicate(threshold=10)
        assert predicate(9)
        assert not predicate(10)
        assert not predicate(11)

    def test_half_integer_threshold(self):
        predicate = LessThanPredicate(threshold=10.5)
        assert predicate(10)
        assert not predicate(11)

    def test_rejects_other_fractions(self):
        with pytest.raises(PredicateError):
            LessThanPredicate(threshold=10.3)

    def test_negative_threshold_matches_nothing(self):
        # Fig. 1's search radius can probe below the value range.
        predicate = LessThanPredicate(threshold=-3.5)
        assert not predicate(0)
        assert predicate.encoded_bits() > 0

    def test_encoding_uses_domain_width(self):
        wide = LessThanPredicate(threshold=5, domain_max=(1 << 20) - 1)
        narrow = LessThanPredicate(threshold=5, domain_max=31)
        assert wide.encoded_bits() > narrow.encoded_bits()
        assert narrow.encoded_bits() <= 2 + 5 + 2

    def test_encoding_without_domain_is_adaptive(self):
        small = LessThanPredicate(threshold=5)
        large = LessThanPredicate(threshold=1 << 20)
        assert small.encoded_bits() < large.encoded_bits()

    def test_probe_above_domain_still_encodable(self):
        predicate = LessThanPredicate(threshold=1 << 12, domain_max=100)
        assert predicate.encoded_bits() > 0

    def test_describe(self):
        assert "17" in LessThanPredicate(threshold=17).describe()


class TestPowerThresholdPredicate:
    def test_threshold_value(self):
        predicate = PowerThresholdPredicate(exponent=4, offset=-1)
        assert predicate.threshold == 15
        assert predicate(14)
        assert not predicate(15)

    def test_encoding_is_loglog_sized(self):
        # Describing "< 2^20" must be far cheaper than describing "< 1048576".
        power = PowerThresholdPredicate(exponent=20)
        explicit = LessThanPredicate(threshold=1 << 20)
        assert power.encoded_bits() < explicit.encoded_bits() / 2

    def test_rejects_negative_exponent(self):
        with pytest.raises(PredicateError):
            PowerThresholdPredicate(exponent=-1)


class TestRangePredicate:
    def test_membership(self):
        predicate = RangePredicate(low=10, high=20)
        assert predicate(10)
        assert predicate(19)
        assert not predicate(20)
        assert not predicate(9)

    def test_invalid_range_rejected(self):
        with pytest.raises(PredicateError):
            RangePredicate(low=5, high=3)

    def test_encoding(self):
        assert RangePredicate(low=1, high=7, domain_max=63).encoded_bits() <= 2 + 12


class TestCountPredicateProtocol:
    def test_counts_match_rank_function(self, small_network, small_items):
        for threshold in (0, 10, 42, 43, 1000):
            small_network.reset_ledger()
            protocol = CountPredicateProtocol(LessThanPredicate(threshold=threshold))
            assert protocol.run(small_network).value == rank(small_items, threshold)

    def test_true_predicate_equals_count(self, small_network, small_items):
        protocol = CountPredicateProtocol(AllItemsPredicate())
        assert protocol.run(small_network).value == len(small_items)

    def test_range_predicate_count(self, small_network, small_items):
        protocol = CountPredicateProtocol(RangePredicate(low=10, high=60))
        expected = sum(1 for item in small_items if 10 <= item < 60)
        assert protocol.run(small_network).value == expected

    def test_counts_multiple_items_per_node(self):
        network = SensorNetwork.from_items([1, 2, 3], topology=line_topology(3))
        network.assign_items({0: [5, 15, 25]})
        protocol = CountPredicateProtocol(LessThanPredicate(threshold=16))
        assert protocol.run(network).value == 4  # 5, 15 from node 0; 2, 3 from others

    def test_view_parameter(self, small_network, small_items):
        protocol = CountPredicateProtocol(
            LessThanPredicate(threshold=100),
            view=lambda node: [item * 10 for item in node.items],
        )
        expected = sum(1 for item in small_items if item * 10 < 100)
        assert protocol.run(small_network).value == expected

    def test_predicate_cost_charged_in_broadcast(self, small_network):
        cheap = CountPredicateProtocol(LessThanPredicate(threshold=1, domain_max=1))
        expensive = CountPredicateProtocol(
            LessThanPredicate(threshold=(1 << 30) - 1, domain_max=(1 << 30) - 1)
        )
        small_network.reset_ledger()
        cheap_bits = cheap.run(small_network).total_bits
        small_network.reset_ledger()
        expensive_bits = expensive.run(small_network).total_bits
        assert expensive_bits > cheap_bits
