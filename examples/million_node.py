"""A million-node sensor field: storm-under-churn on the vectorized core.

Run with::

    python examples/million_node.py                     # 1,000,000 nodes
    REPRO_MILLION_NODES=100000 python examples/million_node.py

Requires the ``fast`` extra (numpy); without it the script explains and
exits cleanly, because there is no pure-Python path that holds a million
nodes.

The :class:`~repro.network.VectorField` keeps the whole field as numpy
columns over a :class:`~repro.network.FlatTree` and runs each epoch as the
fused sweep chain — heartbeat **detect** over every alive edge, the attach
**repair** sweep, and the change-driven **stream** convergecast with
ε-suppression — as whole-array level passes, charging the ledger one batch
per level.  The script

1. builds a balanced field (default: one million nodes, branching 8),
2. registers a standing COUNT query and pays its announcement broadcast,
3. runs a churn regime (~1% of nodes change their reading each epoch),
   drops a crash storm on it mid-run, and keeps monitoring through the
   damage,
4. prints the per-epoch cost table and the telemetry phase dashboard —
   the same renderer ``scripts/telemetry_report.py`` applies to exported
   JSONL traces.
"""

from __future__ import annotations

import os
import sys
import time

from repro._util.fastpath import HAVE_NUMPY

if not HAVE_NUMPY:
    print(
        "million_node.py needs the vectorized core: numpy is not installed.\n"
        "Install the fast extra (pip install 'repro-patt-shamir04[fast]') "
        "and re-run."
    )
    sys.exit(0)

import numpy as np

from repro.analysis.report import format_table
from repro.network import VectorField
from repro.telemetry import SpanTracer

NUM_NODES = int(os.environ.get("REPRO_MILLION_NODES", 1_000_000))
EPOCHS = 8
STORM_EPOCH = 3
STORM_FRACTION = 0.002
CHURN_FRACTION = 0.01
MAX_READING = 50


def main() -> None:
    rng = np.random.default_rng(7)
    tracer = SpanTracer()

    started = time.perf_counter()
    field = VectorField.balanced(NUM_NODES, branching=8, telemetry=tracer)
    build_seconds = time.perf_counter() - started
    print(
        f"built a {NUM_NODES:,}-node field (height {field.flat.height}) "
        f"in {build_seconds:.2f}s"
    )

    field.register_count_query("count")
    field.advance_epoch(
        changed_positions=np.arange(NUM_NODES),
        new_counts=rng.integers(0, MAX_READING, NUM_NODES),
    )
    print(f"initial answer: count = {field.answers['count']:,}")

    churn = max(1, int(NUM_NODES * CHURN_FRACTION))
    storm = max(1, int(NUM_NODES * STORM_FRACTION))
    epoch_seconds = []
    for epoch in range(1, EPOCHS):
        if epoch == STORM_EPOCH:
            # A crash storm: a random slice of the field dies at once.  The
            # next detect sweep stops billing their heartbeats and the
            # attach sweep cuts their subtrees out of the answer.
            field.crash(rng.choice(np.arange(1, NUM_NODES), storm, replace=False))
        changed = rng.choice(NUM_NODES, churn, replace=False)
        tick = time.perf_counter()
        field.advance_epoch(
            changed_positions=changed,
            new_counts=rng.integers(0, MAX_READING, churn),
        )
        epoch_seconds.append(time.perf_counter() - tick)

    print()
    print(format_table(
        ["epoch", "answer", "dirty", "tx", "suppressed", "bits", "ms"],
        [
            [
                record["epoch"],
                record["answers"]["count"],
                record["dirty"],
                record["transmissions"],
                record["suppressions"],
                record["bits"],
                round(seconds * 1000, 1) if seconds is not None else "-",
            ]
            for record, seconds in zip(
                field.records, [None] + epoch_seconds
            )
        ],
        title=f"storm-under-churn, {NUM_NODES:,} nodes "
        f"(storm at epoch {STORM_EPOCH}: {storm:,} crashes)",
    ))

    steady = epoch_seconds[-1]
    print(
        f"\nsteady-state epoch (detect + repair + stream): "
        f"{steady * 1000:.1f} ms for {NUM_NODES:,} nodes"
    )

    # The telemetry phase dashboard — identical to what
    # scripts/telemetry_report.py renders from an exported JSONL trace.
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))
    from telemetry_report import summarize_spans

    spans = [span.to_dict() for span in tracer.spans]
    print()
    print(format_table(
        ["phase", "count", "wall s", "bits", "bits excl", "msgs",
         "max node bits", "failed"],
        summarize_spans(spans),
        title="telemetry phases",
    ))
    print()
    print(tracer.metrics.render_markdown())


if __name__ == "__main__":
    main()
