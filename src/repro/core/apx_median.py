"""Approximate median and order statistics — Algorithm APX_MEDIAN of Fig. 2.

The deterministic binary search of Fig. 1 is made robust to noisy counts:

* exact COUNTP probes are replaced by REP_COUNTP — the average of several
  independent α-counting (LogLog) invocations;
* the comparison against ``n/2`` gains a safety margin of ``α_c + σ`` on both
  sides.  When the averaged count lands *inside* the margin the current probe
  point is already close to the median in rank, so the algorithm outputs it
  and halts early (Line 4.2.1, analysed in Lemma 4.4).

Guarantees reproduced (Theorems 4.5, 4.6; experiment E5): with the paper's
repetition counts the output is an (α, β)-median with probability ≥ 1 − ε for
α = 3σ and β = 1/N, and the per-node communication is
``O((log max X)² · C_A(N) / ε)`` where ``C_A`` is the α-counting cost.

Replacing the ``1/2`` by ``k/N`` yields the k-order-statistic variant
(:class:`ApproximateOrderStatisticProtocol`), which Algorithm APX_MEDIAN2
invokes on the logarithm domain.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro._util.validation import require_probability
from repro.core.rep_count import RepeatedApproxCount, RepetitionPolicy
from repro.exceptions import ConfigurationError, EmptyNetworkError
from repro.network.simulator import SensorNetwork
from repro.protocols.aggregates import MaxProtocol, MinProtocol
from repro.protocols.apx_count import ApproxCountProtocol
from repro.protocols.base import ItemView, MeteredRun, ProtocolResult, raw_items
from repro.protocols.predicates import LessThanPredicate


@dataclass(frozen=True)
class ApproxMedianOutcome:
    """Root-side outcome of an approximate selection query."""

    value: int
    n_estimate: float
    target_rank: float
    minimum: int
    maximum: int
    probes: int
    iterations: int
    halted_early: bool
    alpha_guarantee: float
    beta_guarantee: float
    epsilon: float
    sigma: float


class ApproximateOrderStatisticProtocol:
    """Randomized (α, β) k-order statistic via noise-tolerant binary search.

    Args:
        epsilon: target failure probability ε of Theorem 4.5/4.6.
        quantile: target rank as a fraction of N (0.5 for the median), or
        k: target rank as an absolute count — exactly one of the two.
        num_registers: LogLog sketch size ``m`` of the underlying α-counting
            protocol; determines σ ≈ 1.30/√m and the per-message bits.
        repetition_policy: how many APX_COUNT repetitions each REP_COUNTP
            performs (``RepetitionPolicy.paper()`` for the verbatim constants).
        alpha_c: the α of the α-counting protocol (Fact 2.2 gives < 10⁻⁶).
        sketch: ``"loglog"`` or ``"hyperloglog"``.
        view: item view the protocol operates on (used by APX_MEDIAN2 to run
            on the logarithm domain).
        domain_max: known upper bound on item values, used only to size the
            predicate encodings.
        seed: randomness seed for the counting sketches.
    """

    def __init__(
        self,
        epsilon: float = 0.1,
        quantile: float | None = 0.5,
        k: float | None = None,
        num_registers: int = 64,
        repetition_policy: RepetitionPolicy | None = None,
        alpha_c: float = 1e-6,
        sketch: str = "loglog",
        view: ItemView = raw_items,
        domain_max: int | None = None,
        seed: int | random.Random | None = 0,
    ) -> None:
        self.epsilon = require_probability(epsilon, "epsilon")
        if self.epsilon == 0.0:
            raise ConfigurationError("epsilon must be strictly positive")
        if (quantile is None) == (k is None):
            raise ConfigurationError("exactly one of quantile and k must be given")
        if quantile is not None and not 0.0 < quantile <= 1.0:
            raise ConfigurationError(f"quantile must lie in (0, 1], got {quantile}")
        if k is not None and k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.quantile = quantile
        self.k = k
        self.alpha_c = alpha_c
        self.policy = (
            repetition_policy
            if repetition_policy is not None
            else RepetitionPolicy.practical()
        )
        self._view = view
        self._domain_max = domain_max
        self._counter = ApproxCountProtocol(
            num_registers=num_registers,
            mode="multiset",
            sketch=sketch,
            view=view,
            seed=seed,
        )
        self._rep_count = RepeatedApproxCount(self._counter, view=view)

    @property
    def sigma(self) -> float:
        """Relative standard deviation σ of one α-counting invocation."""
        return self._counter.relative_sigma

    # ------------------------------------------------------------------ #
    def run(self, network: SensorNetwork) -> ProtocolResult:
        """Execute Fig. 2; the result's ``value`` is an :class:`ApproxMedianOutcome`."""
        sigma = self.sigma
        margin = self.alpha_c + sigma
        with MeteredRun(network) as metered:
            # Line 1: exact MIN and MAX (cheap, Fact 2.1).
            minimum = MinProtocol(domain_max=self._domain_max, view=self._view).run(
                network
            ).value
            maximum = MaxProtocol(domain_max=self._domain_max, view=self._view).run(
                network
            ).value
            spread = maximum - minimum

            # Line 2: q and the approximate item count n.
            q = max(1.0, math.log2(max(2, spread))) / self.epsilon
            n_estimate = self._rep_count.run(
                network, self.policy.count_repetitions(q)
            ).value
            if n_estimate <= 0:
                raise EmptyNetworkError("approximate count returned zero items")
            if self.quantile is not None:
                target_rank = self.quantile * n_estimate
                target_fraction = self.quantile
            else:
                target_rank = float(self.k)
                target_fraction = min(1.0, target_rank / n_estimate)

            probes = 0
            iterations = 0
            halted_early = False

            if spread == 0:
                outcome = ApproxMedianOutcome(
                    value=minimum,
                    n_estimate=n_estimate,
                    target_rank=target_rank,
                    minimum=minimum,
                    maximum=maximum,
                    probes=probes,
                    iterations=iterations,
                    halted_early=False,
                    alpha_guarantee=3.0 * sigma,
                    beta_guarantee=1.0 / max(n_estimate, 1.0),
                    epsilon=self.epsilon,
                    sigma=sigma,
                )
                return metered.result(outcome)

            # Line 3: initial probe point and radius, as in Fig. 1.
            y = (maximum + minimum) / 2.0
            z = float(1 << max(0, (spread - 1).bit_length() - 1)) if spread > 1 else 0.5
            probe_repetitions = self.policy.probe_repetitions(q)

            def rep_count_below(threshold: float) -> float:
                nonlocal probes
                probes += 1
                predicate = LessThanPredicate(
                    threshold=threshold,
                    domain_max=self._domain_max if self._domain_max is not None else maximum,
                )
                return self._rep_count.run(
                    network, probe_repetitions, predicate=predicate
                ).value

            # Line 4: noise-tolerant binary search.
            value: int | None = None
            while z > 0.5:
                iterations += 1
                estimate = rep_count_below(y)
                if estimate < n_estimate * (target_fraction - margin):
                    y += z / 2.0
                elif estimate >= n_estimate * (target_fraction + margin):
                    y -= z / 2.0
                else:
                    value = int(math.floor(y))
                    halted_early = True
                    break
                z /= 2.0

            if value is None:
                # Line 5.
                value = int(math.floor(y))

            outcome = ApproxMedianOutcome(
                value=value,
                n_estimate=n_estimate,
                target_rank=target_rank,
                minimum=minimum,
                maximum=maximum,
                probes=probes,
                iterations=iterations,
                halted_early=halted_early,
                alpha_guarantee=3.0 * sigma,
                beta_guarantee=1.0 / max(n_estimate, 1.0),
                epsilon=self.epsilon,
                sigma=sigma,
            )
        return metered.result(outcome)


class ApproximateMedianProtocol(ApproximateOrderStatisticProtocol):
    """Algorithm APX_MEDIAN(X, ε): the k = N/2 specialisation of Fig. 2."""

    def __init__(self, epsilon: float = 0.1, **kwargs) -> None:
        kwargs.pop("quantile", None)
        kwargs.pop("k", None)
        super().__init__(epsilon=epsilon, quantile=0.5, **kwargs)
