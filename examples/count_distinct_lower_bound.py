"""The COUNT DISTINCT lower bound, made executable (Theorem 5.1).

Run with::

    python examples/count_distinct_lower_bound.py

Builds the Set-Disjointness instances from the proof of Theorem 5.1, embeds
them in a line network split between the two "players", and runs both the
exact and the LogLog distinct-counting protocols through the reduction.  The
output shows the three facts the section argues:

1. the exact protocol decides disjointness — so it inherits 2SD's Ω(n) bound,
   visible as linearly growing traffic across the cut edge;
2. the approximate protocol's traffic stays flat in n;
3. the approximate protocol cannot tell "disjoint" from "one shared value",
   which is exactly why it escapes the lower bound.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.distinct import (
    ApproxDistinctCountProtocol,
    ExactDistinctCountProtocol,
    make_disjoint_instance,
    make_intersecting_instance,
    solve_disjointness_via_count_distinct,
)

SET_SIZES = [32, 128, 512]


def main() -> None:
    rows = []
    for set_size in SET_SIZES:
        disjoint = make_disjoint_instance(set_size, seed=7)
        near_disjoint = make_intersecting_instance(set_size, overlap=1, seed=7)

        exact = ExactDistinctCountProtocol()
        approx = ApproxDistinctCountProtocol(num_registers=64, seed=9)

        exact_on_disjoint = solve_disjointness_via_count_distinct(disjoint, exact)
        exact_on_near = solve_disjointness_via_count_distinct(near_disjoint, exact)
        approx_on_near = solve_disjointness_via_count_distinct(
            near_disjoint, approx, tolerance=0.02
        )

        rows.append([
            2 * set_size,
            "yes" if (exact_on_disjoint.correct and exact_on_near.correct) else "NO",
            exact_on_disjoint.cut_bits,
            "yes" if approx_on_near.correct else "NO",
            approx_on_near.cut_bits,
            round(approx_on_near.distinct_count_reported, 1),
            approx_on_near.distinct_count_true,
        ])

    print(format_table(
        [
            "n (nodes)",
            "exact decides 2SD",
            "exact cut bits",
            "LogLog decides 2SD",
            "LogLog cut bits",
            "LogLog estimate",
            "true distinct",
        ],
        rows,
        title="Theorem 5.1 — Set-Disjointness reduction on a split line network",
    ))
    print()
    print("Exact distinct counting pays for its exactness with linearly growing")
    print("traffic across the cut; the LogLog protocol stays flat but cannot")
    print("separate 'disjoint' from 'one shared element' — the paper's point that")
    print("any protocol answering exactly (even with some probability) must be Ω(n).")


if __name__ == "__main__":
    main()
