"""Communication-complexity accounting.

The paper's central cost measure (Section 2.1) is the *individual*
communication complexity: the maximum, over all nodes, of the number of bits
transmitted **and** received by that node.  :class:`CommunicationLedger`
records every charged transmission and exposes that measure, together with
totals, per-protocol breakdowns and message/round counts used by the
experiment harness.

Two charging paths exist and are bit-for-bit equivalent:

* :meth:`CommunicationLedger.charge` — one transmission at a time, used by
  the per-edge execution path (``SensorNetwork.send``);
* :meth:`CommunicationLedger.charge_batch` — a whole batch of transmissions
  in one call, used by the batched execution path.  One batch entry with
  ``copies`` repetitions is accounted exactly like ``copies`` individual
  :meth:`charge` calls.

For measuring a single protocol invocation, :meth:`mark` returns a
lightweight :class:`LedgerMark` that records per-node baselines lazily — only
for nodes the protocol actually touches — so computing the invocation's
per-node delta is O(touched nodes), not O(network size).  (A full
:meth:`snapshot` still copies the per-node table and remains available for
callers that need the absolute state.)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro._util.fastpath import np as _np
from repro._util.validation import require_non_negative
from repro.exceptions import BudgetExceededError, ConfigurationError


@dataclass
class NodeTraffic:
    """Per-node traffic counters."""

    bits_sent: int = 0
    bits_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0

    @property
    def bits_total(self) -> int:
        """Bits transmitted plus received — the paper's per-node cost."""
        return self.bits_sent + self.bits_received

    def merge(self, other: "NodeTraffic") -> None:
        """Accumulate another traffic record into this one."""
        self.bits_sent += other.bits_sent
        self.bits_received += other.bits_received
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received


@dataclass
class LedgerSnapshot:
    """Immutable summary of a ledger at one point in time."""

    per_node_bits: dict[int, int]
    total_bits: int
    max_node_bits: int
    messages: int
    rounds: int
    per_protocol_bits: dict[str, int] = field(default_factory=dict)


class LedgerMark:
    """A position marker on a ledger, for O(touched-nodes) interval metering.

    The mark records the scalar counters eagerly and per-node baselines
    *lazily*: while the mark is active, the first charge that touches a node
    stores that node's pre-charge total in :attr:`node_baseline`.  The delta
    of the interval is then computable by looking only at the touched nodes —
    a polylog-bit protocol on a 100k-node network diffs a handful of entries
    instead of copying two 100k-entry dictionaries.
    """

    __slots__ = ("total_bits", "messages", "rounds", "node_baseline")

    def __init__(self, total_bits: int, messages: int, rounds: int) -> None:
        self.total_bits = total_bits
        self.messages = messages
        self.rounds = rounds
        self.node_baseline: dict[int, int] = {}

    def rebase(self, total_bits: int, messages: int, rounds: int) -> None:
        """Reset the mark to a new origin (used when the ledger is reset)."""
        self.total_bits = total_bits
        self.messages = messages
        self.rounds = rounds
        self.node_baseline.clear()


def _record_baselines(marks, sender, sender_traffic, receiver, receiver_traffic):
    """Record pre-charge per-node totals on every active mark (first touch only)."""
    for mark in marks:
        baseline = mark.node_baseline
        if sender not in baseline:
            baseline[sender] = sender_traffic.bits_sent + sender_traffic.bits_received
        if receiver not in baseline:
            baseline[receiver] = (
                receiver_traffic.bits_sent + receiver_traffic.bits_received
            )


class CommunicationLedger:
    """Records every bit sent or received by every node.

    The ledger is deliberately independent of the network topology: protocols
    charge transmissions explicitly via :meth:`charge` or
    :meth:`charge_batch`, which keeps the accounting honest even for
    protocols that bypass the spanning tree (e.g. gossip baselines).

    An optional ``per_node_budget_bits`` turns the ledger into an enforcement
    mechanism: exceeding the budget raises :class:`BudgetExceededError`, which
    is how the test suite demonstrates the Ω(n) behaviour of exact
    COUNT DISTINCT without actually shipping gigabytes of simulated traffic.
    """

    def __init__(self, per_node_budget_bits: int | None = None) -> None:
        if per_node_budget_bits is not None:
            require_non_negative(per_node_budget_bits, "per_node_budget_bits")
        self._per_node: dict[int, NodeTraffic] = defaultdict(NodeTraffic)
        self._per_protocol_bits: dict[str, int] = defaultdict(int)
        self._messages = 0
        self._rounds = 0
        self._total_bits = 0
        self._budget = per_node_budget_bits
        self._marks: list[LedgerMark] = []

    @property
    def per_node_budget_bits(self) -> int | None:
        """The configured per-node budget, or ``None`` when unenforced."""
        return self._budget

    # ------------------------------------------------------------------ #
    # Charging
    # ------------------------------------------------------------------ #
    def charge(
        self,
        sender: int,
        receiver: int,
        size_bits: int,
        protocol: str = "unknown",
    ) -> None:
        """Charge a single transmission of ``size_bits`` from sender to receiver."""
        require_non_negative(size_bits, "size_bits")
        sender_traffic = self._per_node[sender]
        receiver_traffic = self._per_node[receiver]
        if self._marks:
            _record_baselines(
                self._marks, sender, sender_traffic, receiver, receiver_traffic
            )
        sender_traffic.bits_sent += size_bits
        sender_traffic.messages_sent += 1
        receiver_traffic.bits_received += size_bits
        receiver_traffic.messages_received += 1
        self._per_protocol_bits[protocol] += size_bits
        self._messages += 1
        self._total_bits += size_bits
        if self._budget is not None:
            for node_id, traffic in ((sender, sender_traffic), (receiver, receiver_traffic)):
                if traffic.bits_total > self._budget:
                    raise BudgetExceededError(
                        f"node {node_id} exceeded per-node budget of "
                        f"{self._budget} bits ({traffic.bits_total} bits used)"
                    )

    def charge_batch(
        self,
        links: Sequence[tuple[int, int]],
        sizes: Sequence[int],
        copies: Sequence[int] | None = None,
        protocol: str = "unknown",
    ) -> None:
        """Charge a batch of transmissions in one call.

        ``links`` is a sequence of ``(sender, receiver)`` pairs and ``sizes``
        the per-link transmission size in bits.  ``copies`` optionally gives a
        per-link repetition count (radio retries/duplicates); ``None`` means
        every link is charged exactly once.  Link ``i`` is accounted exactly
        like ``copies[i]`` calls to :meth:`charge` with the same
        sender/receiver/size, in link order, so the per-edge and batched
        execution paths produce bit-for-bit identical ledgers.  Links with
        ``copies[i] <= 0`` are skipped.

        When a per-node budget is configured the batch falls back to
        per-transmission charging so the :class:`BudgetExceededError` fires at
        the same transmission it would on the per-edge path.
        """
        if not links:
            # An empty batch must leave no trace (the per-edge path would
            # simply not have charged), not a zero-bit per-protocol entry.
            return
        # Validate every size before mutating any state, so a bad size cannot
        # leave per-node counters charged with the scalar totals unapplied.
        for size_bits in sizes:
            if size_bits < 0:
                require_non_negative(size_bits, "size_bits")
        if self._budget is not None:
            if copies is None:
                for (sender, receiver), size_bits in zip(links, sizes):
                    self.charge(sender, receiver, size_bits, protocol=protocol)
            else:
                for (sender, receiver), size_bits, count in zip(links, sizes, copies):
                    for _ in range(count):
                        self.charge(sender, receiver, size_bits, protocol=protocol)
            return
        per_node = self._per_node
        marks = self._marks
        protocol_bits = 0
        messages = 0
        if copies is None:
            for (sender, receiver), size_bits in zip(links, sizes):
                sender_traffic = per_node[sender]
                receiver_traffic = per_node[receiver]
                if marks:
                    _record_baselines(
                        marks, sender, sender_traffic, receiver, receiver_traffic
                    )
                sender_traffic.bits_sent += size_bits
                sender_traffic.messages_sent += 1
                receiver_traffic.bits_received += size_bits
                receiver_traffic.messages_received += 1
                protocol_bits += size_bits
            messages = len(links)
        else:
            for (sender, receiver), size_bits, count in zip(links, sizes, copies):
                if count <= 0:
                    continue
                sender_traffic = per_node[sender]
                receiver_traffic = per_node[receiver]
                if marks:
                    _record_baselines(
                        marks, sender, sender_traffic, receiver, receiver_traffic
                    )
                bits = size_bits * count
                sender_traffic.bits_sent += bits
                sender_traffic.messages_sent += count
                receiver_traffic.bits_received += bits
                receiver_traffic.messages_received += count
                protocol_bits += bits
                messages += count
        if messages:
            self._per_protocol_bits[protocol] += protocol_bits
            self._messages += messages
            self._total_bits += protocol_bits

    def charge_array(
        self,
        senders,
        receivers,
        sizes,
        protocol: str = "unknown",
        copies=None,
    ) -> None:
        """Charge parallel sender/receiver/size arrays in one call.

        The array-shaped twin of :meth:`charge_batch`, used by the vectorized
        execution path: ``senders[i]`` transmitted ``sizes[i]`` bits to
        ``receivers[i]`` (``copies[i]`` times, when given).  On the base
        dict-backed ledger this *delegates* to :meth:`charge_batch` — every
        mark, budget and ordering behaviour is identical, which is what the
        representation-equivalence suite relies on; :class:`ArrayLedger`
        overrides it with a whole-array implementation.

        Inputs may be numpy arrays or plain sequences; they are normalised to
        Python ints before touching the per-node table, so dict keys and
        per-protocol totals never hold numpy scalars.
        """
        senders = _as_int_list(senders)
        receivers = _as_int_list(receivers)
        self.charge_batch(
            list(zip(senders, receivers)),
            _as_int_list(sizes),
            copies=None if copies is None else _as_int_list(copies),
            protocol=protocol,
        )

    def charge_local(self, node: int, size_bits: int, protocol: str = "local") -> None:
        """Charge bits that a node stores/processes locally without transmitting.

        Not part of the communication-complexity measure; tracked only so the
        space-oriented experiments can report it.
        """
        require_non_negative(size_bits, "size_bits")
        self._per_protocol_bits[f"{protocol}:local"] += size_bits

    def advance_round(self, count: int = 1) -> None:
        """Record ``count`` additional synchronous communication rounds."""
        require_non_negative(count, "count")
        self._rounds += count

    # ------------------------------------------------------------------ #
    # Interval metering (marks)
    # ------------------------------------------------------------------ #
    def mark(self) -> LedgerMark:
        """Start an O(touched-nodes) metering interval and return its mark."""
        mark = LedgerMark(
            total_bits=self._total_bits,
            messages=self._messages,
            rounds=self._rounds,
        )
        self._marks.append(mark)
        return mark

    def release(self, mark: LedgerMark) -> None:
        """Stop recording baselines for ``mark`` (idempotent).

        The mark's recorded baselines stay valid, so deltas can still be read
        after release; only *new* node touches stop being tracked.
        """
        try:
            self._marks.remove(mark)
        except ValueError:
            pass

    def node_deltas_since(self, mark: LedgerMark) -> dict[int, int]:
        """Per-node bits added since ``mark``, for the touched nodes only."""
        per_node = self._per_node
        return {
            node: per_node[node].bits_sent
            + per_node[node].bits_received
            - baseline
            for node, baseline in mark.node_baseline.items()
        }

    def max_node_delta_since(self, mark: LedgerMark) -> int:
        """Largest per-node bits delta since ``mark`` (0 if nothing was charged)."""
        deltas = self.node_deltas_since(mark)
        return max(deltas.values(), default=0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def traffic(self, node: int) -> NodeTraffic:
        """Return the traffic record for ``node`` (zeros if it never communicated)."""
        return self._per_node[node]

    def node_bits(self, node: int) -> int:
        """Bits sent plus received by ``node``."""
        return self._per_node[node].bits_total

    @property
    def max_node_bits(self) -> int:
        """The paper's communication-complexity measure: max over nodes."""
        if not self._per_node:
            return 0
        return max(traffic.bits_total for traffic in self._per_node.values())

    @property
    def total_bits(self) -> int:
        """Total bits transmitted across the whole network (each bit counted once)."""
        return self._total_bits

    @property
    def total_messages(self) -> int:
        return self._messages

    @property
    def rounds(self) -> int:
        return self._rounds

    def per_protocol_bits(self) -> dict[str, int]:
        """Total bits broken down by the protocol label passed to :meth:`charge`."""
        return dict(self._per_protocol_bits)

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids that have sent or received at least one message."""
        return iter(self._per_node.keys())

    def counters_snapshot(self) -> LedgerSnapshot:
        """Scalar counters and per-protocol breakdown only — O(#protocols).

        ``per_node_bits`` is left empty and ``max_node_bits`` reported as 0;
        use this for interval diffs that only need totals (the streaming
        engines take one per epoch), and :meth:`snapshot` when per-node
        detail is required.
        """
        return LedgerSnapshot(
            per_node_bits={},
            total_bits=self._total_bits,
            max_node_bits=0,
            messages=self._messages,
            rounds=self._rounds,
            per_protocol_bits=dict(self._per_protocol_bits),
        )

    def snapshot(self) -> LedgerSnapshot:
        """Return an immutable summary of the current counters.

        This copies the full per-node table and is O(network size); prefer
        :meth:`mark` / :meth:`node_deltas_since` for metering one protocol
        invocation, and :meth:`counters_snapshot` for totals-only diffs.
        """
        return LedgerSnapshot(
            per_node_bits={
                node: traffic.bits_total for node, traffic in self._per_node.items()
            },
            total_bits=self._total_bits,
            max_node_bits=self.max_node_bits,
            messages=self._messages,
            rounds=self._rounds,
            per_protocol_bits=dict(self._per_protocol_bits),
        )

    def reset(self) -> None:
        """Clear all counters (budget configuration is retained).

        Active marks are rebased onto the cleared ledger, so a metering
        interval spanning a reset measures from the reset point onward.
        """
        self._per_node.clear()
        self._per_protocol_bits.clear()
        self._messages = 0
        self._rounds = 0
        self._total_bits = 0
        for mark in self._marks:
            mark.rebase(total_bits=0, messages=0, rounds=0)

    def merge(self, other: "CommunicationLedger") -> None:
        """Accumulate the counters of another ledger into this one."""
        if self._marks:
            # Record pre-merge baselines for every node the merge will touch,
            # so active metering intervals see the merged traffic as a delta.
            for node in other._per_node:
                traffic = self._per_node[node]
                for mark in self._marks:
                    if node not in mark.node_baseline:
                        mark.node_baseline[node] = traffic.bits_total
        for node, traffic in other._per_node.items():
            self._per_node[node].merge(traffic)
        for protocol, bits in other._per_protocol_bits.items():
            self._per_protocol_bits[protocol] += bits
        self._messages += other._messages
        self._rounds += other._rounds
        self._total_bits += other._total_bits

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CommunicationLedger(max_node_bits={self.max_node_bits}, "
            f"total_bits={self._total_bits}, messages={self._messages}, "
            f"rounds={self._rounds})"
        )


def _as_int_list(values) -> list[int]:
    """Normalise an array/sequence to a list of Python ints."""
    if hasattr(values, "tolist"):
        return values.tolist()
    return [int(value) for value in values]


class ArrayLedgerMark:
    """Interval marker on an :class:`ArrayLedger`.

    Where :class:`LedgerMark` records per-node baselines lazily on first
    touch (per-charge bookkeeping the vectorized path cannot afford), this
    mark snapshots the dense per-node totals column *once* at creation —
    one ``O(n)`` array copy, after which charging stays bookkeeping-free
    and interval deltas are one whole-array subtraction.
    """

    __slots__ = ("total_bits", "messages", "rounds", "node_total")

    def __init__(self, total_bits: int, messages: int, rounds: int, node_total) -> None:
        self.total_bits = total_bits
        self.messages = messages
        self.rounds = rounds
        self.node_total = node_total

    def rebase(self, total_bits: int, messages: int, rounds: int) -> None:
        """Reset the mark to a new origin (used when the ledger is reset)."""
        self.total_bits = total_bits
        self.messages = messages
        self.rounds = rounds
        self.node_total = _np.zeros_like(self.node_total)


class ArrayLedger(CommunicationLedger):
    """Dense array-backed ledger for fields with node ids ``0..n-1``.

    The dict-backed :class:`CommunicationLedger` pays one hash probe and one
    ``NodeTraffic`` attribute update per endpoint per charge — at a million
    nodes that alone dwarfs an epoch's kernel time.  This subclass keeps the
    per-node counters as four contiguous ``int64`` columns and makes
    :meth:`charge_array` a handful of ``np.add.at`` scatter-adds, while
    keeping every observable — :meth:`snapshot`, :meth:`counters_snapshot`,
    per-protocol totals, marks for the telemetry spans — semantically
    identical to the base ledger (per-node entries exist exactly for nodes
    that sent or received at least one message, numpy scalars never leak
    out).

    Per-node budgets are *not* supported: budget enforcement must interleave
    the budget check with every individual transmission, which is exactly
    the per-charge Python loop this class exists to avoid.  Use the base
    ledger for budgeted (lower-bound) experiments.
    """

    def __init__(self, num_nodes: int, per_node_budget_bits: int | None = None) -> None:
        from repro._util.fastpath import require_numpy

        np = require_numpy("ArrayLedger")
        if per_node_budget_bits is not None:
            raise ConfigurationError(
                "ArrayLedger does not enforce per-node budgets; use "
                "CommunicationLedger for budgeted experiments"
            )
        require_non_negative(num_nodes, "num_nodes")
        super().__init__(None)
        self._num_nodes = num_nodes
        self._bits_sent = np.zeros(num_nodes, dtype=np.int64)
        self._bits_received = np.zeros(num_nodes, dtype=np.int64)
        self._msgs_sent = np.zeros(num_nodes, dtype=np.int64)
        self._msgs_received = np.zeros(num_nodes, dtype=np.int64)
        # Totals cache: span closes, marks and the attribution sink all ask
        # for sent+received in quick succession; rebuilding the O(n) sum for
        # each asker dominated telemetry overhead at 100k nodes.  The cached
        # array is never mutated in place (charges invalidate and a refresh
        # allocates anew), so marks may safely hold a reference as baseline.
        self._totals_cache = None
        self._totals_dirty = True
        # Transient workspace for max_node_delta_since: allocated lazily
        # (only instrumented runs ask), reused across calls so the span
        # layer's per-close max costs three array passes and no allocation.
        self._delta_scratch = None
        # The inherited dict table must never be consulted: observing it
        # would silently report an empty ledger.  Poison it.
        self._per_node = None

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def _node_totals(self):
        if self._totals_dirty:
            self._totals_cache = self._bits_sent + self._bits_received
            self._totals_dirty = False
        return self._totals_cache

    # ------------------------------------------------------------------ #
    # Charging
    # ------------------------------------------------------------------ #
    def charge(
        self,
        sender: int,
        receiver: int,
        size_bits: int,
        protocol: str = "unknown",
    ) -> None:
        require_non_negative(size_bits, "size_bits")
        self._totals_dirty = True
        self._bits_sent[sender] += size_bits
        self._msgs_sent[sender] += 1
        self._bits_received[receiver] += size_bits
        self._msgs_received[receiver] += 1
        self._per_protocol_bits[protocol] += size_bits
        self._messages += 1
        self._total_bits += size_bits

    def charge_batch(
        self,
        links: Sequence[tuple[int, int]],
        sizes: Sequence[int],
        copies: Sequence[int] | None = None,
        protocol: str = "unknown",
    ) -> None:
        if not links:
            return
        self.charge_array(
            _np.asarray([link[0] for link in links], dtype=_np.int64),
            _np.asarray([link[1] for link in links], dtype=_np.int64),
            _np.asarray(sizes, dtype=_np.int64),
            protocol=protocol,
            copies=None if copies is None else _np.asarray(copies, dtype=_np.int64),
        )

    def charge_array(
        self,
        senders,
        receivers,
        sizes,
        protocol: str = "unknown",
        copies=None,
    ) -> None:
        np = _np
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if senders.size == 0:
            # An empty batch must leave no trace, matching charge_batch.
            return
        if bool((sizes < 0).any()):
            require_non_negative(int(sizes.min()), "size_bits")
        if copies is None:
            weights = sizes
            messages = int(senders.size)
            np.add.at(self._msgs_sent, senders, 1)
            np.add.at(self._msgs_received, receivers, 1)
        else:
            copies = np.asarray(copies, dtype=np.int64)
            live = copies > 0
            if not bool(live.all()):
                senders = senders[live]
                receivers = receivers[live]
                sizes = sizes[live]
                copies = copies[live]
            if senders.size == 0:
                return
            weights = sizes * copies
            messages = int(copies.sum())
            np.add.at(self._msgs_sent, senders, copies)
            np.add.at(self._msgs_received, receivers, copies)
        self._totals_dirty = True
        np.add.at(self._bits_sent, senders, weights)
        np.add.at(self._bits_received, receivers, weights)
        total = int(weights.sum())
        self._per_protocol_bits[protocol] += total
        self._messages += messages
        self._total_bits += total

    # ------------------------------------------------------------------ #
    # Interval metering (marks)
    # ------------------------------------------------------------------ #
    def mark(self) -> ArrayLedgerMark:
        mark = ArrayLedgerMark(
            total_bits=self._total_bits,
            messages=self._messages,
            rounds=self._rounds,
            node_total=self._node_totals(),
        )
        self._marks.append(mark)
        return mark

    def node_deltas_since(self, mark) -> dict[int, int]:
        """Per-node bits added since ``mark`` (nodes with a non-zero delta)."""
        deltas = self._node_totals() - mark.node_total
        touched = _np.nonzero(deltas)[0]
        return dict(zip(touched.tolist(), deltas[touched].tolist()))

    def node_delta_array(self, mark):
        """Per-node bits added since ``mark`` as one dense ``int64`` array.

        The attribution sink's fast path: one whole-array subtraction with
        no per-node Python objects, indexed by canonical position.
        """
        return self._node_totals() - mark.node_total

    def max_node_delta_since(self, mark) -> int:
        """Largest single-node bit delta since ``mark``.

        The result is a scalar, so the per-node subtraction runs on a
        reusable scratch buffer instead of allocating a delta array for
        every closing span.
        """
        if not self._num_nodes:
            return 0
        scratch = self._delta_scratch
        if scratch is None:
            scratch = self._delta_scratch = _np.empty(
                self._num_nodes, dtype=_np.int64
            )
        # _node_totals() refreshes the cache when dirty, so the next
        # mark() snapshots for free; the subtraction itself lands in the
        # scratch buffer because nobody keeps per-node deltas from here.
        _np.subtract(self._node_totals(), mark.node_total, out=scratch)
        return max(0, int(scratch.max()))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def traffic(self, node: int) -> NodeTraffic:
        """A *copy* of ``node``'s counters (the base class returns the live
        record; array columns have no per-node object to hand out)."""
        return NodeTraffic(
            bits_sent=int(self._bits_sent[node]),
            bits_received=int(self._bits_received[node]),
            messages_sent=int(self._msgs_sent[node]),
            messages_received=int(self._msgs_received[node]),
        )

    def node_bits(self, node: int) -> int:
        return int(self._bits_sent[node] + self._bits_received[node])

    def _touched_mask(self):
        return (self._msgs_sent + self._msgs_received) > 0

    @property
    def max_node_bits(self) -> int:
        touched = self._touched_mask()
        if not bool(touched.any()):
            return 0
        return int(self._node_totals()[touched].max())

    def nodes(self) -> Iterator[int]:
        return iter(_np.nonzero(self._touched_mask())[0].tolist())

    def snapshot(self) -> LedgerSnapshot:
        totals = self._node_totals()
        touched = _np.nonzero(self._touched_mask())[0]
        return LedgerSnapshot(
            per_node_bits=dict(
                zip(touched.tolist(), totals[touched].tolist())
            ),
            total_bits=self._total_bits,
            max_node_bits=int(totals[touched].max()) if touched.size else 0,
            messages=self._messages,
            rounds=self._rounds,
            per_protocol_bits=dict(self._per_protocol_bits),
        )

    def reset(self) -> None:
        self._totals_dirty = True
        self._bits_sent[:] = 0
        self._bits_received[:] = 0
        self._msgs_sent[:] = 0
        self._msgs_received[:] = 0
        self._per_protocol_bits.clear()
        self._messages = 0
        self._rounds = 0
        self._total_bits = 0
        for mark in self._marks:
            mark.rebase(total_bits=0, messages=0, rounds=0)

    def merge(self, other: CommunicationLedger) -> None:
        """Accumulate ``other`` — an :class:`ArrayLedger` over the same id
        space, or a dict-backed ledger whose ids fall inside it."""
        self._totals_dirty = True
        if isinstance(other, ArrayLedger):
            if other._num_nodes > self._num_nodes:
                raise ConfigurationError(
                    f"cannot merge a {other._num_nodes}-node ArrayLedger into "
                    f"a {self._num_nodes}-node one"
                )
            span = other._num_nodes
            self._bits_sent[:span] += other._bits_sent
            self._bits_received[:span] += other._bits_received
            self._msgs_sent[:span] += other._msgs_sent
            self._msgs_received[:span] += other._msgs_received
        else:
            for node, traffic in other._per_node.items():
                self._bits_sent[node] += traffic.bits_sent
                self._bits_received[node] += traffic.bits_received
                self._msgs_sent[node] += traffic.messages_sent
                self._msgs_received[node] += traffic.messages_received
        for protocol, bits in other._per_protocol_bits.items():
            self._per_protocol_bits[protocol] += bits
        self._messages += other._messages
        self._rounds += other._rounds
        self._total_bits += other._total_bits

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ArrayLedger(nodes={self._num_nodes}, "
            f"total_bits={self._total_bits}, messages={self._messages}, "
            f"rounds={self._rounds})"
        )
