"""Drive a continuous-query engine through a stream *and* a fault schedule.

:func:`run_faulty_stream` is the per-epoch loop of the resilient stack:

1. pull this epoch's reading updates from the stream (and any explicit
   node-offline/online events the stream emits, e.g. a
   :class:`~repro.workloads.ChurnStream` in event mode);
2. let the :class:`~repro.faults.FaultEngine` apply fault events, run the
   heartbeat sweep of its failure detector (when one is charged) and repair
   the spanning tree — including, after a
   :class:`~repro.faults.RootCrash`, a charged
   :class:`~repro.faults.RootElection` and re-rooting at the winner —
   charging control traffic to the shared ledger;
3. feed the outcome to the query engine's recovery protocols
   (:meth:`~repro.streaming.ContinuousQueryEngine.apply_root_change` for a
   fail-over's reversed root path, then
   :meth:`~repro.streaming.ContinuousQueryEngine.apply_repair`), so only
   summaries along repaired paths are re-synchronised;
4. advance the query epoch with the updates that can still reach the root,
   and record everything — repair bits vs. query bits, population counts,
   and answer error against the *attached* ground truth — in a
   :class:`~repro.faults.FaultTrace`.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ConfigurationError
from repro.faults.engine import FaultEngine
from repro.faults.trace import FaultEpochRecord, FaultTrace
from repro.telemetry.recorder import TelemetryRecorder


def _truth_and_error(
    query: Any, answer: Any, items: list[int]
) -> tuple[float, float] | None:
    """Ground truth and absolute answer error for one standing query.

    Dispatches on the query's ``kind`` tag so the faults package stays
    decoupled from concrete query classes; unknown kinds are skipped.
    Quantile answers are scored by *rank* error (distance of the answer's
    rank from the target rank, in items), matching the error bounds the
    streaming engine reports.  An empty attached multiset still scores the
    counting kinds (truth 0, error = the stale answer's magnitude) — only
    quantiles, whose truth is undefined on empty data, are skipped.
    """
    if answer is None:
        return None
    kind = getattr(query, "kind", None)
    if kind == "COUNT":
        truth = float(len(items))
        return truth, abs(float(answer) - truth)
    if kind == "COUNTP":
        truth = float(sum(1 for item in items if query.predicate(item)))
        return truth, abs(float(answer) - truth)
    if kind in ("QUANTILE", "MEDIAN"):
        if not items:
            return None
        target = query.fraction * len(items)
        below = sum(1 for item in items if item < answer)
        ties = sum(1 for item in items if item == answer)
        achieved = below + 0.5 * ties
        return target, abs(achieved - target)
    if kind == "DISTINCT":
        truth = float(len(set(items)))
        return truth, abs(float(answer) - truth)
    return None


def run_faulty_stream(
    engine,
    stream,
    faults: FaultEngine,
    epochs: int,
    compute_truth: bool = True,
    telemetry: TelemetryRecorder | None = None,
) -> FaultTrace:
    """Run ``engine`` for ``epochs`` epochs of ``stream`` under ``faults``.

    ``engine`` is a :class:`~repro.streaming.ContinuousQueryEngine` (or
    anything exposing ``advance_epoch`` / ``apply_repair`` / ``queries`` /
    ``network`` / ``energy_model``) with its standing queries already
    registered.  Epoch 0 applies the stream's initial assignment.  Returns
    the :class:`FaultTrace`; the engine's own
    :class:`~repro.streaming.StreamingTrace` keeps accumulating as usual.

    ``compute_truth`` controls the per-epoch ground-truth sweep (it reads
    every attached node's items, which is the one O(n)-per-epoch step);
    disable it for pure cost measurements at large scale.

    ``telemetry`` installs a recorder (normally a
    :class:`~repro.telemetry.SpanTracer`) on the engine's network for the
    run: every epoch then emits one ``epoch`` span with the
    ``detect`` / ``election`` / ``repair`` / ``stream`` phase spans nested
    inside it, plus the answer-error, detection-latency and per-ledger-key
    bit metrics.  The recorder stays installed after the run so its trace
    can be exported; assign ``network.telemetry = None`` to switch it off.
    """
    if epochs <= 0:
        raise ConfigurationError(f"epochs must be positive, got {epochs}")
    network = engine.network
    if faults.network is not network:
        raise ConfigurationError(
            "the fault engine and the query engine must share one network"
        )
    if telemetry is not None:
        network.telemetry = telemetry
    recorder = network.telemetry
    trace = FaultTrace()
    energy = engine.energy_model
    per_bit_nj = (
        energy.transmit_nj_per_bit
        + energy.amplifier_nj_per_bit
        + energy.receive_nj_per_bit
    )
    for epoch in range(epochs):
        updates = stream.initial() if epoch == 0 else stream.step(epoch)
        pop_events = getattr(stream, "pop_fault_events", None)
        extra_events = pop_events() if pop_events is not None else ()

        epoch_span = recorder.span("epoch", epoch=epoch)
        with epoch_span:
            before = network.ledger.counters_snapshot()
            report = faults.step(epoch, extra_events=extra_events)
            election = report.election
            if election is not None:
                # Root fail-over: migrate the caches along the reversed root
                # path first, then let the ordinary repair recovery handle the
                # re-attached fragments.
                engine.apply_root_change(election)
            engine.apply_repair(report.repair)
            mid = network.ledger.counters_snapshot()

            tree_nodes = network.tree.parent
            # Crashed-but-undetected nodes still sit in the tree, but their
            # sensors are gone: a zombie reads nothing, so its updates vanish
            # (its stale cached summary lingering at the root is exactly the
            # answer-error cost of the detection window).
            undetected = getattr(faults, "undetected_dead", frozenset())
            reachable_updates = {
                node_id: items
                for node_id, items in updates.items()
                if node_id in tree_nodes and node_id not in undetected
            }
            # A flap (crash + rejoin inside one detection window) leaves the
            # tree untouched but replaced the node's readings wholesale;
            # surface it as this epoch's update so the stale pre-crash summary
            # is re-synchronised instead of being served forever.
            for node_id in report.flapped:
                if node_id in tree_nodes:
                    reachable_updates[node_id] = list(
                        network.node(node_id).items
                    )
            record = engine.advance_epoch(reachable_updates)
            after = network.ledger.counters_snapshot()

        # Heartbeats and election traffic were charged inside faults.step;
        # keep them (bits and message counts both) out of the repair column
        # so the four cost streams stay separable:
        # total == repair + query + detection + election, every epoch.
        election_bits = election.election_bits if election is not None else 0
        election_messages = (
            election.election_messages if election is not None else 0
        )
        repair_bits = (
            mid.total_bits
            - before.total_bits
            - report.detection_bits
            - election_bits
        )
        repair_messages = (
            mid.messages
            - before.messages
            - report.detection_messages
            - election_messages
        )
        repair_rounds = mid.rounds - before.rounds
        repair_energy_nj = (
            (repair_bits + report.detection_bits + election_bits) * per_bit_nj
            + energy.idle_nj_per_round * repair_rounds * network.num_nodes
        )
        truths: dict[str, float] = {}
        errors: dict[str, float] = {}
        if compute_truth:
            items = network.attached_items()
            for name, query in engine.queries().items():
                scored = _truth_and_error(query, record.answers.get(name), items)
                if scored is not None:
                    truths[name], errors[name] = scored
        trace.append(
            FaultEpochRecord(
                epoch=epoch,
                crashes=len(report.crashed),
                rejoins=len(report.rejoined),
                link_drops=len(report.dropped_links),
                link_restores=len(report.restored_links),
                reparented=len(report.repair.parent_changed),
                rebuilt=report.repair.rebuilt,
                detached=len(report.repair.detached),
                alive=network.num_alive,
                attached=len(tree_nodes),
                repair_bits=repair_bits,
                repair_messages=repair_messages,
                query_bits=record.bits,
                total_bits=after.total_bits - before.total_bits,
                messages=after.messages - before.messages,
                rounds=after.rounds - before.rounds,
                energy_nj=record.energy_nj + repair_energy_nj,
                dirty_nodes=record.dirty_nodes,
                transmissions=record.transmissions,
                suppressions=record.suppressions,
                answers=dict(record.answers),
                truths=truths,
                errors=errors,
                detection_bits=report.detection_bits,
                detected=len(report.detected),
                detection_latency=(
                    sum(report.detection_latencies) / len(report.detected)
                    if report.detected
                    else 0.0
                ),
                election_bits=election_bits,
                new_root=(
                    election.new_root if election is not None else None
                ),
            )
        )
        if recorder.enabled:
            latest = trace.records[-1]
            epoch_span.annotate(
                crashes=latest.crashes,
                rejoins=latest.rejoins,
                rebuilt=latest.rebuilt,
                alive=latest.alive,
                attached=latest.attached,
            )
            recorder.observe("epoch.bits", latest.total_bits)
            recorder.gauge("population.alive", latest.alive)
            recorder.gauge("population.attached", latest.attached)
            for name, error in latest.errors.items():
                recorder.observe("answer.error", error, query=name)
            if latest.detected:
                recorder.observe(
                    "detect.latency_epochs", latest.detection_latency
                )
            for key, bits in after.per_protocol_bits.items():
                delta = bits - before.per_protocol_bits.get(key, 0)
                if delta:
                    recorder.count("ledger.bits", delta, protocol=key)
            # A delta burst: this epoch's query traffic jumped far above
            # its trailing median — worth a causal breadcrumb even when no
            # fault fired this epoch (a late detection often pays here).
            history = [r.query_bits for r in trace.records[-6:-1]]
            if len(history) >= 3:
                history.sort()
                baseline = history[len(history) // 2]
                if latest.query_bits > max(4 * baseline, baseline + 64):
                    recorder.event(
                        "delta.burst",
                        epoch=epoch,
                        query_bits=latest.query_bits,
                        baseline=baseline,
                    )
    return trace
