"""Continuous monitoring: incremental updates vs per-epoch recomputation.

Run with::

    python examples/continuous_monitoring.py

A 100-node sensor field reports a slowly drifting temperature-like reading.
The root keeps four standing queries alive — COUNT, MEDIAN, COUNT DISTINCT
and a threshold COUNTP — and the example drives the same stream through

* the incremental :class:`~repro.streaming.ContinuousQueryEngine`, where each
  subtree caches its summary and only retransmits ε-significant deltas, and
* the naive :class:`~repro.streaming.RecomputeEngine`, which re-runs a full
  convergecast every epoch (what repeating the one-shot protocols would do),

then prints the per-epoch answers next to the ground truth, and the total
bits/energy both engines spent — the incremental engine wins by an order of
magnitude on total bits while staying inside the same ε-approximation.
"""

from __future__ import annotations

from repro import (
    ContinuousQueryEngine,
    CountQuery,
    DistinctCountQuery,
    MedianQuery,
    PredicateCountQuery,
    RecomputeEngine,
    SensorNetwork,
    reference_median,
)
from repro.analysis.report import format_table
from repro.workloads import DriftStream

NUM_NODES = 100
EPOCHS = 60
DOMAIN = 1 << 16
EPSILON = 0.1


def build_engine(cls, **kwargs):
    network = SensorNetwork.from_items([0] * NUM_NODES, topology="grid")
    network.clear_items()
    engine = cls(network, **kwargs)
    engine.register("count", CountQuery())
    engine.register("median", MedianQuery(universe_size=DOMAIN + 1, compression=256))
    engine.register("distinct", DistinctCountQuery(num_registers=64))
    engine.register(
        "hot", PredicateCountQuery(lambda reading: reading > DOMAIN // 2, "x > mid")
    )
    return engine


def main() -> None:
    incremental = build_engine(ContinuousQueryEngine, epsilon=EPSILON)
    naive = build_engine(RecomputeEngine)
    # Two same-seed streams so both engines see identical readings.
    stream_a = DriftStream(NUM_NODES, max_value=DOMAIN, seed=42, drift_fraction=0.05)
    stream_b = DriftStream(NUM_NODES, max_value=DOMAIN, seed=42, drift_fraction=0.05)

    rows = []
    for epoch in range(EPOCHS):
        updates_a = stream_a.initial() if epoch == 0 else stream_a.step(epoch)
        updates_b = stream_b.initial() if epoch == 0 else stream_b.step(epoch)
        record = incremental.advance_epoch(updates_a)
        naive_record = naive.advance_epoch(updates_b)
        if epoch % 10 == 0 or epoch == EPOCHS - 1:
            items = incremental.network.all_items()
            rows.append([
                epoch,
                record.answers["median"],
                reference_median(items),
                record.answers["count"],
                round(record.answers["distinct"]),
                record.bits,
                naive_record.bits,
            ])

    print(format_table(
        ["epoch", "median (stream)", "median (truth)", "count",
         "distinct~", "bits (incr)", "bits (naive)"],
        rows,
        title=f"Continuous monitoring of a drifting field (N = {NUM_NODES})",
    ))

    inc_trace, naive_trace = incremental.trace, naive.trace
    savings = naive_trace.total_bits / inc_trace.total_bits
    print()
    print(f"total bits, incremental : {inc_trace.total_bits:>10,}")
    print(f"total bits, recompute   : {naive_trace.total_bits:>10,}")
    print(f"savings factor          : {savings:>10.1f}x")
    print(f"energy, incremental (mJ): {inc_trace.total_energy_nj / 1e6:>10.2f}")
    print(f"energy, recompute   (mJ): {naive_trace.total_energy_nj / 1e6:>10.2f}")
    print()
    print("Per-query guaranteed absolute error at the current scale:")
    for name, bound in sorted(incremental.error_bounds().items()):
        print(f"  {name:<9} ±{bound:.1f}")


if __name__ == "__main__":
    main()
