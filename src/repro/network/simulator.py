"""The sensor-network simulator.

:class:`SensorNetwork` ties together a topology, the sensor nodes with their
input items, a rooted spanning tree, a radio model and the communication
ledger.  Protocols interact with the network exclusively through

* :meth:`send` — transmit a payload of an explicitly declared size over a
  graph edge (charged to the ledger, filtered through the radio model),
* the batched primitives :meth:`send_batch` / :meth:`send_up_tree` /
  :meth:`send_down_tree` — plan a whole wave of synchronous-round
  transmissions and charge them in one ledger call, and
* the node objects — for *local* computation only.

This mirrors the paper's model (Section 2.1): the root can only initiate
protocols and read back results; all costs are incurred edge by edge.  The
two charging paths are bit-for-bit equivalent — the batched primitives exist
purely so the simulator scales to 100k-node fields; see
:attr:`SensorNetwork.execution` for how protocols pick a path.

Nodes can crash and recover: the network carries an *alive-mask*
(:meth:`SensorNetwork.kill_node` / :meth:`SensorNetwork.revive_node`)
honoured identically by both charging paths — any transmission touching a
dead node raises :class:`~repro.exceptions.DeadNodeError`.  The
fault-tolerance engine (:mod:`repro.faults`) drives the mask and keeps the
spanning tree spanning the alive, root-connected population.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import networkx as nx

from repro._util.validation import require_non_negative
from repro.exceptions import (
    ConfigurationError,
    DeadNodeError,
    DeliveryError,
    EmptyNetworkError,
    TopologyError,
)
from repro.network.accounting import CommunicationLedger, LedgerSnapshot
from repro.network.flat_tree import FlatTree
from repro.network.message import Message
from repro.network.node import SensorNode
from repro.network.radio import (
    DELIVERED_ONCE,
    DeliveryOutcome,
    RadioModel,
    ReliableRadio,
)
from repro.network.spanning_tree import SpanningTree, bfs_tree, bounded_degree_tree
from repro.network.topology import build_topology
from repro.telemetry.recorder import NULL_RECORDER, TelemetryRecorder, as_recorder

#: Valid values of :attr:`SensorNetwork.execution`.
#:
#: ``"batched"`` and ``"per-edge"`` select the charging path of the generic
#: tree protocols.  ``"vectorized"`` and ``"sharded"`` additionally make the
#: streaming layer run its fused numpy epoch pipeline
#: (:class:`repro.streaming.vector_engine.VectorStreamEngine`) — single
#: process or subtree-sharded multiprocessing respectively; generic one-shot
#: protocols treat both exactly like ``"batched"``, so every mode stays
#: bit-for-bit ledger-identical.
EXECUTION_MODES = ("batched", "per-edge", "vectorized", "sharded")


class SensorNetwork:
    """A simulated sensor network holding integer items at each node."""

    def __init__(
        self,
        graph: nx.Graph,
        root: int = 0,
        radio: RadioModel | None = None,
        tree: SpanningTree | None = None,
        degree_bound: int | None = 3,
        ledger: CommunicationLedger | None = None,
        execution: str = "batched",
        telemetry: TelemetryRecorder | None = None,
    ) -> None:
        if root not in graph:
            raise TopologyError(f"root {root} is not a node of the graph")
        if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
            raise TopologyError("sensor network graph must be connected")
        self.graph = graph
        self.root_id = root
        self.radio = radio if radio is not None else ReliableRadio()
        self.ledger = ledger if ledger is not None else CommunicationLedger()
        self._telemetry: TelemetryRecorder = NULL_RECORDER
        self.telemetry = telemetry
        self.execution = execution
        self._nodes: dict[int, SensorNode] = {
            node_id: SensorNode(node_id=node_id, is_root=(node_id == root))
            for node_id in graph.nodes()
        }
        self._sorted_ids: list[int] = sorted(self._nodes)
        self._dead: set[int] = set()
        self._flat_tree: FlatTree | None = None
        self._flat_tree_source: SpanningTree | None = None
        self.degree_bound = degree_bound
        if tree is not None:
            tree.validate(graph)
            self.tree = tree
        else:
            self.tree = self._build_tree()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_items(
        cls,
        items: Sequence[int],
        topology: str | nx.Graph = "grid",
        root: int = 0,
        radio: RadioModel | None = None,
        degree_bound: int | None = 3,
        seed: int | None = 0,
        execution: str = "batched",
        telemetry: TelemetryRecorder | None = None,
    ) -> "SensorNetwork":
        """Build a network with one item per node.

        ``topology`` is either a prebuilt graph with exactly ``len(items)``
        nodes or the name of a generator from
        :mod:`repro.network.topology`.
        """
        if len(items) == 0:
            raise EmptyNetworkError("cannot build a network from zero items")
        if isinstance(topology, nx.Graph):
            graph = topology
        else:
            graph = build_topology(topology, len(items), seed=seed)
        if graph.number_of_nodes() < len(items):
            raise ConfigurationError(
                f"topology has {graph.number_of_nodes()} nodes but "
                f"{len(items)} items were supplied"
            )
        network = cls(
            graph,
            root=root,
            radio=radio,
            degree_bound=degree_bound,
            execution=execution,
            telemetry=telemetry,
        )
        for node_id, value in zip(network._sorted_ids, items):
            network._nodes[node_id].add_item(value)
        return network

    @property
    def telemetry(self) -> TelemetryRecorder:
        """The recorder behind every profiling hook on this network.

        Defaults to the shared
        :data:`~repro.telemetry.NULL_RECORDER`, whose hooks are no-ops and
        never charge the ledger; install a
        :class:`~repro.telemetry.SpanTracer` (or assign ``None`` to switch
        back off) to light up the spans and counters across the whole
        pipeline.  Installing a recorder binds this network's ledger to it,
        so its spans meter the right counters.
        """
        return self._telemetry

    @telemetry.setter
    def telemetry(self, recorder: TelemetryRecorder | None) -> None:
        recorder = as_recorder(recorder)
        recorder.bind_ledger(self.ledger)
        self._telemetry = recorder

    @property
    def execution(self) -> str:
        """Which execution path protocols use — one of :data:`EXECUTION_MODES`.

        ``"batched"`` (default) charges whole sweeps at once; ``"per-edge"``
        is the simple reference implementation.  ``"vectorized"`` and
        ``"sharded"`` opt the streaming layer into the fused numpy epoch
        pipeline (single-process, or subtree-sharded worker processes);
        generic tree protocols treat them like ``"batched"``.  Every mode
        produces bit-for-bit identical ledgers (enforced by the equivalence
        test-suites).
        """
        return self._execution

    @execution.setter
    def execution(self, mode: str) -> None:
        if mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution mode {mode!r}; known: {EXECUTION_MODES}"
            )
        self._execution = mode

    def _build_tree(self) -> SpanningTree:
        if self.degree_bound is None:
            return bfs_tree(self.graph, self.root_id)
        return bounded_degree_tree(
            self.graph, self.root_id, max_degree=self.degree_bound
        )

    _UNSET = object()

    def rebuild_tree(self, degree_bound: object = _UNSET) -> SpanningTree:
        """Rebuild the spanning tree, optionally changing the degree bound.

        Pass ``degree_bound=None`` explicitly to switch to an unbounded BFS
        tree; omit the argument to keep the current bound.
        """
        if degree_bound is not SensorNetwork._UNSET:
            self.degree_bound = degree_bound  # type: ignore[assignment]
        self.tree = self._build_tree()
        return self.tree

    # ------------------------------------------------------------------ #
    # Node / item access
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def root(self) -> SensorNode:
        return self._nodes[self.root_id]

    @property
    def flat_tree(self) -> FlatTree:
        """Flat-array view of the current spanning tree (built lazily, cached).

        The cache is keyed on the tree object itself, so
        :meth:`rebuild_tree` — or assigning :attr:`tree` directly —
        invalidates it automatically.
        """
        if self._flat_tree is None or self._flat_tree_source is not self.tree:
            self._flat_tree = FlatTree.from_spanning_tree(self.tree)
            self._flat_tree_source = self.tree
        return self._flat_tree

    def set_tree(self, tree: SpanningTree, flat_tree: FlatTree | None = None) -> None:
        """Install ``tree``, optionally together with its prebuilt flat view.

        Assigning :attr:`tree` a *new* object invalidates the flat-view cache
        by identity; code that patches the current tree **in place** (the
        batched fault repair) must come through here instead, supplying the
        :meth:`FlatTree.rewire` result, so the cache cannot keep serving
        arrays of the pre-patch tree.  With ``flat_tree=None`` the cache is
        dropped and rebuilt lazily on next access.
        """
        if flat_tree is not None and flat_tree.root_id != tree.root:
            raise ConfigurationError(
                f"flat view is rooted at {flat_tree.root_id} but the tree at "
                f"{tree.root}"
            )
        self.tree = tree
        self._flat_tree = flat_tree
        self._flat_tree_source = tree if flat_tree is not None else None

    @property
    def node_map(self) -> Mapping[int, SensorNode]:
        """The node-id → :class:`SensorNode` table (treat as read-only)."""
        return self._nodes

    def node(self, node_id: int) -> SensorNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node id {node_id}") from None

    def nodes(self) -> Iterator[SensorNode]:
        """Iterate over nodes in id order."""
        nodes = self._nodes
        for node_id in self._sorted_ids:
            yield nodes[node_id]

    def node_ids(self) -> list[int]:
        """Node ids in ascending order (copied from a cache, never re-sorted)."""
        return list(self._sorted_ids)

    def assign_items(self, per_node_items: dict[int, Iterable[int]]) -> None:
        """Replace the items of the listed nodes (others keep theirs)."""
        for node_id, values in per_node_items.items():
            node = self.node(node_id)
            node.clear_items()
            node.add_items(values)

    def clear_items(self) -> None:
        """Remove every item from every node."""
        for node in self._nodes.values():
            node.clear_items()

    def all_items(self) -> list[int]:
        """Ground-truth multiset of all items, for verification only.

        Protocols must never call this — it bypasses the communication model.
        The test-suite and the experiment harness use it to check protocol
        outputs against the true answer.
        """
        items: list[int] = []
        for node in self.nodes():
            items.extend(node.items)
        return items

    def total_items(self) -> int:
        """Ground-truth value of N = |X| (verification only)."""
        return sum(node.item_count for node in self._nodes.values())

    def max_item(self) -> int:
        """Ground-truth max(X) (verification only)."""
        items = self.all_items()
        if not items:
            raise EmptyNetworkError("network holds no items")
        return max(items)

    def reset_scratch(self) -> None:
        """Clear per-protocol scratch state on every node."""
        for node in self._nodes.values():
            node.reset_scratch()

    # ------------------------------------------------------------------ #
    # Liveness (the alive-mask consumed by the fault-tolerance engine)
    # ------------------------------------------------------------------ #
    def is_alive(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently alive (crashed nodes are not)."""
        return node_id not in self._dead

    def kill_node(self, node_id: int, allow_root: bool = False) -> None:
        """Crash ``node_id``: it loses its readings and scratch state and can
        neither send nor receive until revived.

        Killing the root requires ``allow_root=True`` — it is the node wired
        to the user entity, so its death leaves the network without an
        observer until a :class:`~repro.faults.RootElection` promotes a
        successor; the guard keeps accidental direct kills loud while the
        fault engine's :class:`~repro.faults.RootCrash` event opts in
        explicitly.  Killing an already-dead node is a no-op.  The spanning
        tree is *not* patched here; that is
        :class:`~repro.faults.TreeRepair`'s job, so repair cost is charged
        explicitly rather than hidden in a setter.
        """
        if node_id == self.root_id and not allow_root:
            raise ConfigurationError(
                "the root cannot crash outside a scripted RootCrash; pass "
                "allow_root=True (or schedule repro.faults.RootCrash) to "
                "model root fail-over"
            )
        node = self.node(node_id)
        self._dead.add(node_id)
        node.clear_items()
        node.reset_scratch()

    def set_root(self, node_id: int) -> None:
        """Re-root the network's *identity* at ``node_id`` (must be alive).

        Updates :attr:`root_id` and the per-node ``is_root`` flags only —
        the spanning tree is left untouched, because re-rooting the tree is
        a charged operation (:class:`~repro.faults.RootElection` decides and
        bills it, :class:`~repro.faults.TreeRepair` installs the re-rooted
        tree).  Callers flipping the root outside that pipeline must install
        a tree rooted at ``node_id`` themselves before running protocols.
        """
        if node_id in self._dead:
            raise ConfigurationError(
                f"cannot root the network at dead node {node_id}"
            )
        node = self.node(node_id)
        self._nodes[self.root_id].is_root = False
        node.is_root = True
        self.root_id = node_id

    def revive_node(self, node_id: int) -> None:
        """Bring a crashed node back (with no items; rejoin supplies fresh ones)."""
        self.node(node_id)
        self._dead.discard(node_id)

    def alive_node_ids(self) -> list[int]:
        """Ids of currently-alive nodes, in ascending order."""
        if not self._dead:
            return list(self._sorted_ids)
        dead = self._dead
        return [node_id for node_id in self._sorted_ids if node_id not in dead]

    def dead_node_ids(self) -> list[int]:
        """Ids of currently-crashed nodes, in ascending order."""
        return sorted(self._dead)

    @property
    def num_alive(self) -> int:
        return len(self._nodes) - len(self._dead)

    def attached_node_ids(self) -> list[int]:
        """Nodes the current spanning tree spans (alive and root-connected)."""
        return sorted(self.tree.parent)

    def attached_items(self) -> list[int]:
        """Ground-truth multiset over tree-attached nodes (verification only).

        Under faults this — not :meth:`all_items` — is the answerable truth:
        readings at crashed or cut-off nodes cannot reach the root under any
        protocol, so answer accuracy is measured against the attached
        population.
        """
        nodes = self._nodes
        items: list[int] = []
        for node_id in sorted(self.tree.parent):
            items.extend(nodes[node_id].items)
        return items

    # ------------------------------------------------------------------ #
    # Communication
    # ------------------------------------------------------------------ #
    def send(
        self,
        sender: int,
        receiver: int,
        payload: object,
        size_bits: int,
        protocol: str = "unknown",
        require_edge: bool = True,
    ) -> Message:
        """Transmit ``payload`` from ``sender`` to ``receiver``.

        The transmission is filtered through the radio model (which may retry
        or duplicate it); every attempt is charged to the ledger.  The
        delivered :class:`Message` is returned so the caller can hand it to the
        receiving node's logic.
        """
        require_non_negative(size_bits, "size_bits")
        if sender not in self._nodes or receiver not in self._nodes:
            raise ConfigurationError(
                f"send between unknown nodes {sender} -> {receiver}"
            )
        if sender in self._dead or receiver in self._dead:
            raise DeadNodeError(
                f"send between dead nodes {sender} -> {receiver}; repair the "
                "tree before running protocols over a faulted network"
            )
        if require_edge and not self.graph.has_edge(sender, receiver):
            raise TopologyError(
                f"nodes {sender} and {receiver} are not neighbours; "
                "multi-hop delivery must be routed explicitly"
            )
        outcome = self.radio.transmit(sender, receiver)
        charged_attempts = max(outcome.attempts, outcome.copies_delivered)
        for _ in range(charged_attempts):
            self.ledger.charge(sender, receiver, size_bits, protocol=protocol)
        telemetry = self._telemetry
        if telemetry.enabled:
            telemetry.count("net.sends", 1, protocol=protocol)
            telemetry.count("net.messages", charged_attempts, protocol=protocol)
            telemetry.count(
                "net.bits", size_bits * charged_attempts, protocol=protocol
            )
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            size_bits=size_bits,
            protocol=protocol,
            metadata={"copies_delivered": outcome.copies_delivered},
        )
        return message

    def send_up(
        self, node_id: int, payload: object, size_bits: int, protocol: str = "unknown"
    ) -> Message | None:
        """Send from ``node_id`` to its tree parent (``None`` at the root)."""
        parent = self.tree.parent[node_id]
        if parent is None:
            return None
        return self.send(node_id, parent, payload, size_bits, protocol=protocol)

    def send_down(
        self, node_id: int, payload: object, size_bits: int, protocol: str = "unknown"
    ) -> list[Message]:
        """Send the same payload from ``node_id`` to each of its tree children."""
        return [
            self.send(node_id, child, payload, size_bits, protocol=protocol)
            for child in self.tree.children[node_id]
        ]

    # ------------------------------------------------------------------ #
    # Batched communication
    # ------------------------------------------------------------------ #
    def send_batch(
        self,
        links: Sequence[tuple[int, int]],
        sizes: Sequence[int],
        protocol: str = "unknown",
        require_edge: bool = True,
    ) -> list[int]:
        """Transmit one logical message per ``(sender, receiver)`` link.

        The batched counterpart of :meth:`send`: the whole batch is filtered
        through the radio model *in link order* (a seeded lossy radio
        consumes randomness exactly as per-link sends would) and charged to
        the ledger in one :meth:`CommunicationLedger.charge_batch` call, so
        the resulting ledger is bit-for-bit identical to the per-edge path.
        Payload objects are not simulated here — batched callers hand
        payloads to receivers themselves — so the return value is the
        ``copies_delivered`` count per link.
        """
        telemetry = self._telemetry
        if not telemetry.enabled:
            return self._send_batch_impl(links, sizes, protocol, require_edge)
        # Profiling hook: meter the batch off the ledger itself (exact even
        # on the partial-charge failure path) instead of re-deriving sizes.
        ledger = self.ledger
        bits_before = ledger.total_bits
        messages_before = ledger.total_messages
        try:
            return self._send_batch_impl(links, sizes, protocol, require_edge)
        finally:
            telemetry.count("net.batches", 1, protocol=protocol)
            telemetry.count("net.links", len(links), protocol=protocol)
            telemetry.count(
                "net.messages",
                ledger.total_messages - messages_before,
                protocol=protocol,
            )
            telemetry.count(
                "net.bits", ledger.total_bits - bits_before, protocol=protocol
            )

    def _send_batch_impl(
        self,
        links: Sequence[tuple[int, int]],
        sizes: Sequence[int],
        protocol: str,
        require_edge: bool,
    ) -> list[int]:
        if len(links) != len(sizes):
            raise ConfigurationError(
                f"send_batch got {len(links)} links but {len(sizes)} sizes"
            )
        nodes = self._nodes
        dead = self._dead
        if require_edge:
            has_edge = self.graph.has_edge
            for sender, receiver in links:
                if sender not in nodes or receiver not in nodes:
                    raise ConfigurationError(
                        f"send between unknown nodes {sender} -> {receiver}"
                    )
                if sender in dead or receiver in dead:
                    raise DeadNodeError(
                        f"send between dead nodes {sender} -> {receiver}; "
                        "repair the tree before running protocols"
                    )
                if not has_edge(sender, receiver):
                    raise TopologyError(
                        f"nodes {sender} and {receiver} are not neighbours; "
                        "multi-hop delivery must be routed explicitly"
                    )
        else:
            # Endpoints are validated even when the edge check is waived
            # (matching :meth:`send`) so a bogus id fails fast instead of
            # becoming a phantom ledger entry.
            for sender, receiver in links:
                if sender not in nodes or receiver not in nodes:
                    raise ConfigurationError(
                        f"send between unknown nodes {sender} -> {receiver}"
                    )
                if sender in dead or receiver in dead:
                    raise DeadNodeError(
                        f"send between dead nodes {sender} -> {receiver}; "
                        "repair the tree before running protocols"
                    )
        if self.ledger.per_node_budget_bits is not None:
            # Budget enforcement must interleave radio draws and charges
            # per link, so both the BudgetExceededError raise point and the
            # radio RNG state at that point match the per-edge path exactly.
            transmit = self.radio.transmit
            charge = self.ledger.charge
            copies_delivered: list[int] = []
            for (sender, receiver), size in zip(links, sizes):
                outcome = transmit(sender, receiver)
                copies = outcome.copies_delivered
                for _ in range(max(outcome.attempts, copies)):
                    charge(sender, receiver, size, protocol=protocol)
                copies_delivered.append(copies)
            return copies_delivered
        if type(self.radio) is ReliableRadio:
            # Perfect links need no radio pass at all: one attempt, one copy.
            self.ledger.charge_batch(links, sizes, None, protocol=protocol)
            return [1] * len(links)
        try:
            outcomes = self.radio.filter_batch(links)
        except DeliveryError as error:
            # Ledger equivalence on the failure path too: the per-edge loop
            # charges every link delivered before the failing one (and not
            # the failing link itself, whose transmit raised before its
            # charge), so charge exactly that prefix before re-raising.
            delivered = getattr(error, "outcomes_before_failure", None)
            if delivered:
                prefix = len(delivered)
                self._charge_outcomes(
                    links[:prefix], sizes[:prefix], delivered, protocol
                )
            raise
        return self._charge_outcomes(links, sizes, outcomes, protocol)

    def _charge_outcomes(
        self,
        links: Sequence[tuple[int, int]],
        sizes: Sequence[int],
        outcomes: Sequence[DeliveryOutcome],
        protocol: str,
    ) -> list[int]:
        """Charge filtered radio outcomes to the ledger; return copies per link."""
        charged: list[int] = []
        copies_delivered: list[int] = []
        append_charged = charged.append
        append_copies = copies_delivered.append
        all_once = True
        for outcome in outcomes:
            if outcome is DELIVERED_ONCE:  # the overwhelmingly common case
                append_charged(1)
                append_copies(1)
            else:
                all_once = False
                copies = outcome.copies_delivered
                append_charged(max(outcome.attempts, copies))
                append_copies(copies)
        self.ledger.charge_batch(
            links, sizes, None if all_once else charged, protocol=protocol
        )
        return copies_delivered

    def send_up_tree(
        self, sends: Sequence[tuple[int, int]], protocol: str = "unknown"
    ) -> list[int]:
        """Charge one upward tree transmission per ``(node_id, size_bits)`` pair.

        Spanning-tree edges were validated against the graph at construction,
        so no per-link edge checks are repeated.  Returns the
        ``copies_delivered`` count per send, in order.
        """
        parent_of = self.tree.parent
        links: list[tuple[int, int]] = []
        sizes: list[int] = []
        try:
            for node_id, size_bits in sends:
                parent = parent_of[node_id]
                if parent is None:
                    raise ConfigurationError(
                        f"node {node_id} is the root; it has no parent to send to"
                    )
                links.append((node_id, parent))
                sizes.append(size_bits)
        except KeyError as error:
            raise ConfigurationError(f"unknown node id {error.args[0]}") from None
        return self.send_batch(links, sizes, protocol=protocol, require_edge=False)

    def send_down_tree(
        self, sends: Sequence[tuple[int, int]], protocol: str = "unknown"
    ) -> list[tuple[int, int]]:
        """Charge one downward transmission per child, for each ``(node_id,
        size_bits)`` pair — the same payload fanned out to every tree child,
        in child order.

        Returns ``(child_id, copies_delivered)`` pairs covering the whole
        batch, in transmission order.
        """
        children_of = self.tree.children
        links: list[tuple[int, int]] = []
        sizes: list[int] = []
        try:
            for node_id, size_bits in sends:
                for child in children_of[node_id]:
                    links.append((node_id, child))
                    sizes.append(size_bits)
        except KeyError as error:
            raise ConfigurationError(f"unknown node id {error.args[0]}") from None
        copies = self.send_batch(links, sizes, protocol=protocol, require_edge=False)
        return [(link[1], count) for link, count in zip(links, copies)]

    # ------------------------------------------------------------------ #
    # Measurement helpers
    # ------------------------------------------------------------------ #
    def reset_ledger(self) -> None:
        """Clear the communication counters (items and tree are preserved)."""
        self.ledger.reset()
        self.radio.reset()

    def measure(self, run: Callable[["SensorNetwork"], object]) -> tuple[object, "LedgerSnapshot"]:
        """Run a protocol callable against a fresh ledger and return (result, snapshot)."""
        self.reset_ledger()
        result = run(self)
        return result, self.ledger.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"SensorNetwork(nodes={self.num_nodes}, root={self.root_id}, "
            f"items={self.total_items()}, tree_height={self.tree.height})"
        )
