"""E7 — Theorem 5.1: exact COUNT DISTINCT needs Ω(n) bits; approximate is loglog.

Reproduces both sides of Section 5:

* on Set-Disjointness-shaped instances (all values distinct, line topology)
  the exact protocol's per-node traffic — and specifically the traffic across
  the A/B cut of the reduction — grows linearly with n, while the LogLog
  protocol stays flat;
* the reduction itself decides disjointness correctly when driven by the
  exact protocol and fails on overlap-of-one instances when driven by the
  approximate one (the "a difference of one flips the answer" remark).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_count_distinct_sweep
from repro.analysis.metrics import fit_growth_exponent
from repro.analysis.report import format_table
from repro.distinct import (
    ApproxDistinctCountProtocol,
    ExactDistinctCountProtocol,
    make_disjoint_instance,
    make_intersecting_instance,
    solve_disjointness_via_count_distinct,
)

SIZES = [64, 256, 1024, 4096]


def test_count_distinct_scaling(benchmark):
    records = run_once(benchmark, run_count_distinct_sweep, SIZES)
    rows = [
        [
            record.protocol,
            record.num_items,
            record.extra["true_distinct"],
            round(record.answer, 1),
            record.max_node_bits,
        ]
        for record in records
    ]
    print()
    print(format_table(
        ["protocol", "n", "true distinct", "answer", "max bits/node"],
        rows,
        title="E7  Theorem 5.1 — COUNT DISTINCT, exact vs approximate",
    ))

    exact_points = [
        (r.num_items, r.max_node_bits) for r in records if "exact" in r.protocol
    ]
    approx_points = [
        (r.num_items, r.max_node_bits) for r in records if "loglog" in r.protocol
    ]
    exact_exponent, _ = fit_growth_exponent(*zip(*exact_points))
    approx_exponent, _ = fit_growth_exponent(*zip(*approx_points))
    benchmark.extra_info["exact_power_law_exponent"] = round(exact_exponent, 3)
    benchmark.extra_info["approx_power_law_exponent"] = round(approx_exponent, 3)
    # The paper's contrast: linear versus (essentially) constant.
    assert exact_exponent > 0.8
    assert approx_exponent < 0.2
    # Every exact answer is exact.
    assert all(
        r.answer == r.extra["true_distinct"] for r in records if "exact" in r.protocol
    )


def test_disjointness_reduction(benchmark):
    def sweep():
        results = []
        for set_size in (32, 128, 512):
            disjoint = make_disjoint_instance(set_size, seed=1)
            near = make_intersecting_instance(set_size, overlap=1, seed=1)
            exact = ExactDistinctCountProtocol()
            approx = ApproxDistinctCountProtocol(num_registers=64, seed=2)
            exact_disjoint = solve_disjointness_via_count_distinct(disjoint, exact)
            exact_near = solve_disjointness_via_count_distinct(near, exact)
            approx_near = solve_disjointness_via_count_distinct(near, approx, tolerance=0.02)
            results.append(
                (set_size, exact_disjoint, exact_near, approx_near)
            )
        return results

    results = run_once(benchmark, sweep)
    rows = []
    for set_size, exact_disjoint, exact_near, approx_near in results:
        rows.append([
            2 * set_size,
            exact_disjoint.correct and exact_near.correct,
            exact_disjoint.cut_bits,
            approx_near.correct,
            approx_near.cut_bits,
        ])
    print()
    print(format_table(
        ["n (nodes)", "exact decides 2SD?", "exact cut bits", "approx decides 2SD?", "approx cut bits"],
        rows,
        title="E7b  the Set-Disjointness reduction of Theorem 5.1",
    ))

    # The exact protocol always decides 2SD, and its cut traffic grows linearly.
    assert all(row[1] for row in rows)
    cut_bits = [row[2] for row in rows]
    assert cut_bits[-1] > 8 * cut_bits[0]
    # The approximate protocol's cut traffic stays flat — it escapes the lower
    # bound precisely because it cannot decide near-disjoint instances.
    approx_cuts = [row[4] for row in rows]
    assert max(approx_cuts) <= 1.3 * min(approx_cuts)
    benchmark.extra_info["exact_cut_bits"] = cut_bits
    benchmark.extra_info["approx_cut_bits"] = approx_cuts
