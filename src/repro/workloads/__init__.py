"""Workload generators: one-shot snapshots and time-evolving streams.

* :mod:`repro.workloads.generators` — single-snapshot value distributions
  used by the one-shot protocols' tests, examples and benchmarks.
* :mod:`repro.workloads.streams` — stateful per-epoch update processes
  (drift, burst, churn, seasonal) that drive the continuous-query engine in
  :mod:`repro.streaming`.
"""

from repro.workloads.generators import (
    WORKLOAD_GENERATORS,
    adversarial_near_median_values,
    all_equal_values,
    bimodal_values,
    clustered_values,
    correlated_field_values,
    generate_workload,
    sequential_values,
    uniform_values,
    zipf_values,
)
from repro.workloads.streams import (
    STREAM_WORKLOADS,
    BurstStream,
    ChurnStream,
    DriftStream,
    SeasonalStream,
    StreamWorkload,
    make_stream,
)

__all__ = [
    "WORKLOAD_GENERATORS",
    "adversarial_near_median_values",
    "all_equal_values",
    "bimodal_values",
    "clustered_values",
    "correlated_field_values",
    "generate_workload",
    "sequential_values",
    "uniform_values",
    "zipf_values",
    "STREAM_WORKLOADS",
    "StreamWorkload",
    "DriftStream",
    "BurstStream",
    "ChurnStream",
    "SeasonalStream",
    "make_stream",
]
