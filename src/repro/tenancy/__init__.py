"""Multi-tenant standing-query service: shared plans, per-tenant ledgers.

One :class:`~repro.streaming.ContinuousQueryEngine` serves one client;
production means many tenants posting *overlapping* standing queries.
This subpackage turns Q overlapping registrations into one shared summary
plan — in the one-for-all spirit of robust-computation batching — so the
network pays for each distinct aggregate once:

* :mod:`repro.tenancy.planner` — :class:`QueryPlanner` deduplicates
  registrations by :func:`plan_signature` into shared **legs** (one
  charged convergecast each), with ``gold`` / ``standard`` /
  ``best_effort`` admission tiers that reject or degrade new legs under a
  bits budget;
* :mod:`repro.tenancy.ledger` — :class:`TenantLedgerSplit`, the
  per-tenant :class:`~repro.network.CommunicationLedger` split whose
  tenant columns sum *exactly* to the shared plan's charged bits;
* :mod:`repro.tenancy.engine` — :class:`MultiTenantEngine`, the runtime:
  one underlying engine (batched / per-edge / vectorized / sharded via
  :func:`~repro.streaming.engine_for`), per-epoch splits, per-tenant
  answers derived at the root from the shared summaries.

Quick start::

    from repro import CountQuery, MedianQuery, SensorNetwork
    from repro.tenancy import MultiTenantEngine

    network = SensorNetwork.from_items([0] * 100, topology="grid")
    service = MultiTenantEngine(network, epsilon=0.1)
    service.register("acme", "fleet_count", CountQuery())
    service.register("globex", "fleet_count", CountQuery())   # shared leg
    service.register("acme", "median", MedianQuery(universe_size=1 << 16))
    service.advance_epoch({0: [7], 1: [9]})
    print(service.tenant_answers("acme"), service.split.columns())

See ``docs/MULTITENANT.md`` for the planner model, the admission tiers and
the ledger-split invariant; ``benchmarks/bench_multitenant.py`` measures
the ≥5x sublinear total-bits growth for overlapping query sets.
"""

from repro.tenancy.engine import MultiTenantEngine
from repro.tenancy.ledger import TenantLedgerSplit
from repro.tenancy.planner import (
    ADMISSION_STATUSES,
    TIERS,
    AdmissionDecision,
    QueryPlanner,
    SharedLeg,
    degrade_target,
    estimate_leg_bits,
    plan_signature,
)

__all__ = [
    "MultiTenantEngine",
    "TenantLedgerSplit",
    "QueryPlanner",
    "SharedLeg",
    "AdmissionDecision",
    "ADMISSION_STATUSES",
    "TIERS",
    "plan_signature",
    "estimate_leg_bits",
    "degrade_target",
]
