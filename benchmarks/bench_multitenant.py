"""E14 — multi-tenant dedup: one shared plan vs Q independent engines.

The tenancy layer's claim is that total communication for Q overlapping
standing queries should grow with the number of *distinct aggregates*, not
the number of tenants.  This benchmark registers Q tenant queries drawn
from four signature families (COUNT / q-digest / distinct / COUNTP) on one
:class:`~repro.tenancy.MultiTenantEngine` and on Q dedicated
single-tenant engines over identically-seeded networks and streams, then
checks:

* the shared plan ships ≥ 5× fewer total bits than the Q independent
  engines (the acceptance criterion; with Q tenants over L legs the
  measured ratio is Q/L, well above the floor at the default sizes);
* every tenant's per-epoch answer is number-identical to its dedicated
  engine's — dedup changes *who pays*, never *what is answered*;
* the per-tenant ledger columns sum exactly to the shared plan's charged
  bits after every epoch (the decomposition invariant).

Sizes come from ``REPRO_TENANT_NODES`` / ``REPRO_TENANT_QUERIES`` /
``REPRO_TENANT_EPOCHS`` so CI can smoke the same assertions at a smaller
point (the acceptance size is n = 10,000, Q = 32).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import (
    emit_bench_json,
    emit_telemetry_jsonl,
    phases_from_tracer,
    run_once,
)
from repro.analysis.experiments import run_multitenant_study
from repro.analysis.report import format_table
from repro.telemetry import SpanTracer

NUM_NODES = int(os.environ.get("REPRO_TENANT_NODES", "10000"))
TENANTS = int(os.environ.get("REPRO_TENANT_QUERIES", "32"))
EPOCHS = int(os.environ.get("REPRO_TENANT_EPOCHS", "6"))
EPSILON = 0.1


def test_multitenant_shared_plan_vs_independent(benchmark):
    started = time.perf_counter()
    # Instrument the shared arm: the bench JSON gains the per-phase
    # breakdown (epoch sweeps + tenant.split spans) and CI archives it.
    tracer = SpanTracer()
    comparison = run_once(
        benchmark,
        run_multitenant_study,
        num_nodes=NUM_NODES,
        epochs=EPOCHS,
        tenants=TENANTS,
        workload="drift",
        epsilon=EPSILON,
        seed=0,
        telemetry=tracer,
    )

    rows = [
        ["tenant queries", comparison.tenants],
        ["shared legs", comparison.legs],
        ["shared plan bits", comparison.shared_bits],
        ["independent bits", comparison.independent_bits],
        ["savings factor", round(comparison.savings_factor, 2)],
        ["answers identical", comparison.answers_match],
        ["decomposition exact", comparison.decomposition_holds],
    ]
    print()
    print(format_table(
        ["measure", "value"],
        rows,
        title=(
            f"E14  multi-tenant dedup, drift workload "
            f"(N = {NUM_NODES}, Q = {TENANTS}, {EPOCHS} epochs)"
        ),
    ))

    benchmark.extra_info["savings_factor"] = round(comparison.savings_factor, 2)
    benchmark.extra_info["legs"] = comparison.legs
    benchmark.extra_info["shared_bits"] = comparison.shared_bits
    benchmark.extra_info["independent_bits"] = comparison.independent_bits

    # Acceptance: Q overlapping queries cost ≥ 5× less than Q engines,
    # with no tenant able to tell the difference from its answers.
    assert comparison.savings_factor >= 5.0
    assert comparison.answers_match
    assert comparison.decomposition_holds
    # The dedup itself: far fewer legs than tenants (four families here).
    assert comparison.legs < comparison.tenants

    emit_bench_json(
        "multitenant",
        n=NUM_NODES,
        wall_clock_s=time.perf_counter() - started,
        bits=comparison.shared_bits,
        metrics={
            "multitenant_savings": {
                "value": round(comparison.savings_factor, 2),
                "floor": 5.0,
            },
        },
        phases=phases_from_tracer(tracer),
    )
    emit_telemetry_jsonl("multitenant", tracer)
