"""Flajolet–Martin probabilistic counting (PCSA).

The original probabilistic-counting sketch: each of ``m`` bitmaps records
*every* rank observed (not just the maximum), and the estimate is derived from
the position of the lowest unset bit.  It uses ``O(log N)`` bits per bitmap —
asymptotically more than LogLog's ``O(log log N)`` — which is precisely the
gap the paper exploits; the benchmarks show the difference in transmitted
bits directly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro._util.validation import require_positive
from repro.sketches.hashing import hash64, leading_rank

# Correction factor phi from Flajolet & Martin (1985).
_PHI = 0.77351


@dataclass
class FlajoletMartinSketch:
    """A PCSA sketch with ``num_bitmaps`` bitmaps of ``bitmap_width`` bits."""

    num_bitmaps: int = 64
    bitmap_width: int = 32
    salt: int = 0
    bitmaps: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.num_bitmaps, "num_bitmaps")
        require_positive(self.bitmap_width, "bitmap_width")
        if self.num_bitmaps & (self.num_bitmaps - 1):
            raise ValueError("num_bitmaps must be a power of two")
        if not self.bitmaps:
            self.bitmaps = [0] * self.num_bitmaps
        if len(self.bitmaps) != self.num_bitmaps:
            raise ValueError("bitmap list length does not match num_bitmaps")

    def _add_hash(self, hashed: int) -> None:
        index = hashed & (self.num_bitmaps - 1)
        remainder = hashed >> (self.num_bitmaps.bit_length() - 1)
        rank = leading_rank(remainder, width=64 - (self.num_bitmaps.bit_length() - 1))
        rank = min(rank, self.bitmap_width)
        self.bitmaps[index] |= 1 << (rank - 1)

    def add_item(self, value: int) -> None:
        """Add a value by hash (distinct counting)."""
        self._add_hash(hash64(value, salt=self.salt))

    def add_random(self, rng: random.Random) -> None:
        """Add a fresh random contribution (multiset counting)."""
        self._add_hash(rng.getrandbits(64))

    def merge(self, other: "FlajoletMartinSketch") -> "FlajoletMartinSketch":
        """Bitmap-wise OR combination (order/duplicate insensitive)."""
        if (
            other.num_bitmaps != self.num_bitmaps
            or other.bitmap_width != self.bitmap_width
            or other.salt != self.salt
        ):
            raise ValueError("incompatible sketches")
        merged = FlajoletMartinSketch(
            num_bitmaps=self.num_bitmaps,
            bitmap_width=self.bitmap_width,
            salt=self.salt,
        )
        merged.bitmaps = [a | b for a, b in zip(self.bitmaps, other.bitmaps)]
        return merged

    def _lowest_unset_position(self, bitmap: int) -> int:
        position = 0
        while bitmap & (1 << position):
            position += 1
        return position

    def estimate(self) -> float:
        """PCSA estimate ``m / phi * 2^(mean lowest-unset-bit position)``."""
        if all(bitmap == 0 for bitmap in self.bitmaps):
            return 0.0
        mean_position = (
            sum(self._lowest_unset_position(bitmap) for bitmap in self.bitmaps)
            / self.num_bitmaps
        )
        return (self.num_bitmaps / _PHI) * (2.0 ** mean_position)

    @property
    def relative_sigma(self) -> float:
        """Relative standard error ≈ 0.78 / sqrt(m)."""
        return 0.78 / math.sqrt(self.num_bitmaps)

    def serialized_bits(self, max_expected_count: int = 1 << 30) -> int:
        """Bits to transmit: ``m`` bitmaps of ``O(log N)`` bits — not loglog."""
        del max_expected_count  # width is fixed, that is the point
        return self.num_bitmaps * self.bitmap_width
