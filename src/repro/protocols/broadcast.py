"""Broadcast: root-to-leaves dissemination over the spanning tree.

Every protocol the root initiates starts with a small broadcast — a request
identifier, a predicate description, the intermediate median estimate that
APX_MEDIAN2 pushes down between zoom-in iterations.  Each tree edge carries
one copy of the payload; with a bounded-degree tree a node therefore sends and
receives ``O(size_bits)`` bits, which is what Fact 2.1 charges for the request
phase of the primitive protocols.

As with :mod:`~repro.protocols.convergecast`, two execution paths implement
the same traversal: the batched path (default) expands the whole top-down
sweep into one :meth:`~repro.network.SensorNetwork.send_down_tree` call,
while the per-edge path sends edge by edge.  They charge the same edges in
the same order and are bit-for-bit ledger-equivalent.
"""

from __future__ import annotations

from typing import Any

from repro._util.validation import require_non_negative
from repro.network.simulator import SensorNetwork


def broadcast(
    network: SensorNetwork,
    payload: Any,
    size_bits: int,
    protocol: str = "broadcast",
) -> dict[int, Any]:
    """Send ``payload`` from the root to every node along tree edges.

    Returns a map of node id → delivered payload (identical objects for a
    reliable radio; the map exists so callers can model per-node delivery if a
    lossy radio duplicates or mutates messages in the future).
    The number of synchronous rounds consumed equals the tree height.
    """
    require_non_negative(size_bits, "size_bits")
    if network.execution == "per-edge":
        return _broadcast_per_edge(network, payload, size_bits, protocol)
    return _broadcast_batched(network, payload, size_bits, protocol)


def _broadcast_batched(
    network: SensorNetwork, payload: Any, size_bits: int, protocol: str
) -> dict[int, Any]:
    flat = network.flat_tree
    # flat.down_links lists every parent→child edge in exactly the order the
    # per-edge top-down sweep transmits them.
    network.send_batch(
        flat.down_links,
        [size_bits] * len(flat.down_links),
        protocol=protocol,
        require_edge=False,
    )
    # The tree spans the graph, so every node receives the payload.
    delivered = {node_id: payload for node_id in flat.node_ids}
    network.ledger.advance_round(flat.height)
    return delivered


def _broadcast_per_edge(
    network: SensorNetwork, payload: Any, size_bits: int, protocol: str
) -> dict[int, Any]:
    tree = network.tree
    delivered: dict[int, Any] = {network.root_id: payload}
    for node_id in tree.nodes_top_down():
        if node_id not in delivered:
            continue
        for child in tree.children[node_id]:
            message = network.send(
                node_id, child, delivered[node_id], size_bits, protocol=protocol
            )
            delivered[child] = message.payload
    network.ledger.advance_round(tree.height)
    return delivered
