"""Tests for the continuous-query streaming engine and its substrates."""

from __future__ import annotations

import pytest

from repro.core.definitions import rank
from repro.exceptions import ConfigurationError
from repro.network.radio import DuplicatingRadio
from repro.network.simulator import SensorNetwork
from repro.network.topology import line_topology
from repro.protocols.epoch_convergecast import epoch_convergecast
from repro.streaming import (
    ContinuousQueryEngine,
    CountQuery,
    CountSummary,
    DistinctCountQuery,
    DistinctSummary,
    MedianQuery,
    PredicateCountQuery,
    QuantileSummary,
    RecomputeEngine,
    run_stream,
)
from repro.workloads.streams import (
    STREAM_WORKLOADS,
    BurstStream,
    ChurnStream,
    DriftStream,
    SeasonalStream,
    make_stream,
)

DOMAIN = 1 << 12


def empty_network(num_nodes: int, topology=None) -> SensorNetwork:
    """A network with the right shape and no items (streams fill it)."""
    network = SensorNetwork.from_items(
        [0] * num_nodes,
        topology=topology if topology is not None else "grid",
    )
    network.clear_items()
    return network


def standard_engine(num_nodes: int = 25, epsilon: float = 0.1) -> ContinuousQueryEngine:
    network = empty_network(num_nodes)
    engine = ContinuousQueryEngine(network, epsilon=epsilon)
    engine.register("count", CountQuery())
    engine.register("median", MedianQuery(universe_size=DOMAIN + 1, compression=256))
    return engine


# --------------------------------------------------------------------------- #
# Stream workloads
# --------------------------------------------------------------------------- #
class TestStreamWorkloads:
    def test_registry_and_factory(self):
        assert set(STREAM_WORKLOADS) == {"drift", "burst", "churn", "seasonal"}
        stream = make_stream("drift", 10, max_value=100, seed=3)
        assert isinstance(stream, DriftStream)

    def test_unknown_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            make_stream("tidal", 10)

    def test_streams_are_deterministic_in_seed(self):
        for cls in (DriftStream, BurstStream, ChurnStream, SeasonalStream):
            a = cls(20, max_value=DOMAIN, seed=7)
            b = cls(20, max_value=DOMAIN, seed=7)
            assert a.initial() == b.initial()
            for epoch in range(1, 8):
                assert a.step(epoch) == b.step(epoch)

    def test_drift_changes_bounded_fraction(self):
        stream = DriftStream(100, max_value=DOMAIN, seed=0, drift_fraction=0.1)
        stream.initial()
        changed = [len(stream.step(epoch)) for epoch in range(1, 30)]
        assert 0 < sum(changed) / len(changed) < 30  # ~10 expected

    def test_churn_produces_offline_nodes_and_pins_root(self):
        stream = ChurnStream(50, max_value=DOMAIN, seed=2, churn_rate=0.3)
        stream.initial()
        saw_offline = False
        for epoch in range(1, 10):
            updates = stream.step(epoch)
            assert 0 not in updates  # root never churns
            saw_offline = saw_offline or any(items == [] for items in updates.values())
        assert saw_offline

    def test_burst_is_quiet_between_bursts(self):
        stream = BurstStream(
            40, max_value=DOMAIN, seed=1, burst_period=10, burst_length=2
        )
        stream.initial()
        sizes = [len(stream.step(epoch)) for epoch in range(1, 21)]
        assert sizes.count(0) >= 14  # quiet most epochs
        assert max(sizes) >= 4  # but bursts move a subset

    def test_seasonal_moves_most_nodes_every_epoch(self):
        stream = SeasonalStream(30, max_value=DOMAIN, seed=4, period=12)
        stream.initial()
        sizes = [len(stream.step(epoch)) for epoch in range(1, 6)]
        assert min(sizes) > 15

    def test_churn_event_mode_mirrors_compat_mode(self):
        """One seed, two fault models: the same churn trajectory either way."""
        from repro.faults.events import NodeCrash, NodeRejoin

        compat = ChurnStream(40, max_value=DOMAIN, seed=9, churn_rate=0.3)
        explicit = ChurnStream(
            40, max_value=DOMAIN, seed=9, churn_rate=0.3, emit_events=True
        )
        assert compat.initial() == explicit.initial()
        assert explicit.pop_fault_events() == []  # nothing before a step
        for epoch in range(1, 8):
            compat_updates = compat.step(epoch)
            explicit_updates = explicit.step(epoch)
            events = explicit.pop_fault_events()
            # Event mode hands churned nodes to the fault engine instead of
            # returning silent item-list updates.
            assert explicit_updates == {}
            offline = {n for n, items in compat_updates.items() if items == []}
            rejoined = {n: items for n, items in compat_updates.items() if items}
            assert {e.node_id for e in events if isinstance(e, NodeCrash)} == offline
            assert {
                e.node_id: list(e.items)
                for e in events
                if isinstance(e, NodeRejoin)
            } == rejoined
            assert compat.online_count() == explicit.online_count()
        assert explicit.pop_fault_events() == []  # popping drains the buffer


# --------------------------------------------------------------------------- #
# Epoch convergecast
# --------------------------------------------------------------------------- #
class TestEpochConvergecast:
    def test_empty_dirty_set_costs_nothing(self):
        network = empty_network(9)
        before = network.ledger.snapshot()
        stats = epoch_convergecast(network, set(), lambda n, r: None)
        after = network.ledger.snapshot()
        assert stats.rounds == stats.activated == stats.transmissions == 0
        assert after.total_bits == before.total_bits
        assert after.rounds == before.rounds

    def test_single_dirty_leaf_activates_only_its_root_path(self):
        network = SensorNetwork.from_items(
            list(range(8)), topology=line_topology(8)
        )
        leaf = 7
        activated = []

        def decide(node_id, received):
            activated.append(node_id)
            return ("payload", 8)

        stats = epoch_convergecast(network, {leaf}, decide)
        assert activated == list(network.tree.path_to_root(leaf))
        # Every activated node except the root transmits.
        assert stats.transmissions == len(activated) - 1
        assert network.ledger.total_bits == 8 * stats.transmissions

    def test_suppression_stops_propagation(self):
        network = SensorNetwork.from_items(
            list(range(8)), topology=line_topology(8)
        )
        activated = []

        def decide(node_id, received):
            activated.append(node_id)
            return None  # always suppress

        stats = epoch_convergecast(network, {7}, decide)
        assert activated == [7]  # the parent never hears about it
        assert stats.transmissions == 0
        assert stats.suppressions == 1
        assert network.ledger.total_bits == 0


# --------------------------------------------------------------------------- #
# Engine registration
# --------------------------------------------------------------------------- #
class TestEngineRegistration:
    def test_duplicate_name_rejected(self):
        engine = standard_engine()
        with pytest.raises(ConfigurationError):
            engine.register("count", CountQuery())

    def test_advance_without_queries_rejected(self):
        engine = ContinuousQueryEngine(empty_network(9))
        with pytest.raises(ConfigurationError):
            engine.advance_epoch({})

    def test_registration_broadcast_is_charged(self):
        network = empty_network(9)
        engine = ContinuousQueryEngine(network)
        engine.register("count", CountQuery())
        label = "stream:count:register"
        assert network.ledger.per_protocol_bits().get(label, 0) > 0

    def test_answers_empty_before_first_epoch(self):
        engine = standard_engine()
        assert engine.answers() == {}
        assert engine.epoch == 0


# --------------------------------------------------------------------------- #
# Epoch advance and answer correctness
# --------------------------------------------------------------------------- #
class TestEpochAnswers:
    def _check_answers(self, engine, epsilon):
        items = engine.network.all_items()
        n = len(items)
        answers = engine.answers()
        assert abs(answers["count"] - n) <= max(1.0, epsilon * n)
        if n and answers["median"] is not None:
            budget = engine.queries()["median"].error_bound(epsilon, float(n))
            median_rank = rank(items, answers["median"]) + 0.5 * sum(
                1 for item in items if item == answers["median"]
            )
            assert abs(median_rank - n / 2.0) <= budget + 0.5

    def test_answers_track_drift(self):
        epsilon = 0.1
        engine = standard_engine(num_nodes=25, epsilon=epsilon)
        stream = DriftStream(25, max_value=DOMAIN, seed=5, drift_fraction=0.2)
        engine.advance_epoch(stream.initial())
        self._check_answers(engine, epsilon)
        for epoch in range(1, 12):
            engine.advance_epoch(stream.step(epoch))
            self._check_answers(engine, epsilon)

    def test_answers_track_churn(self):
        epsilon = 0.1
        engine = standard_engine(num_nodes=25, epsilon=epsilon)
        stream = ChurnStream(25, max_value=DOMAIN, seed=6, churn_rate=0.2)
        engine.advance_epoch(stream.initial())
        for epoch in range(1, 12):
            engine.advance_epoch(stream.step(epoch))
            self._check_answers(engine, epsilon)
            # COUNT must follow the shrinking/growing population exactly
            # (slack < 1 at this scale, so suppression cannot hide a change).
            assert engine.answers()["count"] == stream.online_count()

    def test_predicate_count_query(self):
        network = empty_network(16)
        engine = ContinuousQueryEngine(network, epsilon=0.0)
        engine.register(
            "low", PredicateCountQuery(lambda item: item < 100, description="x<100")
        )
        engine.advance_epoch({node: [node * 25] for node in range(16)})
        assert engine.answers()["low"] == 4  # 0, 25, 50, 75

    def test_distinct_count_query_sanity(self):
        network = empty_network(36)
        engine = ContinuousQueryEngine(network, epsilon=0.05)
        engine.register("distinct", DistinctCountQuery(num_registers=256, salt=1))
        engine.advance_epoch({node: [node] for node in range(36)})
        estimate = engine.answers()["distinct"]
        assert 36 * 0.5 <= estimate <= 36 * 1.5
        # Collapsing every reading onto one value must collapse the estimate.
        engine.advance_epoch({node: [7] for node in range(36)})
        assert engine.answers()["distinct"] <= 10

    def test_incremental_matches_recompute_with_zero_epsilon(self):
        stream_a = DriftStream(16, max_value=DOMAIN, seed=9, drift_fraction=0.3)
        stream_b = DriftStream(16, max_value=DOMAIN, seed=9, drift_fraction=0.3)
        incremental = ContinuousQueryEngine(empty_network(16), epsilon=0.0)
        naive = RecomputeEngine(empty_network(16))
        for engine in (incremental, naive):
            engine.register("count", CountQuery())
            engine.register(
                "median", MedianQuery(universe_size=DOMAIN + 1, compression=10_000)
            )
        incremental.advance_epoch(stream_a.initial())
        naive.advance_epoch(stream_b.initial())
        for epoch in range(1, 10):
            incremental.advance_epoch(stream_a.step(epoch))
            naive.advance_epoch(stream_b.step(epoch))
            # With ε = 0 and an uncompressed digest both engines see identical
            # summaries at the root.
            assert incremental.answers() == naive.answers()

    def test_duplicating_radio_does_not_corrupt_answers(self):
        network = empty_network(16)
        network.radio = DuplicatingRadio(duplicate_rate=1.0, seed=3)
        engine = ContinuousQueryEngine(network, epsilon=0.0)
        engine.register("count", CountQuery())
        engine.advance_epoch({node: [node] for node in range(16)})
        assert engine.answers()["count"] == 16


# --------------------------------------------------------------------------- #
# Delta suppression
# --------------------------------------------------------------------------- #
class TestDeltaSuppression:
    def test_unchanged_epoch_costs_zero_bits(self):
        engine = standard_engine(num_nodes=25)
        engine.advance_epoch({node: [node * 10] for node in range(25)})
        record = engine.advance_epoch({})  # nothing moved
        assert record.bits == 0
        assert record.messages == 0
        assert record.dirty_nodes == 0

    def test_identical_readings_are_not_dirty(self):
        engine = standard_engine(num_nodes=25)
        readings = {node: [node * 10] for node in range(25)}
        engine.advance_epoch(readings)
        record = engine.advance_epoch(readings)  # same values re-sensed
        assert record.bits == 0

    def test_single_change_touches_only_one_root_path(self):
        engine = standard_engine(num_nodes=25)
        engine.advance_epoch({node: [node * 10] for node in range(25)})
        record = engine.advance_epoch({24: [3000]})
        height = engine.network.tree.height
        queries = len(engine.queries())
        assert record.dirty_nodes == 1
        assert 0 < record.messages <= height * queries
        assert record.bits < engine.trace[0].bits / 4

    def test_first_epoch_ships_full_summaries_then_deltas(self):
        engine = standard_engine(num_nodes=25)
        stream = DriftStream(25, max_value=DOMAIN, seed=8, drift_fraction=0.1)
        run_stream(engine, stream, epochs=15)
        first = engine.trace[0].bits
        steady = engine.trace.steady_state_bits(warmup=1)
        assert steady < first / 3

    def test_suppression_reported_when_changes_are_small(self):
        # A generous epsilon and a large standing count let single-item
        # wobbles be suppressed outright.
        network = empty_network(9)
        engine = ContinuousQueryEngine(network, epsilon=0.9)
        engine.register("count", CountQuery())
        engine.advance_epoch({node: [5] * 10 for node in range(9)})
        record = engine.advance_epoch({8: [5] * 11})  # one extra item
        assert record.suppressions >= 1
        assert record.bits == 0


# --------------------------------------------------------------------------- #
# Incremental vs recompute and the trace
# --------------------------------------------------------------------------- #
class TestIncrementalSavings:
    def test_incremental_beats_recompute_on_drift(self):
        stream_a = DriftStream(36, max_value=DOMAIN, seed=11, drift_fraction=0.05)
        stream_b = DriftStream(36, max_value=DOMAIN, seed=11, drift_fraction=0.05)
        incremental = ContinuousQueryEngine(empty_network(36), epsilon=0.1)
        naive = RecomputeEngine(empty_network(36))
        for engine in (incremental, naive):
            engine.register("count", CountQuery())
            engine.register(
                "median", MedianQuery(universe_size=DOMAIN + 1, compression=256)
            )
            engine.register("distinct", DistinctCountQuery(num_registers=64, salt=2))
        run_stream(incremental, stream_a, epochs=20)
        run_stream(naive, stream_b, epochs=20)
        assert incremental.trace.total_bits * 3 < naive.trace.total_bits

    def test_trace_totals_are_sums_of_epochs(self):
        engine = standard_engine(num_nodes=16)
        stream = DriftStream(16, max_value=DOMAIN, seed=12)
        trace = run_stream(engine, stream, epochs=8)
        assert len(trace) == 8
        assert trace.total_bits == sum(record.bits for record in trace)
        assert trace.total_messages == sum(record.messages for record in trace)
        assert trace.total_energy_nj == pytest.approx(
            sum(record.energy_nj for record in trace)
        )
        assert trace.total_energy_nj > 0
        assert [record.epoch for record in trace] == list(range(8))

    def test_per_query_bits_partition_the_epoch_bits(self):
        engine = standard_engine(num_nodes=16)
        engine.advance_epoch({node: [node] for node in range(16)})
        record = engine.trace[0]
        assert sum(record.per_query_bits.values()) == record.bits

    def test_answers_for_series(self):
        engine = standard_engine(num_nodes=16)
        stream = DriftStream(16, max_value=DOMAIN, seed=13)
        trace = run_stream(engine, stream, epochs=5)
        counts = trace.answers_for("count")
        assert len(counts) == 5
        assert all(count == 16 for count in counts)


# --------------------------------------------------------------------------- #
# Summary primitives
# --------------------------------------------------------------------------- #
class TestSummaries:
    def test_count_summary_roundtrip(self):
        a, b = CountSummary(5), CountSummary(7)
        merged = a.merge(b)
        assert merged.count == 12
        assert merged.distance(a) == 7
        assert not merged.same_as(a)
        assert merged.delta_bits(a) < merged.serialized_bits() + 4

    def test_quantile_summary_distance_bounds_rank_shift(self):
        a = QuantileSummary.from_values([1, 2, 3], universe_size=16, compression=64)
        b = QuantileSummary.from_values([1, 2, 4], universe_size=16, compression=64)
        assert a.distance(b) >= 1  # one item moved
        assert a.same_as(a.merge(QuantileSummary.from_values([], 16)))

    def test_distinct_summary_merge_is_idempotent(self):
        a = DistinctSummary.from_values(range(50), num_registers=64, salt=3)
        merged = a.merge(a)
        assert merged.same_as(a)
        assert merged.distance(a) == 0.0
        assert a.delta_bits(a) < a.serialized_bits()
