"""Naive per-epoch recomputation baseline.

:class:`RecomputeEngine` answers the same standing queries as
:class:`~repro.streaming.ContinuousQueryEngine` but the way the one-shot
protocols would: every epoch, every node ships its *full* subtree summary up
the spanning tree, regardless of what changed.  It reuses the one-shot
:func:`~repro.protocols.convergecast.convergecast` traversal, so its per-epoch
cost is exactly what re-running the corresponding one-shot protocol each
epoch would charge — the honest baseline for the incremental engine's
steady-state savings.

Both engines expose the same ``register`` / ``advance_epoch`` / ``trace``
surface, so :func:`~repro.streaming.engine.run_stream` drives either through
identical stream inputs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.network.energy import EnergyModel
from repro.network.simulator import SensorNetwork
from repro.protocols.broadcast import broadcast
from repro.protocols.convergecast import convergecast
from repro.streaming.queries import REGISTRATION_BITS, StandingQuery
from repro.streaming.trace import EpochRecord, StreamingTrace, build_epoch_record


class RecomputeEngine:
    """Re-run a full convergecast for every registered query, every epoch."""

    protocol_prefix = "recompute"

    def __init__(
        self,
        network: SensorNetwork,
        energy_model: EnergyModel | None = None,
    ) -> None:
        self.network = network
        self.energy_model = energy_model if energy_model is not None else EnergyModel()
        self.trace = StreamingTrace()
        self._queries: dict[str, StandingQuery] = {}
        self._answers: dict[str, Any] = {}

    def register(self, name: str, query: StandingQuery, announce: bool = True) -> None:
        """Register a standing query under ``name`` (mirrors the incremental engine)."""
        if name in self._queries:
            raise ConfigurationError(f"query {name!r} is already registered")
        self._queries[name] = query
        if announce:
            broadcast(
                self.network,
                {"register": name, "kind": query.kind},
                REGISTRATION_BITS,
                protocol=f"{self.protocol_prefix}:{name}:register",
            )

    def answers(self) -> dict[str, Any]:
        return dict(self._answers)

    @property
    def epoch(self) -> int:
        return len(self.trace)

    def advance_epoch(
        self, updates: Mapping[int, Sequence[int]] | None = None
    ) -> EpochRecord:
        """Apply updates, then recompute every query from scratch."""
        if not self._queries:
            raise ConfigurationError(
                "no standing queries registered; call register() first"
            )
        updates = dict(updates or {})
        before = self.network.ledger.counters_snapshot()
        self.network.assign_items(
            {node_id: list(items) for node_id, items in updates.items()}
        )
        transmissions = 0
        for name, query in self._queries.items():
            root_summary = convergecast(
                self.network,
                lambda node, q=query: q.local_summary(node.items),
                lambda a, b: a.merge(b),
                lambda summary: summary.serialized_bits(),
                protocol=f"{self.protocol_prefix}:{name}",
            )
            self._answers[name] = query.answer(root_summary)
            transmissions += self.network.num_nodes - 1
        after = self.network.ledger.counters_snapshot()
        record = build_epoch_record(
            epoch=len(self.trace),
            answers=self._answers,
            before=before,
            after=after,
            num_nodes=self.network.num_nodes,
            energy_model=self.energy_model,
            dirty_nodes=len(updates),
            transmissions=transmissions,
            suppressions=0,
            query_names=list(self._queries),
            protocol_prefix=self.protocol_prefix,
        )
        self.trace.append(record)
        return record
