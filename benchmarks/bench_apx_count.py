"""E2 — Fact 2.2: approximate counting with O(m log log N) bits per node.

Reproduces the two halves of the claim: (a) the relative error tracks the
predicted σ ≈ 1.30/√m, and (b) the per-node communication is flat in N for a
fixed sketch size m (it depends only on m · log log N).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_apx_count_sweep
from repro.analysis.report import format_table

SIZES = [256, 1024, 4096]
REGISTERS = [16, 64, 256]


def test_apx_count_accuracy_and_cost(benchmark):
    records = run_once(
        benchmark, run_apx_count_sweep, SIZES, register_counts=REGISTERS, trials=5
    )

    rows = []
    for record in records:
        rows.append([
            record.protocol,
            record.num_items,
            record.max_node_bits,
            record.extra["mean_relative_error"],
            record.extra["predicted_sigma"],
        ])
    print()
    print(format_table(
        ["protocol", "N", "max bits/node", "mean rel. error", "predicted sigma"],
        rows,
        title="E2  Fact 2.2 — LogLog approximate counting",
    ))

    # (a) accuracy roughly within a small multiple of the predicted sigma.
    for record in records:
        assert record.extra["mean_relative_error"] < 4 * record.extra["predicted_sigma"] + 0.05

    # (b) for fixed m the per-node cost is flat in N.
    for m in REGISTERS:
        costs = [
            record.max_node_bits
            for record in records
            if record.protocol == f"APX_COUNT(m={m})"
        ]
        benchmark.extra_info[f"m={m}_cost_range"] = (min(costs), max(costs))
        assert max(costs) <= 1.3 * min(costs)

    # (c) larger m costs proportionally more bits and delivers lower error.
    small = [r for r in records if r.protocol == "APX_COUNT(m=16)"]
    large = [r for r in records if r.protocol == "APX_COUNT(m=256)"]
    assert large[0].max_node_bits > 5 * small[0].max_node_bits
    mean_small = sum(r.extra["mean_relative_error"] for r in small) / len(small)
    mean_large = sum(r.extra["mean_relative_error"] for r in large) / len(large)
    assert mean_large <= mean_small + 0.02
