"""E8 — the paper's Section 1 comparison: Fig. 1/2/4 versus prior approaches.

One table per network size with every contender on the same input: the
paper's three protocols, the naive ship-all-values TAG treatment (linear),
the uniform-sampling synopsis (Nath et al.), Greenwald–Khanna summaries,
q-digest summaries, and gossip push-sum.  The reproduction checks the
qualitative ordering the paper argues for:

* only the naive protocol grows linearly in N;
* the deterministic binary-search median is exact and beats the naive
  protocol's hot node by a growing factor;
* every sketch/summary baseline is approximate (non-zero rank error) while
  the Fig. 1 protocol is exact at comparable or lower cost.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.experiments import run_baseline_comparison
from repro.analysis.metrics import fit_growth_exponent
from repro.analysis.report import format_table

SIZES = [64, 256, 1024]


def test_baseline_comparison(benchmark):
    records = run_once(
        benchmark,
        run_baseline_comparison,
        SIZES,
        include_gossip=True,
        apx_registers=32,
    )

    for size in SIZES:
        rows = [
            [
                record.protocol,
                int(record.answer),
                record.extra["exact"],
                round(record.extra["rank_error"], 3),
                round(record.extra["value_error"], 4),
                record.max_node_bits,
            ]
            for record in records
            if record.num_items == size
        ]
        print()
        print(format_table(
            ["protocol", "answer", "exact?", "rank err", "value err", "max bits/node"],
            rows,
            title=f"E8  median protocols compared (N = {size})",
        ))

    by_protocol: dict[str, list[tuple[int, int]]] = {}
    for record in records:
        by_protocol.setdefault(record.protocol, []).append(
            (record.num_items, record.max_node_bits)
        )

    exponents = {}
    for protocol, points in by_protocol.items():
        exponents[protocol], _ = fit_growth_exponent(*zip(*points))
        benchmark.extra_info[f"{protocol}_exponent"] = round(exponents[protocol], 3)

    # Who wins, and how the costs scale (the paper's qualitative claims):
    assert exponents["naive ship-all"] > 0.7          # linear-ish
    assert exponents["MEDIAN (Fig.1)"] < 0.4          # polylog
    assert exponents["APX_MEDIAN2 (Fig.4)"] < 0.3     # polyloglog — flat
    # Fig. 1 is exact everywhere; at the largest size it beats the naive hot node.
    fig1 = [r for r in records if r.protocol == "MEDIAN (Fig.1)"]
    naive = [r for r in records if r.protocol == "naive ship-all"]
    assert all(r.extra["exact"] for r in fig1)
    assert fig1[-1].max_node_bits < naive[-1].max_node_bits / 3
    # Every approximate baseline stays within a moderate rank error.
    for record in records:
        if record.protocol not in ("MEDIAN (Fig.1)", "naive ship-all"):
            assert record.extra["rank_error"] < 0.45
