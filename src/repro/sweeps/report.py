"""Normalize sweep outcomes into CI-diffable JSON and markdown reports.

One sweep run folds into one ``SWEEP_<name>.json``: the spec (axes, base,
constraints), execution counts, and one record per cell — parameters, the
deterministic ``measures``, machine-dependent ``timing``, and the
telemetry ``phases`` breakdown.  Cells are ordered by ``cell_id`` so the
file is stable under matrix edits, and :func:`diff_payloads` compares only
the ``measures`` section (bits, savings, errors — deterministic under the
seeded simulator), never wall-clock, so a committed baseline stays
meaningful across machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.sweeps.runner import CellOutcome
from repro.sweeps.spec import SweepSpec


def normalize(spec: SweepSpec, outcomes: Iterable[CellOutcome]) -> dict:
    """Fold a run's outcomes into the ``SWEEP_<name>.json`` payload."""
    outcomes = list(outcomes)
    cells = [
        {
            "cell_id": outcome.cell.cell_id,
            "key": outcome.cell.key,
            "cached": outcome.cached,
            "params": outcome.cell.params,
            "measures": outcome.result.get("measures", {}),
            "timing": outcome.result.get("timing", {}),
            "phases": outcome.result.get("phases", {}),
        }
        for outcome in outcomes
    ]
    cells.sort(key=lambda cell: cell["cell_id"])
    return {
        "sweep": spec.name,
        "experiment": spec.experiment,
        "spec": spec.to_dict(),
        "cell_count": len(cells),
        "executed": sum(1 for outcome in outcomes if not outcome.cached),
        "cached": sum(1 for outcome in outcomes if outcome.cached),
        "cells": cells,
    }


def write_sweep_json(payload: dict, out_dir: "str | Path" = ".") -> Path:
    """Write ``SWEEP_<name>.json`` into ``out_dir`` and return the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"SWEEP_{payload['sweep']}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _format(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_markdown(payload: dict) -> str:
    """The sweep report: header, axes, and one measures row per cell."""
    lines = [
        f"# Sweep `{payload['sweep']}` — experiment `{payload['experiment']}`",
        "",
        f"{payload['cell_count']} cell(s): {payload['executed']} executed, "
        f"{payload['cached']} from cache.",
        "",
    ]
    axes = payload.get("spec", {}).get("axes", {})
    if axes:
        lines.append("| axis | values |")
        lines.append("| --- | --- |")
        for axis in sorted(axes):
            values = ", ".join(_format(value) for value in axes[axis])
            lines.append(f"| {axis} | {values} |")
        lines.append("")
    cells = payload.get("cells", [])
    columns = sorted({key for cell in cells for key in cell.get("measures", {})})
    if cells and columns:
        lines.append("| cell | " + " | ".join(columns) + " |")
        lines.append("| --- |" + " --- |" * len(columns))
        for cell in cells:
            measures = cell.get("measures", {})
            row = " | ".join(_format(measures.get(column)) for column in columns)
            lines.append(f"| {cell['cell_id']} | {row} |")
        lines.append("")
    return "\n".join(lines)


def write_sweep_markdown(payload: dict, out_dir: "str | Path" = ".") -> Path:
    """Write ``SWEEP_<name>.md`` next to the JSON and return the path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"SWEEP_{payload['sweep']}.md"
    path.write_text(render_markdown(payload), encoding="utf-8")
    return path


@dataclass(frozen=True)
class SweepDiff:
    """Baseline-vs-current comparison of two sweep payloads.

    ``changed`` rows are ``(cell_id, measure, baseline, current)``.  New
    cells (in current but not baseline) are coverage growth, not a
    failure; missing cells and changed measures are what the ``--strict``
    CI gate refuses.
    """

    sweep: str
    missing_cells: tuple = ()
    new_cells: tuple = ()
    changed: tuple = ()
    notes: tuple = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.missing_cells and not self.changed

    def describe(self) -> str:
        if self.ok and not self.new_cells:
            return f"sweep {self.sweep}: baseline and current agree"
        lines = [f"sweep {self.sweep}:"]
        for cell in self.missing_cells:
            lines.append(f"  MISSING cell {cell} (in baseline, not in current)")
        for cell in self.new_cells:
            lines.append(f"  new cell {cell}")
        for cell_id, measure, old, new in self.changed:
            lines.append(
                f"  CHANGED {cell_id}: {measure} {_format(old)} -> {_format(new)}"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def diff_payloads(
    baseline: dict,
    current: dict,
    rel_tolerance: float = 0.0,
    abs_tolerance: float = 0.0,
) -> SweepDiff:
    """Compare two sweep payloads cell by cell, measures only.

    The simulator is deterministic under a seed, so the default tolerance
    is exact equality; a nonzero ``rel_tolerance``/``abs_tolerance`` admits
    bounded drift for measures that are only statistically stable.
    """
    notes = []
    if baseline.get("sweep") != current.get("sweep"):
        notes.append(
            f"comparing different sweeps: {baseline.get('sweep')!r} vs "
            f"{current.get('sweep')!r}"
        )
    base_cells = {cell["cell_id"]: cell for cell in baseline.get("cells", [])}
    curr_cells = {cell["cell_id"]: cell for cell in current.get("cells", [])}
    missing = tuple(sorted(set(base_cells) - set(curr_cells)))
    new = tuple(sorted(set(curr_cells) - set(base_cells)))
    changed = []
    for cell_id in sorted(set(base_cells) & set(curr_cells)):
        old_measures = base_cells[cell_id].get("measures", {})
        new_measures = curr_cells[cell_id].get("measures", {})
        for measure in sorted(set(old_measures) | set(new_measures)):
            old = old_measures.get(measure)
            new_value = new_measures.get(measure)
            if isinstance(old, (int, float)) and isinstance(
                new_value, (int, float)
            ) and not isinstance(old, bool) and not isinstance(new_value, bool):
                budget = abs_tolerance + rel_tolerance * abs(old)
                if abs(new_value - old) > budget:
                    changed.append((cell_id, measure, old, new_value))
            elif old != new_value:
                changed.append((cell_id, measure, old, new_value))
    return SweepDiff(
        sweep=str(current.get("sweep", baseline.get("sweep", "?"))),
        missing_cells=missing,
        new_cells=new,
        changed=tuple(changed),
        notes=tuple(notes),
    )


def load_payload(path: "str | Path") -> dict:
    """Load one ``SWEEP_<name>.json`` file."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
