"""Scaling study: reproduce the paper's who-wins-as-N-grows story on your laptop.

Run with::

    python examples/scaling_study.py

Sweeps the network size and prints, for each N, the maximum per-node
communication of:

* the exact binary-search median of Fig. 1 (Theorem 3.2, O((log N)^2)),
* the naive TAG treatment of MEDIAN (ship every value, Θ(N log N) at the root),
* exact COUNT DISTINCT (Ω(N), Theorem 5.1),
* approximate COUNT DISTINCT (O(log log N), Section 5).

It then fits power-law exponents to the measurements and extrapolates where
the polyloglog median of Fig. 4 overtakes the exact one (the constants of the
LogLog sketches make that crossover astronomically far out — which the paper,
being an asymptotic note, never disputes).
"""

from __future__ import annotations

from repro.analysis.experiments import run_baseline_comparison, run_count_distinct_sweep
from repro.analysis.metrics import fit_growth_exponent
from repro.analysis.report import format_table
from repro.analysis.theory import (
    exact_median_bits_envelope,
    polyloglog_median_bits_envelope,
    predicted_crossover,
)

SIZES = [64, 144, 324, 729]


def main() -> None:
    median_records = run_baseline_comparison(SIZES, include_gossip=False, apx_registers=32)
    distinct_records = run_count_distinct_sweep(SIZES)

    interesting = {
        "MEDIAN (Fig.1)": [],
        "APX_MEDIAN2 (Fig.4)": [],
        "naive ship-all": [],
    }
    for record in median_records:
        if record.protocol in interesting:
            interesting[record.protocol].append((record.num_items, record.max_node_bits))
    for label in ("COUNT_DISTINCT(exact)", "COUNT_DISTINCT(loglog,m=64)"):
        interesting[label] = [
            (record.num_items, record.max_node_bits)
            for record in distinct_records
            if record.protocol == label
        ]

    rows = []
    for n in SIZES:
        row = [n]
        for protocol in interesting:
            value = dict(interesting[protocol]).get(n, "-")
            row.append(value)
        rows.append(row)
    print(format_table(
        ["N"] + list(interesting), rows,
        title="Max per-node bits as the network grows",
    ))

    print()
    fit_rows = []
    for protocol, points in interesting.items():
        exponent, _ = fit_growth_exponent(*zip(*points))
        fit_rows.append([protocol, round(exponent, 2)])
    print(format_table(
        ["protocol", "fitted growth exponent (cost ~ N^p)"],
        fit_rows,
        title="Growth-rate fits (p ~ 1 means linear, p ~ 0 means polylog)",
    ))

    # Model-based crossover extrapolation for Fig. 1 vs Fig. 4.
    fig1_points = dict(interesting["MEDIAN (Fig.1)"])
    fig4_points = dict(interesting["APX_MEDIAN2 (Fig.4)"])
    n0 = SIZES[0]
    exact_constant = fig1_points[n0] / exact_median_bits_envelope(n0, n0 * n0)
    approx_constant = fig4_points[n0] / polyloglog_median_bits_envelope(
        n0, num_registers=32, beta=1 / 16, epsilon=0.25
    )
    crossover = predicted_crossover(
        exact_constant, approx_constant, num_registers=32, beta=1 / 16, epsilon=0.25
    )
    print()
    if crossover is None:
        print("Extrapolated crossover of Fig. 4 below Fig. 1: beyond 2^400 items "
              "(the constants of the counting sketches dominate at any realistic N).")
    else:
        print(f"Extrapolated crossover of Fig. 4 below Fig. 1: N ~ {crossover:.3g} items.")


if __name__ == "__main__":
    main()
