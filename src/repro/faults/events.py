"""The fault vocabulary and deterministic fault schedules.

Faults are plain frozen dataclasses so scripts are hashable, comparable and
trivially serialisable; the :class:`FaultEngine` is the only component that
*applies* them.  A :class:`FaultScript` maps epoch numbers to event lists —
the scripted half of fault injection (the stochastic half lives on the
engine as per-epoch rates).  Scripts compose with :meth:`FaultScript.merge`,
so a scenario can layer, say, a regional outage on top of background churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro._util.validation import require_non_negative
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class FaultEvent:
    """Base class for all injectable fault events."""


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Node ``node_id`` fails: readings lost, radio silent, tree orphaned."""

    node_id: int


@dataclass(frozen=True)
class NodeRejoin(FaultEvent):
    """A crashed node comes back with fresh readings.

    ``items`` is the reading multiset the node rejoins with (a recovered node
    re-senses; it does not remember pre-crash values).
    """

    node_id: int
    items: tuple[int, ...] = ()


@dataclass(frozen=True)
class RootCrash(FaultEvent):
    """Whoever is the query root *when this fires* crashes.

    The one failure the simulator used to forbid.  The event carries no node
    id on purpose: after an earlier fail-over the root has moved, and a
    scripted second blow should hit the current query node, not a stale id.
    The engine responds with a charged :class:`~repro.faults.RootElection`
    (highest surviving id wins), re-roots the tree at the winner and
    re-attaches the remaining fragments — all in the same epoch, all billed.
    """


@dataclass(frozen=True)
class LinkDrop(FaultEvent):
    """The graph edge between ``u`` and ``v`` fails (until restored)."""

    u: int
    v: int

    @property
    def edge(self) -> tuple[int, int]:
        """The edge in canonical (min, max) order."""
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)


@dataclass(frozen=True)
class LinkRestore(FaultEvent):
    """A previously dropped edge comes back."""

    u: int
    v: int

    @property
    def edge(self) -> tuple[int, int]:
        return (self.u, self.v) if self.u <= self.v else (self.v, self.u)


@dataclass(frozen=True)
class RegionalOutage(FaultEvent):
    """Every node within ``radius`` graph hops of ``center`` crashes.

    The engine expands the ball over the *current* graph (dropped links do
    not conduct the outage) and skips the root, which cannot crash.
    """

    center: int
    radius: int


@dataclass
class FaultScript:
    """A deterministic epoch-indexed schedule of fault events.

    Events scheduled for the same epoch are applied in insertion order.
    """

    _events: dict[int, list[FaultEvent]] = field(default_factory=dict)

    def __init__(
        self, events: Mapping[int, Sequence[FaultEvent]] | None = None
    ) -> None:
        self._events = {}
        if events:
            for epoch, batch in events.items():
                self.add(epoch, *batch)

    def add(self, epoch: int, *events: FaultEvent) -> "FaultScript":
        """Schedule ``events`` at ``epoch``; returns ``self`` for chaining."""
        require_non_negative(epoch, "epoch")
        for event in events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"expected a FaultEvent, got {event!r}"
                )
        if events:
            self._events.setdefault(epoch, []).extend(events)
        return self

    def events_at(self, epoch: int) -> list[FaultEvent]:
        """The events scheduled for ``epoch`` (empty list if none)."""
        return list(self._events.get(epoch, ()))

    def merge(self, other: "FaultScript") -> "FaultScript":
        """A new script with both schedules (``self``'s events first per epoch)."""
        merged = FaultScript()
        for epoch in sorted(set(self._events) | set(other._events)):
            merged.add(epoch, *self._events.get(epoch, ()))
            merged.add(epoch, *other._events.get(epoch, ()))
        return merged

    @property
    def horizon(self) -> int:
        """One past the last scheduled epoch (0 for an empty script)."""
        return max(self._events, default=-1) + 1

    def epochs(self) -> list[int]:
        """Epochs with at least one scheduled event, ascending."""
        return sorted(self._events)

    def __len__(self) -> int:
        return sum(len(batch) for batch in self._events.values())

    def __iter__(self) -> Iterator[tuple[int, FaultEvent]]:
        for epoch in sorted(self._events):
            for event in self._events[epoch]:
                yield epoch, event

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"FaultScript(events={len(self)}, epochs={len(self._events)}, "
            f"horizon={self.horizon})"
        )


def expand_regional_outage(
    graph, event: RegionalOutage, protect: Iterable[int] = ()
) -> list[NodeCrash]:
    """Expand a :class:`RegionalOutage` into per-node crashes via graph BFS.

    ``protect`` lists nodes that never crash (the root).  Exposed so scripts
    and tests can precompute the blast radius of an outage.
    """
    require_non_negative(event.radius, "radius")
    if event.center not in graph:
        raise ConfigurationError(
            f"outage center {event.center} is not a node of the graph"
        )
    protected = set(protect)
    ball = {event.center}
    frontier = [event.center]
    for _ in range(event.radius):
        next_frontier: list[int] = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                if neighbor not in ball:
                    ball.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return [NodeCrash(node) for node in sorted(ball) if node not in protected]
